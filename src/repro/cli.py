"""Command-line experiment runner over the unified Experiment API.

Usage::

    python -m repro list                  # enumerate experiments
    python -m repro run e6 e8             # run, print paper tables
    python -m repro run e3 --json         # machine-readable result
    python -m repro run all --out out/    # write one JSON per id
    python -m repro run e14 --replicas 8 --workers 4   # pooled CIs
    python -m repro run e14 --replicas 64 --replica-timeout 120 \
        --retries 3 --resume sweep.jsonl   # survivable sweep
    python -m repro run e14 --replicas 8 --live   # live sweep view
    python -m repro run r1 --probe 0.5 \
        --slo 'probe_queue_len:mean:5 <= 10' --slo-strict
    python -m repro trace e14             # record a kernel event trace
    python -m repro report e6             # run-report digest
    python -m repro report r1 --probe --html dash.html
    python -m repro report BENCH_perf.json --html bench.html
    python -m repro check --strict        # static model + sim lint
    python -m repro check corpus/s0007.json   # verify scenario files
    python -m repro scenario export e3 --out scenarios/
    python -m repro scenario generate --count 100 --seed 7 --out corpus/
    python -m repro scenario sweep corpus/   # differential merge gate
    python -m repro run e4 --scenario corpus/s0007.json
    python -m repro bench e3 --repeat 3 --out BENCH_perf.json
    python -m repro bench e3 --profile    # hotspots + flamegraph file
    python -m repro bench --compare benchmarks/baseline/BENCH_perf.json

Every experiment goes through :func:`repro.experiments.run`, the same
code path the ``benchmarks/`` suite asserts on, so the CLI output *is*
the reproduced paper table.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable

from repro import experiments
from repro.obs.report import sanitize_json
from repro.utils import Table

__all__ = ["main", "EXPERIMENTS"]


class _LazyExperiments(dict):
    """Compatibility view of the registry: id → (claim, runner).

    The historical ``EXPERIMENTS`` dict mapped ids to zero-argument
    printing functions; this keeps that shape alive on top of the
    registry for existing callers.
    """

    def _ensure(self) -> None:
        if not dict.__len__(self):
            for exp_id in experiments.ids():
                claim = experiments.get(exp_id).claim
                dict.__setitem__(
                    self, exp_id,
                    (claim, _print_runner(exp_id)),
                )

    def __getitem__(self, key):
        self._ensure()
        return dict.__getitem__(self, key)

    def __contains__(self, key) -> bool:
        self._ensure()
        return dict.__contains__(self, key)

    def __iter__(self):
        self._ensure()
        return dict.__iter__(self)

    def __len__(self) -> int:
        self._ensure()
        return dict.__len__(self)

    def keys(self):
        self._ensure()
        return dict.keys(self)

    def items(self):
        self._ensure()
        return dict.items(self)

    def values(self):
        self._ensure()
        return dict.values(self)


def _print_runner(exp_id: str) -> Callable[[], None]:
    def runner() -> None:
        experiments.run(exp_id).show()

    return runner


#: Experiment registry view: id → (description, runner).
EXPERIMENTS = _LazyExperiments()


def _resolve_ids(requested: list[str]) -> list[str] | None:
    """Normalize requested ids (case-insensitive, ``all``); ``None``
    plus a stderr message when any id is unknown.

    ``scenario:<path>`` ids pass through verbatim (paths are
    case-sensitive); the file must exist.
    """
    from repro.experiments import SCENARIO_ID_PREFIX

    known = experiments.ids()
    if [r.lower() for r in requested] == ["all"]:
        return known
    resolved = []
    unknown = []
    for entry in requested:
        if entry.startswith(SCENARIO_ID_PREFIX):
            path = Path(entry[len(SCENARIO_ID_PREFIX):])
            if not path.is_file():
                print(f"no such scenario file: {path}",
                      file=sys.stderr)
                return None
            resolved.append(entry)
        elif entry.lower() in known:
            resolved.append(entry.lower())
        else:
            unknown.append(entry.lower())
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)} "
              f"(try 'repro list')", file=sys.stderr)
        return None
    return resolved


def _cmd_list() -> int:
    table = Table(["id", "experiment"], title="available experiments")
    for exp_id in experiments.ids():
        table.add_row([exp_id, experiments.get(exp_id).claim])
    table.show()
    return 0


def _select_scheduler(name: str, command: str) -> int:
    """Make ``name`` the process-wide DES scheduler backend.

    Module state propagates to fork-context replica workers, so one
    selection covers parallel sweeps too.  Returns 0, or 2 with a
    message on an unknown name.
    """
    from repro.des import scheduler_names, set_default_scheduler

    try:
        set_default_scheduler(name)
    except ValueError:
        print(f"{command}: unknown scheduler {name!r} (available: "
              f"{', '.join(scheduler_names())})", file=sys.stderr)
        return 2
    return 0


def _cmd_run(args) -> int:
    ids = _resolve_ids(args.experiments)
    if ids is None:
        return 2
    if getattr(args, "scheduler", None) is not None:
        if _select_scheduler(args.scheduler, "run") != 0:
            return 2
    if args.scenario is not None:
        if not Path(args.scenario).is_file():
            print(f"run: no such scenario file: {args.scenario}",
                  file=sys.stderr)
            return 2
        if args.replicas > 1:
            print("run: --scenario does not combine with --replicas; "
                  "replicate the scenario as its own experiment id "
                  f"instead: repro run scenario:{args.scenario} "
                  f"--replicas {args.replicas}", file=sys.stderr)
            return 2
    if args.replicas > 1 and args.trace:
        print("run: --trace is incompatible with --replicas > 1 "
              "(replicas run in worker processes; trace one replica "
              "with 'repro trace <id> --seed <replica seed>')",
              file=sys.stderr)
        return 2
    if args.live and args.replicas <= 1:
        print("run: --live shows worker progress and applies only to "
              "replicated sweeps; add --replicas N", file=sys.stderr)
        return 2
    try:
        from repro.obs.slo import as_slo_specs

        slo_specs = as_slo_specs(args.slo)
    except ValueError as error:
        print(f"run: {error}", file=sys.stderr)
        return 2
    supervised = (args.replica_timeout is not None
                  or args.retries is not None
                  or args.checkpoint or args.resume
                  or args.allow_partial)
    if supervised and args.replicas <= 1:
        print("run: --replica-timeout/--retries/--checkpoint/--resume/"
              "--allow-partial apply only to replicated sweeps; add "
              "--replicas N", file=sys.stderr)
        return 2
    if supervised and len(ids) > 1 and (args.checkpoint or args.resume):
        print("run: --checkpoint/--resume journal one sweep; give a "
              "single experiment id", file=sys.stderr)
        return 2
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    payload: dict[str, dict] = {}
    breached: list[str] = []
    for exp_id in ids:
        if args.replicas > 1:
            from repro.parallel import ReplicaFailedError, run_replicated

            try:
                result = run_replicated(
                    exp_id, replicas=args.replicas,
                    workers=args.workers, seed=args.seed,
                    replica_timeout=args.replica_timeout,
                    retries=(2 if args.retries is None
                             else args.retries),
                    partial=args.allow_partial,
                    checkpoint=args.checkpoint,
                    resume=args.resume,
                    probe=args.probe,
                    slo=slo_specs,
                    live=args.live)
            except ReplicaFailedError as error:
                print(f"run: {exp_id}: {error}", file=sys.stderr)
                if args.checkpoint or args.resume:
                    journal = args.checkpoint or args.resume
                    print(f"run: completed replicas are journaled in "
                          f"{journal}; rerun with --resume {journal} "
                          f"to continue, or --allow-partial to merge "
                          f"the survivors", file=sys.stderr)
                return 1
        else:
            import gc
            from time import perf_counter

            from repro.des import kernel_counters

            # Finalize leftovers from earlier experiments in this
            # process so their GC-driven cleanup events don't land in
            # this run's counter delta (see repro.parallel.engine).
            gc.collect()
            before = kernel_counters().snapshot()
            start = perf_counter()
            result = experiments.run(exp_id, seed=args.seed,
                                     trace=args.trace,
                                     scenario=args.scenario,
                                     probe=args.probe,
                                     slo=slo_specs)
            wall = perf_counter() - start
            after = kernel_counters().snapshot()
            # This run's kernel activity: counter deltas plus the
            # wall-clock execution rate (a timing field, like
            # report.wall_seconds — not part of the deterministic
            # payload, which is why it lives beside the result
            # rather than inside it).
            executed = after["events_executed"] - before["events_executed"]
            kernel_delta = {
                "events_scheduled": (after["events_scheduled"]
                                     - before["events_scheduled"]),
                "events_executed": executed,
                "environments": (after["environments"]
                                 - before["environments"]),
                "peak_heap_depth": after["peak_heap_depth"],
                "events_per_sec": (executed / wall if wall > 0
                                   else None),
            }
        if (result.report is not None and result.report.slo is not None
                and not result.report.slo.get("ok", True)):
            breached.append(exp_id)
        if out_dir is not None and result.tracer is not None:
            trace_path = out_dir / f"{exp_id}.trace.jsonl"
            result.tracer.to_jsonl(trace_path)
            if result.report is not None:
                result.report.trace_path = str(trace_path)
        if args.json or out_dir is not None:
            payload[exp_id] = result.to_dict()
            if args.replicas <= 1:
                payload[exp_id]["kernel"] = kernel_delta
        if out_dir is not None:
            (out_dir / f"{exp_id}.json").write_text(
                result.to_json() + "\n", encoding="utf-8")
        if not args.json:
            print(f"\n--- {exp_id}: {result.claim} ---")
            result.show()
            if result.report is not None:
                print()
                for line in result.report.summary_lines():
                    print(line)
    if args.json:
        document = payload[ids[0]] if len(ids) == 1 else payload
        print(json.dumps(sanitize_json(document), indent=2,
                         sort_keys=True))
    if breached and args.slo_strict:
        print(f"run: SLO breached in {', '.join(breached)}",
              file=sys.stderr)
        return 3
    return 0


def _cmd_trace(args) -> int:
    ids = _resolve_ids([args.experiment])
    if ids is None:
        return 2
    exp_id = ids[0]
    result = experiments.run(exp_id, seed=args.seed, trace=True)
    out = Path(args.out) if args.out else Path(f"{exp_id}.trace.jsonl")
    n_events = result.tracer.to_jsonl(out)
    summary = result.report.trace if result.report else {}
    print(f"{exp_id}: wrote {n_events} events to {out}")
    if summary and summary.get("by_kind"):
        by_kind = ", ".join(f"{kind}={n}" for kind, n
                            in sorted(summary["by_kind"].items()))
        print(f"  kinds: {by_kind}")
    return 0


def _cmd_report(args) -> int:
    # Inputs are experiment ids (run now) or existing JSON files (a
    # RunReport, an ExperimentResult payload from `run --json`, or a
    # BENCH_perf.json document) rendered as-is.
    file_inputs = [e for e in args.experiments
                   if e.endswith(".json") and Path(e).is_file()]
    id_inputs = [e for e in args.experiments if e not in file_inputs]
    ids = _resolve_ids(id_inputs) if id_inputs else []
    if ids is None:
        return 2
    if args.html and len(ids) + len(file_inputs) != 1:
        print("report: --html renders one dashboard; give exactly "
              "one experiment id or JSON file", file=sys.stderr)
        return 2
    documents: list[tuple[str, dict]] = []
    for name in file_inputs:
        try:
            documents.append(
                (name, json.loads(Path(name).read_text(
                    encoding="utf-8"))))
        except ValueError as error:
            print(f"report: {name}: {error}", file=sys.stderr)
            return 2
    for exp_id in ids:
        result = experiments.run(exp_id, seed=args.seed,
                                 probe=args.probe, slo=args.slo)
        documents.append((exp_id, result.to_dict()))
    for name, document in documents:
        if args.html:
            from repro.obs.dashboard import render_html

            try:
                page = render_html(document)
            except ValueError as error:
                print(f"report: {name}: {error}", file=sys.stderr)
                return 2
            out = Path(args.html)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(page, encoding="utf-8")
            print(f"wrote {out}")
        elif args.json:
            print(json.dumps(sanitize_json(document), indent=2,
                             sort_keys=True))
        else:
            report_dict = document.get("report", document)
            if "experiment" in report_dict:
                from repro.obs.report import RunReport

                for line in RunReport.from_dict(
                        report_dict).summary_lines():
                    print(line)
            else:
                print(f"{name}: not a run report (use --html for "
                      f"bench documents)")
    return 0


def _cmd_check(args) -> int:
    from repro import check as repro_check
    from repro.check import (
        Severity,
        diagnostics_to_dict,
        diagnostics_to_json,
        format_diagnostic,
        make_diagnostic,
    )

    import repro.scenario as scn

    # No layer selected explicitly means all of them.
    any_layer = args.models or args.lint or args.flow
    do_models = args.models or not any_layer
    do_lint = args.lint or not any_layer
    do_flow = args.flow or not any_layer
    paths = [Path(p) for p in args.paths] if args.paths else []
    missing = [p for p in paths if not p.exists()]
    if missing:
        print("no such path: "
              + ", ".join(str(p) for p in missing),
              file=sys.stderr)
        return 2
    scenario_paths = [p for p in paths if scn.is_scenario_file(p)]
    lint_targets = [p for p in paths if not scn.is_scenario_file(p)]
    diagnostics = []
    for path in scenario_paths:
        try:
            scenario = scn.load(path)
        except scn.SchemaError as error:
            diagnostics.append(make_diagnostic(
                "RC140", error.reason, f"{path}#{error.path}"))
        except ValueError as error:
            diagnostics.append(make_diagnostic(
                "RC140", f"not parseable as JSON: {error}",
                f"{path}#$"))
        else:
            diagnostics.extend(scn.verify(scenario, label=str(path)))
    # Scenario files replace the repository pass unless other lint
    # targets (or an explicit layer flag) ask for it too.
    if not scenario_paths or lint_targets or any_layer:
        diagnostics.extend(repro_check.check_repository(
            models=do_models, lint=do_lint, flow=do_flow,
            lint_targets=lint_targets or None))

    baseline_path = Path(args.baseline_file)
    stale: list[dict] = []
    if args.baseline == "write":
        repro_check.write_baseline(diagnostics, baseline_path)
        print(f"baseline: wrote {len(diagnostics)} finding(s) to "
              f"{baseline_path}")
        return 0
    if args.baseline == "compare":
        if not baseline_path.exists():
            print(f"no baseline file at {baseline_path}; run "
                  f"`repro check --baseline write` first",
                  file=sys.stderr)
            return 2
        comparison = repro_check.compare_baseline(
            diagnostics, repro_check.load_baseline(baseline_path))
        diagnostics = comparison.new
        stale = comparison.stale

    threshold = Severity.WARNING if args.strict else Severity.ERROR
    failing = [d for d in diagnostics if d.severity >= threshold]
    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(diagnostics_to_json(diagnostics) + "\n",
                            encoding="utf-8")
    if args.sarif:
        sarif_path = Path(args.sarif)
        sarif_path.parent.mkdir(parents=True, exist_ok=True)
        sarif_path.write_text(
            repro_check.to_sarif_json(diagnostics) + "\n",
            encoding="utf-8")
    if args.json:
        print(diagnostics_to_json(diagnostics))
    else:
        for diag in sorted(
                diagnostics,
                key=lambda d: (d.subject, d.line or 0, d.rule)):
            print(format_diagnostic(diag))
        counts = diagnostics_to_dict(diagnostics)["counts"]
        print(f"checked: {counts['error']} error(s), "
              f"{counts['warning']} warning(s), "
              f"{counts['info']} info")
        for entry in stale:
            print(f"baseline: stale entry {entry['fingerprint']} "
                  f"({entry['rule']} at {entry['subject']}) — "
                  f"finding fixed; refresh with --baseline write")
    return 1 if failing else 0


def _cmd_scenario_export(args) -> int:
    import repro.scenario as scn

    ids = _resolve_ids(args.experiments)
    if ids is None:
        return 2
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    status = 0
    for exp_id in ids:
        scenarios = experiments.scenarios_of(exp_id)
        if not scenarios:
            print(f"scenario export: {exp_id} declares no scenarios "
                  "(register it with scenario=...)", file=sys.stderr)
            status = 1
            continue
        for index, scenario in enumerate(scenarios):
            stem = scenario.name or str(index)
            path = out_dir / f"{exp_id}-{stem}.json"
            scn.save(scenario, path)
            print(f"wrote {path}")
    return status


def _cmd_scenario_import(args) -> int:
    import repro.scenario as scn

    status = 0
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for name in args.files:
        path = Path(name)
        try:
            scenario = scn.load(path)
        except scn.SchemaError as error:
            print(f"scenario import: {path}#{error.path}: "
                  f"{error.reason}", file=sys.stderr)
            status = 1
            continue
        except (OSError, ValueError) as error:
            print(f"scenario import: {path}: {error}",
                  file=sys.stderr)
            status = 1
            continue
        target = out_dir / path.name if out_dir is not None else path
        scn.save(scenario, target)
        sections = [section for section in
                    ("application", "task_graph", "platform",
                     "mapping", "qos")
                    if getattr(scenario, section) is not None]
        print(f"{path}: ok ({', '.join(sections)}) -> {target}")
    return status


def _cmd_scenario_generate(args) -> int:
    from repro.scenario import generate_corpus

    report = generate_corpus(
        args.out, count=args.count, seed=args.seed,
        workers=args.workers, app_fraction=args.app_fraction,
        mutate=args.mutate)
    print(report.summary())
    if args.min_clean is not None \
            and report.clean_fraction < args.min_clean:
        print(f"scenario generate: clean fraction "
              f"{report.clean_fraction:.0%} below required "
              f"{args.min_clean:.0%}", file=sys.stderr)
        return 1
    return 0


def _cmd_scenario_sweep(args) -> int:
    import repro.scenario as scn

    paths = []
    for name in args.paths:
        path = Path(name)
        if path.is_dir():
            paths.extend(sorted(path.glob("*.json")))
        elif path.is_file():
            paths.append(path)
        else:
            print(f"scenario sweep: no such path: {path}",
                  file=sys.stderr)
            return 2
    paths = [p for p in paths if scn.is_scenario_file(p)]
    if not paths:
        print("scenario sweep: no scenario files to sweep",
              file=sys.stderr)
        return 2
    worker_counts = tuple(int(w) for w in args.workers.split(","))
    report = scn.sweep(paths, replicas=args.replicas,
                       seed=args.seed, worker_counts=worker_counts)
    for entry in report.entries:
        if entry.ok:
            print(f"  ok {entry.path}")
        else:
            detail = entry.error or "payloads differ across workers"
            print(f"FAIL {entry.path}: {detail}")
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_scenario(args) -> int:
    handlers = {
        "export": _cmd_scenario_export,
        "import": _cmd_scenario_import,
        "generate": _cmd_scenario_generate,
        "sweep": _cmd_scenario_sweep,
    }
    handler = handlers.get(args.scenario_command)
    if handler is None:
        print("scenario: choose one of export/import/generate/sweep",
              file=sys.stderr)
        return 2
    return handler(args)


#: Default location of the current bench document (what ``--compare``
#: reads when no experiment ids are given on the command line).
DEFAULT_BENCH_OUT = "BENCH_perf.json"


def _cmd_bench(args) -> int:
    from repro.obs import perf

    if args.experiments:
        ids = _resolve_ids(args.experiments)
        if ids is None:
            return 2
        if args.live and args.replicas <= 1:
            print("bench: --live shows replica progress and needs "
                  "--replicas N", file=sys.stderr)
            return 2
        if args.scheduler is not None:
            if _select_scheduler(args.scheduler, "bench") != 0:
                return 2
        document = perf.run_bench(
            ids, repeat=args.repeat, seed=args.seed,
            workers=args.workers, replicas=args.replicas,
            live=args.live, scheduler=args.scheduler,
            progress=lambda exp_id: print(
                f"bench: {exp_id} (repeat={args.repeat})",
                file=sys.stderr),
        )
        if args.out:
            path = perf.write_document(document, args.out)
            print(f"wrote {path}", file=sys.stderr)
        perf.summary_table(document).show()
        if args.profile:
            profile_dir = Path(args.profile_dir)
            profile_dir.mkdir(parents=True, exist_ok=True)
            for exp_id in ids:
                profiler = perf.Profiler(mode=args.profile_mode)
                with profiler:
                    experiments.run(exp_id, seed=args.seed,
                                    trace=profiler.tracer)
                report = profiler.report
                print()
                report.hotspot_table(args.top).show()
                if report.wall_by_owner:
                    report.owner_table(args.top).show()
                collapsed = profile_dir / f"{exp_id}.collapsed.txt"
                n_lines = report.write_collapsed(collapsed)
                print(f"{exp_id}: wrote {n_lines} collapsed stacks "
                      f"to {collapsed}")
    else:
        if not args.compare:
            print("bench: give experiment ids to measure, or "
                  "--compare OLD.json to gate an existing document",
                  file=sys.stderr)
            return 2
        current = Path(args.out or DEFAULT_BENCH_OUT)
        if not current.is_file():
            print(f"bench: no current document at {current} "
                  f"(run 'repro bench <ids> --out {current}' first)",
                  file=sys.stderr)
            return 2
        try:
            document = perf.load_document(current)
        except ValueError as error:
            print(f"bench: {error}", file=sys.stderr)
            return 2

    if args.compare:
        try:
            baseline = perf.load_document(args.compare)
        except (OSError, ValueError) as error:
            print(f"bench: cannot load baseline: {error}",
                  file=sys.stderr)
            return 2
        report = perf.compare_documents(
            baseline, document, threshold_pct=args.threshold)
        print()
        report.table().show()
        if report.any_regression:
            ids_ = ", ".join(d.id for d in report.regressions)
            print(f"REGRESSION: {ids_} slower than baseline by more "
                  f"than {args.threshold:g}%", file=sys.stderr)
            return 1
        print(f"no regression beyond {args.threshold:g}% "
              f"against {args.compare}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for 'Distributed "
                    "Multimedia System Design: A Holistic Perspective' "
                    "(DATE 2004).",
    )
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments", nargs="+",
        help="experiment ids (e.g. e3 e8) or 'all'",
    )
    run_parser.add_argument("--json", action="store_true",
                            help="print the ExperimentResult as JSON")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="base seed (default 0)")
    run_parser.add_argument("--trace", action="store_true",
                            help="record a kernel event trace")
    run_parser.add_argument("--out", default=None, metavar="DIR",
                            help="write <id>.json (and traces) here")
    run_parser.add_argument(
        "--scenario", default=None, metavar="FILE",
        help="substitute this scenario file for the experiment's "
             "registered models (single runs only; replicate a "
             "scenario via the scenario:<path> experiment id)")
    run_parser.add_argument(
        "--replicas", type=int, default=1, metavar="N",
        help="run N independent replicas (derived seeds) and pool "
             "them with across-replica confidence intervals")
    run_parser.add_argument(
        "--workers", type=int, default=None, metavar="K",
        help="worker processes for --replicas (default: cpu count); "
             "results are identical for any K")
    run_parser.add_argument(
        "--replica-timeout", type=float, default=None, metavar="SEC",
        help="wall-clock budget per replica attempt; a hung replica "
             "is terminated and retried (default: wait forever)")
    run_parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts for a crashed/hung/erroring replica "
             "(default 2; the retry reruns the same derived seed, so "
             "the merged payload never changes)")
    run_parser.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="append each completed replica to this JSONL journal")
    run_parser.add_argument(
        "--resume", default=None, metavar="FILE",
        help="skip replicas already completed in this journal "
             "(from an interrupted sweep) and keep appending to it")
    run_parser.add_argument(
        "--allow-partial", action="store_true",
        help="merge surviving replicas when some exhaust every "
             "attempt, with failed_replicas accounting in the report "
             "(default: fail the sweep)")
    run_parser.add_argument(
        "--probe", type=float, nargs="?", const=1.0, default=None,
        metavar="SEC",
        help="sample KPI time series every SEC simulated seconds "
             "(default interval 1.0); series land in report.stats "
             "and render with 'repro report --html'")
    run_parser.add_argument(
        "--slo", action="append", default=None, metavar="SPEC",
        help="service-level objective over a time series, e.g. "
             "'probe_queue_len:mean:5 <= 10'; repeatable; verdicts "
             "and breach events land in report.slo")
    run_parser.add_argument(
        "--slo-strict", action="store_true",
        help="exit 3 when any SLO finished breached")
    run_parser.add_argument(
        "--live", action="store_true",
        help="render live per-replica progress (sim-time, events/sec) "
             "to stderr while a replicated sweep runs; display only — "
             "the merged payload is unchanged")
    run_parser.add_argument(
        "--scheduler", default=None, metavar="NAME",
        help="DES scheduler backend for every Environment in this "
             "run (see repro.des.scheduler_names(): heap, calendar); "
             "payloads are byte-identical across backends")

    trace_parser = subparsers.add_parser(
        "trace", help="run one experiment with tracing, export JSONL")
    trace_parser.add_argument("experiment", help="experiment id")
    trace_parser.add_argument("--seed", type=int, default=None)
    trace_parser.add_argument("--out", default=None, metavar="FILE",
                              help="trace path "
                                   "(default <id>.trace.jsonl)")

    check_parser = subparsers.add_parser(
        "check",
        help="static model verification + simulation lint")
    check_parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: src/ benchmarks/)")
    check_parser.add_argument(
        "--models", action="store_true",
        help="run only the Layer-1 model verifier")
    check_parser.add_argument(
        "--lint", action="store_true",
        help="run only the Layer-2 simulation lint")
    check_parser.add_argument(
        "--flow", action="store_true",
        help="run only the Layer-3 flow analyzer (simflow)")
    check_parser.add_argument(
        "--json", action="store_true",
        help="print diagnostics as a stable JSON document")
    check_parser.add_argument(
        "--sarif", default=None, metavar="FILE",
        help="also write findings as a SARIF 2.1.0 document")
    check_parser.add_argument(
        "--baseline", choices=("write", "compare"), default=None,
        help="record current findings as accepted debt (write), or "
             "subtract the recorded debt and report stale entries "
             "(compare)")
    check_parser.add_argument(
        "--baseline-file", default=".repro-baseline.json",
        metavar="FILE", help="baseline path "
                             "(default .repro-baseline.json)")
    check_parser.add_argument(
        "--strict", action="store_true",
        help="fail (exit 1) on warnings too, not just errors")
    check_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the JSON diagnostics document here")

    scenario_parser = subparsers.add_parser(
        "scenario",
        help="declarative scenario files: export, import, generate, "
             "sweep")
    scenario_sub = scenario_parser.add_subparsers(
        dest="scenario_command")
    export_parser = scenario_sub.add_parser(
        "export",
        help="write an experiment's registered scenarios as "
             "repro.scenario/v1 JSON files")
    export_parser.add_argument("experiments", nargs="+",
                               help="experiment ids or 'all'")
    export_parser.add_argument("--out", default="scenarios",
                               metavar="DIR",
                               help="output directory "
                                    "(default scenarios/)")
    import_parser = scenario_sub.add_parser(
        "import",
        help="validate scenario files and rewrite them in canonical "
             "byte-stable form")
    import_parser.add_argument("files", nargs="+",
                               help="scenario JSON files")
    import_parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="write canonical copies here instead of in place")
    generate_parser = scenario_sub.add_parser(
        "generate",
        help="sample a seeded corpus of verifier-clean scenarios")
    generate_parser.add_argument("--count", type=int, default=100,
                                 metavar="N",
                                 help="samples to draw (default 100)")
    generate_parser.add_argument("--seed", type=int, default=0,
                                 help="master seed (default 0)")
    generate_parser.add_argument("--out", default="corpus",
                                 metavar="DIR",
                                 help="corpus directory "
                                      "(default corpus/)")
    generate_parser.add_argument(
        "--workers", type=int, default=None, metavar="K",
        help="sampling processes (output is identical for any K)")
    generate_parser.add_argument(
        "--mutate", type=float, default=0.0, metavar="P",
        help="probability of injecting a deliberate defect per "
             "sample; defects are minimized into counterexamples/ "
             "(default 0)")
    generate_parser.add_argument(
        "--app-fraction", type=float, default=0.7, metavar="F",
        help="fraction of samples that are application scenarios "
             "rather than task-graph scenarios (default 0.7)")
    generate_parser.add_argument(
        "--min-clean", type=float, default=None, metavar="FRAC",
        help="exit 1 when the clean fraction falls below FRAC "
             "(e.g. 0.95)")
    sweep_parser = scenario_sub.add_parser(
        "sweep",
        help="differentially replicate scenario files; fail unless "
             "merged payloads are byte-identical across worker "
             "counts")
    sweep_parser.add_argument(
        "paths", nargs="+",
        help="scenario files or corpus directories (top-level "
             "*.json)")
    sweep_parser.add_argument("--replicas", type=int, default=2,
                              metavar="N",
                              help="replicas per run (default 2)")
    sweep_parser.add_argument("--seed", type=int, default=0,
                              help="base seed (default 0)")
    sweep_parser.add_argument(
        "--workers", default="1,4", metavar="CSV",
        help="comma-separated worker counts to compare "
             "(default 1,4)")

    bench_parser = subparsers.add_parser(
        "bench",
        help="measure experiments, write/compare BENCH_perf.json")
    bench_parser.add_argument(
        "experiments", nargs="*",
        help="experiment ids to measure (or 'all'); omit together "
             "with --compare to gate an existing document")
    bench_parser.add_argument(
        "--repeat", type=int, default=3, metavar="N",
        help="repetitions per experiment (default 3)")
    bench_parser.add_argument("--seed", type=int, default=0,
                              help="base seed (default 0)")
    bench_parser.add_argument(
        "--replicas", type=int, default=1, metavar="N",
        help="measure replicated runs: each repetition fans N "
             "replicas over --workers processes (default 1)")
    bench_parser.add_argument(
        "--workers", type=int, default=1, metavar="K",
        help="worker processes: parallelises repetitions "
             "(replicas=1) or each replicated run (default 1)")
    bench_parser.add_argument(
        "--profile", action="store_true",
        help="also profile each experiment: print hotspot/process "
             "tables, write <id>.collapsed.txt flamegraph input")
    bench_parser.add_argument(
        "--profile-dir", default=".", metavar="DIR",
        help="directory for collapsed-stack files (default .)")
    bench_parser.add_argument(
        "--profile-mode", choices=("sample", "cprofile"),
        default="sample",
        help="profiler engine: statistical sampling (cheap, exact "
             "stacks) or cProfile (exact counts, 3-5x slower)")
    bench_parser.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="rows in the profile tables (default 15)")
    bench_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help=f"write the bench document here; with no ids, the "
             f"document --compare reads (default {DEFAULT_BENCH_OUT})")
    bench_parser.add_argument(
        "--compare", default=None, metavar="OLD",
        help="baseline BENCH_perf.json to diff against; exits 1 on "
             "regression beyond --threshold")
    bench_parser.add_argument(
        "--threshold", type=float, default=10.0, metavar="PCT",
        help="regression threshold in percent (default 10)")
    bench_parser.add_argument(
        "--live", action="store_true",
        help="with --replicas > 1: live per-replica progress to "
             "stderr while each replicated repetition runs")
    bench_parser.add_argument(
        "--scheduler", default=None, metavar="NAME",
        help="DES scheduler backend to measure under (heap, "
             "calendar); recorded in the document's meta")

    report_parser = subparsers.add_parser(
        "report",
        help="print run reports, or render an HTML dashboard")
    report_parser.add_argument(
        "experiments", nargs="+",
        help="experiment ids, 'all', or existing JSON files (a "
             "RunReport, a 'run --json' payload, or BENCH_perf.json)")
    report_parser.add_argument("--seed", type=int, default=None)
    report_parser.add_argument("--json", action="store_true",
                               help="print the RunReport as JSON")
    report_parser.add_argument(
        "--html", default=None, metavar="FILE",
        help="write a self-contained HTML dashboard (SVG sparklines, "
             "KPI tables, SLO breach timeline) to FILE")
    report_parser.add_argument(
        "--probe", type=float, nargs="?", const=1.0, default=None,
        metavar="SEC",
        help="sample KPI time series while running (as 'run --probe')")
    report_parser.add_argument(
        "--slo", action="append", default=None, metavar="SPEC",
        help="evaluate this SLO spec (as 'run --slo'); repeatable")

    args = parser.parse_args(argv)

    if args.command == "list" or args.command is None:
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "report":
        return _cmd_report(args)
    parser.error(f"unknown command {args.command!r}")
    return 2
