"""Command-line experiment runner.

Usage::

    python -m repro list              # enumerate experiments
    python -m repro run e6 e8         # run selected experiments
    python -m repro run all           # run everything (minutes)

Each experiment prints the headline table of the corresponding paper
claim (see EXPERIMENTS.md); the full assertion-checked versions live in
``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.utils import Table

__all__ = ["main", "EXPERIMENTS"]


def _run_f1() -> None:
    from repro.streams import simulate_mpeg2_decoder

    table = Table(["cpu_mhz", "fps", "b3_occ", "b4_occ", "util"],
                  title="F1: MPEG-2 decoder buffer study (Fig.1b)")
    for freq in (400e6, 100e6, 60e6):
        report = simulate_mpeg2_decoder(cpu_frequency=freq,
                                        horizon=10.0, warmup=1.0)
        table.add_row([freq / 1e6, report.throughput_fps,
                       report.b3_mean_occupancy,
                       report.b4_mean_occupancy,
                       report.cpu_utilization])
    table.show()


def _run_f2() -> None:
    from repro.asip import (ExtensibleProcessor, ExtensibleProcessorFlow,
                            IsaRestrictions, voice_recognition_workload)

    base = ExtensibleProcessor(
        restrictions=IsaRestrictions(max_instructions=9,
                                     gate_budget=200_000.0))
    report = ExtensibleProcessorFlow(
        base, voice_recognition_workload(), target_speedup=5.0).run()
    table = Table(["iteration", "allowed", "speedup", "gates"],
                  title="F2: extensible-processor design flow (Fig.2)")
    for it in report.iterations:
        table.add_row([it.index, it.max_instructions_tried,
                       it.speedup, it.gate_count])
    table.show()


def _run_e1() -> None:
    _run_f2()


def _run_e2() -> None:
    from repro.traffic import (fgn_trace, poisson_trace, queue_tail,
                               variance_time_hurst)

    table = Table(["trace", "hurst_vt", "P[Q>20]"],
                  title="E2: self-similar vs Markovian queueing")
    for name, trace in [
        ("fgn H=0.85", fgn_trace(2**14, 0.85, 10.0, 0.4, seed=1)),
        ("poisson", poisson_trace(2**14, 10.0, seed=2)),
    ]:
        table.add_row([name, variance_time_hurst(trace),
                       queue_tail(trace, 12.0, [20.0])[0]])
    table.show()


def _run_e3() -> None:
    from repro.noc import (Mesh2D, NocEnergyModel, adhoc_mapping,
                           mms_apcg, random_noc_mapping,
                           simulated_annealing_mapping)

    tg, mesh, model = mms_apcg(), Mesh2D(4, 4), NocEnergyModel()
    table = Table(["mapping", "comm_energy_uJ"],
                  title="E3: NoC mapping energy (MMS graph)")
    table.add_row(["random", random_noc_mapping(
        tg, mesh, seed=3).communication_energy(tg, model) * 1e6])
    table.add_row(["ad-hoc", adhoc_mapping(
        tg, mesh).communication_energy(tg, model) * 1e6])
    table.add_row(["simulated annealing", simulated_annealing_mapping(
        tg, mesh, seed=1, n_iterations=15_000
    ).communication_energy(tg, model) * 1e6])
    table.show()


def _run_e4() -> None:
    from repro.noc import (Mesh2D, edf_schedule, energy_aware_schedule,
                           greedy_mapping, video_surveillance_apcg)

    tg = video_surveillance_apcg()
    mapping = greedy_mapping(tg, Mesh2D(4, 3))
    edf = edf_schedule(tg, mapping)
    eas = energy_aware_schedule(tg, mapping)
    table = Table(["scheduler", "energy_mJ", "feasible"],
                  title="E4: EDF vs energy-aware scheduling")
    table.add_row(["EDF@fmax", edf.total_energy * 1e3, edf.feasible])
    table.add_row(["energy-aware", eas.total_energy * 1e3,
                   eas.feasible])
    table.show()
    print(f"saving: {(1 - eas.total_energy / edf.total_energy) * 100:.1f}%")


def _run_e5() -> None:
    from repro.noc import packet_size_sweep

    table = Table(["payload_bits", "latency_us", "energy_pJ_per_bit"],
                  title="E5: packet-size trade-off")
    for r in packet_size_sweep([256.0, 4_096.0, 65_536.0],
                               horizon=0.02):
        table.add_row([int(r.payload_bits),
                       r.mean_message_latency * 1e6,
                       r.energy_per_payload_bit * 1e12])
    table.show()


def _run_e6() -> None:
    from repro.wireless import evaluate_adaptation

    result = evaluate_adaptation()
    print(f"E6: static {result.static_energy * 1e3:.1f} mJ -> dynamic "
          f"{result.dynamic_energy * 1e3:.1f} mJ "
          f"({result.energy_reduction * 100:.1f}% reduction; "
          f"paper ~12%)")


def _run_e7() -> None:
    from repro.wireless import evaluate_image_transmission

    result = evaluate_image_transmission()
    print(f"E7: worst-case {result.baseline_energy * 1e3:.0f} mJ -> "
          f"adaptive {result.adaptive_energy * 1e3:.0f} mJ "
          f"({result.energy_saving * 100:.1f}% saving; paper ~60%)")


def _run_e8() -> None:
    from repro.streaming import compare_streaming_policies

    c = compare_streaming_policies(n_frames=1_500)
    print(f"E8: feedback streaming saves "
          f"{c.rx_energy_reduction * 100:.1f}% client RX energy "
          f"(paper ~15%); normalized load "
          f"{c.feedback.mean_normalized_load:.3f}")


def _run_e9() -> None:
    from repro.manet import PROTOCOLS, compare_protocols

    results = compare_protocols(PROTOCOLS, n_nodes=50, seed=0,
                                n_sessions=100_000)
    base = results["min-power"].lifetime_sessions
    table = Table(["protocol", "lifetime_sessions", "vs_min_power"],
                  title="E9: MANET network lifetime")
    for name, r in results.items():
        table.add_row([name, r.lifetime_sessions,
                       r.lifetime_sessions / base - 1])
    table.show()


def _run_e10() -> None:
    from repro.analysis import compare_mm1k

    rows, sim_s, ana_s = compare_mm1k(8.0, 10.0, 5, horizon=1_000.0,
                                      warmup=100.0)
    table = Table(["metric", "sim", "analytic"],
                  title="E10: simulation vs analysis (M/M/1/5)")
    for row in rows:
        table.add_row([row.metric, row.simulated, row.analytical])
    table.show()
    print(f"analysis {sim_s / max(ana_s, 1e-9):.0f}x faster")


def _run_e11() -> None:
    from repro.streams import Mpeg2Workload, simulate_mpeg2_decoder

    workload = Mpeg2Workload(cycles_cv=0.8)
    table = Table(["provisioning", "cpu_mhz", "fps", "util"],
                  title="E11: worst-case vs average provisioning")
    for label, freq in [("worst-case", 260e6), ("1.3x average", 92e6)]:
        r = simulate_mpeg2_decoder(workload=workload,
                                   cpu_frequency=freq, horizon=10.0,
                                   warmup=1.0)
        table.add_row([label, freq / 1e6, r.throughput_fps,
                       r.cpu_utilization])
    table.show()


def _run_e12() -> None:
    from repro.noc import bus_vs_noc_sweep

    table = Table(["tiles", "bus_saturation", "noc_saturation"],
                  title="E12: bus vs NoC scaling")
    for bus, noc in bus_vs_noc_sweep(tile_counts=(8, 16, 32),
                                     rate_per_tile=20_000.0):
        table.add_row([bus.n_tiles, bus.saturation, noc.saturation])
    table.show()


def _run_e13() -> None:
    from repro.noc import memory_organization_study

    table = Table(["organization", "latency_us", "hot_link_Mbps"],
                  title="E13: centralized vs local memories")
    for r in memory_organization_study(access_rate=400_000.0,
                                       seed=1).values():
        table.add_row([r.organization, r.mean_access_latency * 1e6,
                       r.hot_link_bps / 1e6])
    table.show()


def _run_e14() -> None:
    from repro.core import timeout_sweep

    table = Table(["policy", "saving", "late_rate"],
                  title="E14: DPM energy-QoS trade-off")
    for r in timeout_sweep([0.02, 0.05, 0.2]):
        table.add_row([r.policy, r.energy_saving, r.late_rate])
    table.show()


def _run_e15() -> None:
    from repro.ambient import redundancy_study, user_aware_energy_study

    table = Table(["nodes_per_zone", "availability"],
                  title="E15: smart-space redundancy")
    for r in redundancy_study(n_slots=20_000, seed=4):
        table.add_row([r.nodes_per_zone, r.measured_availability])
    table.show()
    results = user_aware_energy_study(n_slots=20_000, seed=5)
    saving = 1 - results["user-aware"].energy / \
        results["always-on"].energy
    print(f"user-aware ambient operation saves {saving * 100:.1f}%")


def _run_e17() -> None:
    from repro.analysis import state_space_study

    table = Table(["stages", "states", "exact_s", "sim_s"],
                  title="E17: exact-analysis state explosion")
    for row in state_space_study(max_stages=4, capacity=4):
        table.add_row([row["stages"], row["states"],
                       row["exact_seconds"], row["sim_seconds"]])
    table.show()


def _run_e16() -> None:
    from repro.streams import explore_rate_arq, pareto_points

    points = explore_rate_arq(horizon=15.0)
    front = pareto_points(points)
    table = Table(["i_frame_bits", "retries", "loss", "energy_J"],
                  title="E16: source-rate/ARQ Pareto front")
    for p in front:
        table.add_row([int(p.i_frame_bits), p.max_retries,
                       p.report.loss_rate, p.energy])
    table.show()


#: Experiment registry: id → (description, runner).
EXPERIMENTS: dict[str, tuple[str, Callable[[], None]]] = {
    "f1": ("Fig.1 stream model & MPEG-2 decoder buffers", _run_f1),
    "f2": ("Fig.2 extensible-processor design flow", _run_f2),
    "e1": ("ASIP voice recognition: 5-10x, <10 instr, <200k gates",
           _run_e1),
    "e2": ("self-similar vs Markovian traffic & queueing", _run_e2),
    "e3": ("energy-aware NoC mapping (>50% saving)", _run_e3),
    "e4": ("EDF vs energy-aware scheduling (>40% saving)", _run_e4),
    "e5": ("NoC packet-size trade-off", _run_e5),
    "e6": ("dynamic transceiver adaptation (~12%)", _run_e6),
    "e7": ("JSCC image transmission (~60%)", _run_e7),
    "e8": ("feedback FGS streaming (~15% client RX energy)", _run_e8),
    "e9": ("power-aware MANET routing (>20% lifetime)", _run_e9),
    "e10": ("simulation vs analytical steady state", _run_e10),
    "e11": ("worst-case vs average-case provisioning", _run_e11),
    "e12": ("bus vs NoC scaling", _run_e12),
    "e13": ("centralized vs local memories", _run_e13),
    "e14": ("DPM QoS-energy trade-off", _run_e14),
    "e15": ("ambient redundancy & user-aware energy", _run_e15),
    "e16": ("source-rate / retransmission co-exploration", _run_e16),
    "e17": ("exact-analysis state-space explosion", _run_e17),
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction experiments for 'Distributed "
                    "Multimedia System Design: A Holistic Perspective' "
                    "(DATE 2004).",
    )
    subparsers = parser.add_subparsers(dest="command")
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiments", nargs="+",
        help="experiment ids (e.g. e3 e8) or 'all'",
    )
    args = parser.parse_args(argv)

    if args.command == "list" or args.command is None:
        table = Table(["id", "experiment"],
                      title="available experiments")
        for exp_id, (description, _) in EXPERIMENTS.items():
            table.add_row([exp_id, description])
        table.show()
        return 0

    requested = args.experiments
    if requested == ["all"]:
        requested = list(EXPERIMENTS)
    unknown = [e for e in requested if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)} "
              f"(try 'repro list')", file=sys.stderr)
        return 2
    for exp_id in requested:
        description, runner = EXPERIMENTS[exp_id]
        print(f"\n--- {exp_id}: {description} ---")
        runner()
    return 0
