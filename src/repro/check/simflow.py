"""Layer 3: "simflow" — interprocedural flow analysis of DES processes.

Where the Layer-2 lint (:mod:`repro.check.simlint`) checks individual
statements, this analyzer reasons about what simulation processes *do*
along control-flow paths: it builds a control-flow graph per function
(:mod:`repro.check.cfg`), a call graph across the analyzed files, and
runs a flow-sensitive abstract interpretation over the DES-kernel API.

Rules (catalog in :mod:`repro.check.diagnostics`):

* ``SF301`` — a kernel event bound to a variable is overwritten by a
  new event before being yielded: the first event leaks unwaited.
* ``SF302`` — a process function (one that yields kernel events) also
  yields a bare constant; the kernel rejects non-event yields at run
  time, this catches it statically.
* ``SF303`` — resource acquire/release pairing: a ``request()`` held
  across a ``yield`` without ``try/finally`` release leaks when the
  process is interrupted, and a path that reaches function exit
  without releasing leaks unconditionally.  ``with``-scoped requests
  are always safe.
* ``SF304`` — process functions acquire two resources in conflicting
  orders (a cycle in the project-wide acquisition-order graph):
  potential deadlock.
* ``SF305`` — an event scheduled with a negative (past) delay; the
  kernel raises at run time.
* ``SF306`` — an infinite loop in a process function with no ``yield``
  in its body: the process spins without ever returning control to
  the scheduler, starving the simulation.
* ``SF307`` — determinism taint (:mod:`repro.check.taint`): a value
  derived from wall clock / unseeded RNG / ``id()`` / ``hash()`` /
  set iteration order reaches a timeout, schedule, or seed argument.

Findings are suppressed with the shared pragma grammar
(:mod:`repro.check.pragmas`): ``# simlint: ignore[SF303]`` (the
``simflow:`` tag is an accepted synonym), with the repository
convention of a justification after the pragma.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.check.astcache import ParsedFile, parse_file, parse_source
from repro.check.cfg import (
    CFG,
    ForIter,
    WithEnter,
    WithExit,
    build_cfg,
    dataflow,
    function_defs,
    is_generator,
)
from repro.check.diagnostics import Diagnostic, make_diagnostic
from repro.check.pragmas import collect_pragmas, filter_suppressed
from repro.check.taint import TaintAnalysis

__all__ = ["analyze_source", "analyze_file", "analyze_paths"]

#: Methods that create kernel events (the SL203 family), with the
#: argument-count gates that keep dict.get()/list-like APIs out.
_EVENT_METHODS = {"timeout", "event", "request", "get", "put",
                  "any_of", "all_of", "hold", "wait"}

#: Method names that consume/settle an event held in a variable.
_EVENT_CONSUMERS = {"succeed", "fail", "trigger"}

#: Method names that release an acquired request.
_RELEASERS = {"cancel", "release"}


def _event_method(call: ast.Call) -> str | None:
    """Name of the kernel-event factory ``call`` invokes, or None."""
    func = call.func
    if not isinstance(func, ast.Attribute) \
            or func.attr not in _EVENT_METHODS:
        return None
    attr = func.attr
    n_args = len(call.args) + len(call.keywords)
    if attr == "get" and n_args != 0:
        return None  # dict.get(key) and friends
    if attr == "put" and n_args != 1:
        return None
    if attr == "request" and n_args > 1:
        return None
    return attr


def _is_process_function(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    """Heuristic: a generator that is a DES process.

    True when the function yields at least one kernel-event factory
    call, or is a generator with an ``env``/``environment`` parameter
    (the repository's process-function signature convention).  Plain
    data generators match neither and are exempt from the process
    rules.
    """
    if not is_generator(func):
        return False
    params = {a.arg for a in (func.args.posonlyargs + func.args.args
                              + func.args.kwonlyargs)}
    if params & {"env", "environment"}:
        return True
    return _yields_events(func)


def _yields_events(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    for node in _walk_function(func):
        if isinstance(node, ast.Yield) \
                and isinstance(node.value, ast.Call) \
                and _event_method(node.value) is not None:
            return True
    return False


def _uses_kernel_events(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    """True when the function creates kernel events anywhere — the
    gate for SF302: a generator that drives the kernel must not also
    yield bare constants, while a pure data generator may."""
    for node in _walk_function(func):
        if isinstance(node, ast.Call) \
                and _event_method(node) is not None:
            return True
    return False


def _walk_function(func: ast.AST) -> Iterable[ast.AST]:
    """Walk ``func`` without descending into nested definitions."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _parent_map(func: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(func):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _negative_constant(expr: ast.expr) -> bool:
    if isinstance(expr, ast.UnaryOp) \
            and isinstance(expr.op, ast.USub) \
            and isinstance(expr.operand, ast.Constant) \
            and isinstance(expr.operand.value, (int, float)) \
            and expr.operand.value > 0:
        return True
    return (isinstance(expr, ast.Constant)
            and isinstance(expr.value, (int, float))
            and not isinstance(expr.value, bool)
            and expr.value < 0)


def _releases_var(stmts: list[ast.stmt], var: str) -> bool:
    """True when ``stmts`` contain a release of request ``var``
    (``res.release(var)`` or ``var.cancel()``)."""
    for stmt in stmts:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) \
                    or func.attr not in _RELEASERS:
                continue
            if isinstance(func.value, ast.Name) \
                    and func.value.id == var:
                return True  # var.cancel() / var.release()
            if any(isinstance(arg, ast.Name) and arg.id == var
                   for arg in node.args):
                return True  # res.release(var)
    return False


def _yield_protected(node: ast.AST,
                     parents: dict[ast.AST, ast.AST],
                     var: str) -> bool:
    """True when an exception escaping ``node`` runs a release of
    ``var`` — i.e. some enclosing ``try`` whose protected body holds
    ``node`` has a ``finally`` (or a handler) releasing it."""
    child = node
    parent = parents.get(node)
    while parent is not None:
        if isinstance(parent, ast.Try):
            in_body = any(_contains(stmt, child)
                          for stmt in parent.body + parent.orelse)
            if in_body:
                if _releases_var(parent.finalbody, var):
                    return True
                for handler in parent.handlers:
                    if _releases_var(handler.body, var):
                        return True
        child, parent = parent, parents.get(parent)
    return False


def _contains(root: ast.AST, target: ast.AST) -> bool:
    if root is target:
        return True
    return any(target is node for node in ast.walk(root))


# ----------------------------------------------------------------------
# Lock-order collection (SF304)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _LockEdge:
    first: str
    second: str
    path: str
    func: str
    line: int


def _resource_text(expr: ast.expr) -> str:
    """Stable identity of the resource a ``request()`` targets: the
    unparsed receiver expression (``self.bus``, ``links[i]``)."""
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<resource>"


def _collect_lock_edges(path: str, qualname: str,
                        func: ast.FunctionDef | ast.AsyncFunctionDef,
                        ) -> list[_LockEdge]:
    """Acquisition-order pairs of one process function, collected by a
    source-order walk (held set maintained through with-scopes and
    explicit releases)."""
    edges: list[_LockEdge] = []
    held: list[str] = []
    var_to_res: dict[str, str] = {}

    def acquire(res: str, line: int) -> None:
        for earlier in held:
            if earlier != res:
                edges.append(_LockEdge(earlier, res, path, qualname,
                                       line))
        held.append(res)

    def visit(stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef,
                                 ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                scoped: list[str] = []
                for item in stmt.items:
                    ctx = item.context_expr
                    if isinstance(ctx, ast.Call) \
                            and _event_method(ctx) == "request":
                        res = _resource_text(ctx.func.value)
                        acquire(res, stmt.lineno)
                        scoped.append(res)
                visit(stmt.body)
                for res in reversed(scoped):
                    if res in held:
                        held.remove(res)
                continue
            if isinstance(stmt, ast.Assign) \
                    and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and isinstance(stmt.value, ast.Call) \
                    and _event_method(stmt.value) == "request":
                res = _resource_text(stmt.value.func.value)
                acquire(res, stmt.lineno)
                var_to_res[stmt.targets[0].id] = res
            # Releases anywhere in the statement.
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _RELEASERS:
                    released: str | None = None
                    if isinstance(node.func.value, ast.Name):
                        released = var_to_res.get(node.func.value.id)
                    for arg in node.args:
                        if isinstance(arg, ast.Name) \
                                and arg.id in var_to_res:
                            released = var_to_res[arg.id]
                    if released is not None and released in held:
                        held.remove(released)
            # Recurse into compound statements.
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if inner and not isinstance(
                        stmt, (ast.With, ast.AsyncWith)):
                    visit(inner)
            for handler in getattr(stmt, "handlers", ()) or ():
                visit(handler.body)

    visit(func.body)
    return edges


def _lock_cycles(edges: list[_LockEdge]) -> list[list[_LockEdge]]:
    """Cycles in the acquisition-order graph, as edge lists.

    Detection is pairwise-and-up via DFS over the resource graph;
    each cycle is reported once (deduped by its resource set).
    """
    graph: dict[str, dict[str, _LockEdge]] = {}
    for edge in edges:
        graph.setdefault(edge.first, {}).setdefault(edge.second, edge)
    cycles: list[list[_LockEdge]] = []
    seen: set[frozenset[str]] = set()

    def dfs(start: str, node: str, trail: list[_LockEdge],
            visited: set[str]) -> None:
        for nxt, edge in graph.get(node, {}).items():
            if nxt == start and trail:
                key = frozenset(e.first for e in trail + [edge])
                if key not in seen:
                    seen.add(key)
                    cycles.append(trail + [edge])
            elif nxt not in visited and len(trail) < 6:
                visited.add(nxt)
                dfs(start, nxt, trail + [edge], visited)
                visited.discard(nxt)

    for start in sorted(graph):
        dfs(start, start, [], {start})
    return cycles


# ----------------------------------------------------------------------
# Per-function flow rules: SF301, SF303
# ----------------------------------------------------------------------
class _FunctionFlow:
    """Flow-sensitive event/resource state machine of one function."""

    def __init__(self, path: str, qualname: str,
                 func: ast.FunctionDef | ast.AsyncFunctionDef,
                 cfg: CFG, emit) -> None:
        self.path = path
        self.qualname = qualname
        self.func = func
        self.cfg = cfg
        self.emit = emit
        self.parents = _parent_map(func)
        self.reported: set[tuple] = set()

    # -- mention classification ---------------------------------------
    def _mentions(self, atom) -> dict[str, set[str]]:
        """Classify how each variable is used inside ``atom``.

        Categories: ``call-arg`` (escapes), ``released`` (receiver of
        cancel/release or argument of a ``release`` call),
        ``yield-use`` (inside a yield, outside any call), ``load``
        (anything else).
        """
        uses: dict[str, set[str]] = {}
        parents = {}
        for node in ast.walk(atom) if not isinstance(
                atom, (WithEnter, WithExit, ForIter)) else ():
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node, parent in list(parents.items()):
            if not isinstance(node, ast.Name) \
                    or not isinstance(node.ctx, ast.Load):
                continue  # Store/Del targets are rebinds, not uses
            name = node.id
            kind = "load"
            if isinstance(parent, ast.Call):
                if node in parent.args or any(
                        kw.value is node for kw in parent.keywords):
                    func = parent.func
                    if isinstance(func, ast.Attribute) \
                            and func.attr in _RELEASERS:
                        kind = "released"
                    else:
                        kind = "call-arg"
            if isinstance(parent, ast.Attribute) \
                    and parent.value is node \
                    and isinstance(parents.get(parent), ast.Call) \
                    and parents[parent].func is parent:
                if parent.attr in _RELEASERS:
                    kind = "released"
                elif parent.attr in _EVENT_CONSUMERS:
                    kind = "call-arg"
            if kind == "load":
                walker = parent
                while walker is not None:
                    if isinstance(walker, (ast.Yield, ast.YieldFrom)):
                        kind = "yield-use"
                        break
                    if isinstance(walker, ast.Call):
                        kind = "call-arg"
                        break
                    walker = parents.get(walker)
            uses.setdefault(name, set()).add(kind)
        return uses

    def _report(self, key: tuple, rule: str, message: str,
                line: int) -> None:
        if key in self.reported:
            return
        self.reported.add(key)
        self.emit(rule, message, line)

    # -- transfer ------------------------------------------------------
    def transfer(self, state: dict, atom, reporting: bool) -> dict:
        if isinstance(atom, (WithEnter, WithExit)):
            return state  # with-scoped requests are safe by design
        if isinstance(atom, ForIter):
            state = dict(state)
            for node in ast.walk(atom.node.target):
                if isinstance(node, ast.Name):
                    state.pop(node.id, None)
            return state

        uses = self._mentions(atom)

        # Exception-path check: a yield while a request is held and
        # no enclosing try releases it.
        if reporting:
            yields = [n for n in ast.walk(atom)
                      if isinstance(n, (ast.Yield, ast.YieldFrom))]
            if yields:
                for var, facts in state.items():
                    # ``yield req`` — waiting for the grant itself —
                    # is the canonical acquire step, not a hold
                    # across unrelated simulated work; only later
                    # yields need the try/finally protection.
                    if all(isinstance(y.value, ast.Name)
                           and y.value.id == var for y in yields):
                        continue
                    for fact in facts:
                        if fact[0] != "acquired":
                            continue
                        _, acq_line, res = fact
                        if not _yield_protected(yields[0],
                                                self.parents, var):
                            self._report(
                                ("SF303-yield", var, acq_line),
                                "SF303",
                                f"request {var!r} on {res} (line "
                                f"{acq_line}) is held across a yield "
                                f"without try/finally release — an "
                                f"interrupt or failure here leaks "
                                f"the resource",
                                atom.lineno if hasattr(atom, "lineno")
                                else acq_line,
                            )

        # Apply use-based clearing.
        new_state = None
        for var, kinds in uses.items():
            facts = state.get(var)
            if not facts:
                continue
            keep = set()
            for fact in facts:
                if fact[0] == "pending":
                    continue  # any mention consumes/waives pending
                if fact[0] == "acquired":
                    if kinds & {"call-arg", "released"}:
                        continue  # escaped or released
                    keep.add(fact)
            if keep != facts:
                if new_state is None:
                    new_state = dict(state)
                if keep:
                    new_state[var] = frozenset(keep)
                else:
                    new_state.pop(var, None)
        if new_state is not None:
            state = new_state

        # Rebinding rules.
        target_var: str | None = None
        value: ast.expr | None = None
        if isinstance(atom, ast.Assign) and len(atom.targets) == 1 \
                and isinstance(atom.targets[0], ast.Name):
            target_var = atom.targets[0].id
            value = atom.value
        elif isinstance(atom, ast.AnnAssign) \
                and isinstance(atom.target, ast.Name):
            target_var = atom.target.id
            value = atom.value
        if target_var is None:
            return state

        old_facts = state.get(target_var, frozenset())
        if reporting:
            for fact in old_facts:
                if fact[0] == "pending":
                    self._report(
                        ("SF301", target_var, fact[1]), "SF301",
                        f"kernel event in {target_var!r} (created "
                        f"line {fact[1]} by .{fact[2]}(...)) is "
                        f"overwritten before being yielded — the "
                        f"first event is never waited on",
                        atom.lineno,
                    )
                elif fact[0] == "acquired":
                    self._report(
                        ("SF303-rebind", target_var, fact[1]),
                        "SF303",
                        f"request {target_var!r} on {fact[2]} "
                        f"(acquired line {fact[1]}) is overwritten "
                        f"without release — the grant leaks",
                        atom.lineno,
                    )

        state = dict(state)
        state.pop(target_var, None)
        new_facts: set = set()
        if value is not None and isinstance(value, ast.Call):
            method = _event_method(value)
            if method == "request":
                res = _resource_text(value.func.value)
                new_facts.add(("acquired", atom.lineno, res))
                new_facts.add(("pending", atom.lineno, method))
            elif method is not None and method not in ("put",):
                new_facts.add(("pending", atom.lineno, method))
        if new_facts:
            state[target_var] = frozenset(new_facts)
        return state

    def run(self) -> None:
        def quiet(state: dict, atom) -> dict:
            return self.transfer(state, atom, reporting=False)

        states = dataflow(self.cfg, quiet, {})
        # Reporting pass over the fixpoint.
        for block in self.cfg.reachable():
            state = states.get(block.id)
            if state is None:
                continue
            for atom in block.stmts:
                state = self.transfer(state, atom, reporting=True)
        # Leak on exit: any acquired fact that may reach the exit.
        exit_state = states.get(self.cfg.exit.id, {})
        for var, facts in sorted(exit_state.items()):
            for fact in sorted(facts, key=repr):
                if fact[0] != "acquired":
                    continue
                _, acq_line, res = fact
                self._report(
                    ("SF303-exit", var, acq_line), "SF303",
                    f"request {var!r} on {res} (acquired line "
                    f"{acq_line}) can reach function exit without "
                    f"release — early returns leak the grant",
                    acq_line,
                )


# ----------------------------------------------------------------------
# Syntactic per-function rules: SF302, SF305, SF306
# ----------------------------------------------------------------------
def _check_yields(path: str, func, emit) -> None:
    if not (_yields_events(func) or _uses_kernel_events(func)):
        return
    for node in _walk_function(func):
        if not isinstance(node, ast.Yield):
            continue
        value = node.value
        # A yield of nothing or of a literal constant can never be a
        # kernel event.
        bare = (value is None
                or isinstance(value, ast.Constant)
                or _negative_constant(value))
        if bare:
            shown = ("nothing" if value is None
                     else repr(getattr(value, "value", "...")))
            emit("SF302",
                 f"process yields {shown}, which is not a kernel "
                 f"event — the kernel raises TypeError at run time; "
                 f"yield env.timeout(delay) to advance time",
                 node.lineno)


def _check_negative_delays(tree: ast.AST, emit) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) \
                or not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        delay: ast.expr | None = None
        if attr == "timeout" and node.args:
            delay = node.args[0]
        elif attr == "schedule":
            if len(node.args) > 1:
                delay = node.args[1]
        if delay is None and attr in {"timeout", "schedule"}:
            for keyword in node.keywords:
                if keyword.arg == "delay":
                    delay = keyword.value
        if delay is not None and _negative_constant(delay):
            emit("SF305",
                 f".{attr}(...) schedules "
                 f"{ast.unparse(delay)} time units in the past — "
                 f"the kernel raises ValueError at run time",
                 node.lineno)


def _check_starvation(path: str, func, emit) -> None:
    for node in _walk_function(func):
        if not isinstance(node, ast.While):
            continue
        const_true = (isinstance(node.test, ast.Constant)
                      and bool(node.test.value))
        mentions_now = any(
            isinstance(sub, ast.Attribute) and sub.attr == "now"
            for sub in ast.walk(node.test))
        if not (const_true or mentions_now):
            continue
        has_out = False
        stack = list(node.body)
        while stack:
            sub = stack.pop()
            if isinstance(sub, (ast.Yield, ast.YieldFrom, ast.Return,
                                ast.Raise, ast.Break)):
                has_out = True
                break
            if isinstance(sub, (ast.FunctionDef,
                                ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(sub))
        if not has_out:
            reason = ("while True" if const_true
                      else "a condition on simulated time")
            emit("SF306",
                 f"loop over {reason} never yields: simulated time "
                 f"cannot advance inside the body, so the process "
                 f"spins forever and starves the scheduler",
                 node.lineno)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _analyze_parsed(
    files: list[tuple[str, ParsedFile]],
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    pragma_by_path: dict[str, object] = {}
    lock_edges: list[_LockEdge] = []
    taint_files: list[tuple[str, ast.Module]] = []

    for label, parsed in files:
        pragmas = collect_pragmas(parsed.source)
        pragma_by_path[label] = pragmas
        if pragmas.skip_file or parsed.tree is None:
            continue  # SL200 (simlint) owns the syntax-error report
        taint_files.append((label, parsed.tree))

        def emit(rule: str, message: str, line: int,
                 label: str = label) -> None:
            diagnostics.append(
                make_diagnostic(rule, message, label, line=line))

        _check_negative_delays(parsed.tree, emit)
        cfg_cache = parsed.derived.setdefault("cfg", {})
        for qualname, func in function_defs(parsed.tree):
            if not _is_process_function(func):
                continue
            _check_yields(label, func, emit)
            _check_starvation(label, func, emit)
            cfg = cfg_cache.get(qualname)
            if cfg is None or cfg.func is not func:
                cfg = build_cfg(func)
                cfg_cache[qualname] = cfg
            _FunctionFlow(label, qualname, func, cfg, emit).run()
            lock_edges.extend(_collect_lock_edges(label, qualname,
                                                  func))

    # SF304: cycles in the cross-function acquisition-order graph.
    for cycle in _lock_cycles(lock_edges):
        resources = " -> ".join([e.first for e in cycle]
                                + [cycle[0].first])
        sites = ", ".join(f"{e.func} ({e.path}:{e.line})"
                          for e in cycle)
        for edge in cycle:
            diagnostics.append(make_diagnostic(
                "SF304",
                f"resources are acquired in a cycle {resources} "
                f"across process functions [{sites}] — two processes "
                f"interleaving these acquisitions deadlock",
                edge.path, line=edge.line))

    # SF307: project-wide determinism taint.
    for finding in TaintAnalysis(taint_files).findings():
        diagnostics.append(make_diagnostic(
            "SF307", finding.message, finding.path,
            line=finding.line))

    # Apply per-file pragmas.
    kept: list[Diagnostic] = []
    for diag in diagnostics:
        pragmas = pragma_by_path.get(diag.subject)
        if pragmas is not None:
            remaining = filter_suppressed([diag], pragmas)
            if not remaining:
                continue
        kept.append(diag)
    return kept


def analyze_source(
    source: str, path: str = "<string>"
) -> list[Diagnostic]:
    """Run the flow analyzer over in-memory ``source``."""
    return _analyze_parsed([(path, parse_source(source, path))])


def analyze_file(path: str | Path) -> list[Diagnostic]:
    """Analyze one file (through the shared AST cache)."""
    path = Path(path)
    return _analyze_parsed([(str(path), parse_file(path))])


def analyze_paths(
    paths: Iterable[str | Path], root: str | Path | None = None
) -> list[Diagnostic]:
    """Analyze files and directories (recursing into ``*.py``).

    All files are analyzed as one project: the call graph and the
    lock-order graph span every file, which is what makes SF304 and
    SF307 interprocedural.  ``root`` relativizes subjects, matching
    :func:`repro.check.simlint.lint_paths`.
    """
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    labelled: list[tuple[str, ParsedFile]] = []
    for file in files:
        label = file
        if root is not None:
            try:
                label = file.relative_to(root)
            except ValueError:
                label = file
        labelled.append((str(label), parse_file(file)))
    return _analyze_parsed(labelled)
