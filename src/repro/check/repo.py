"""Repository-level static analysis: one call checks everything.

:func:`check_repository` is what ``repro check`` and CI run: the
Layer-1 model verifier over every model the repository ships (the
experiment registry's ``models=`` providers plus the built-in catalog
below), the Layer-2 simulation lint, and the Layer-3 flow analyzer
(:mod:`repro.check.simflow`), both over ``src/``, ``benchmarks/``,
and ``examples/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.check.diagnostics import Diagnostic
from repro.check.model import verify_model
from repro.check.simflow import analyze_paths
from repro.check.simlint import lint_paths

__all__ = [
    "repository_root",
    "default_lint_paths",
    "builtin_model_checks",
    "check_models",
    "check_repository",
]

#: Directories (relative to the repository root) the lint and flow
#: passes cover.
LINT_DIRS = ("src", "benchmarks", "examples")


def repository_root() -> Path:
    """Best-effort repository root: the parent of ``src/``."""
    # .../src/repro/check/repo.py -> parents[3] is the repo root.
    return Path(__file__).resolve().parents[3]


def default_lint_paths(root: Path | None = None) -> list[Path]:
    """The source trees ``repro check --lint`` covers by default."""
    root = repository_root() if root is None else Path(root)
    return [root / d for d in LINT_DIRS if (root / d).is_dir()]


def builtin_model_checks() -> list[tuple[str, object]]:
    """Models the repository itself ships, as ``(name, model)`` pairs.

    Covers the NoC application characterization graphs and a reference
    holistic design assembled from the core primitives (the
    ``examples/quickstart.py`` shape), so ``repro check --models``
    exercises every Layer-1 rule family even before experiments
    register their own providers.
    """
    from repro.core import (
        ApplicationGraph,
        ChannelSpec,
        Mapping,
        Platform,
        ProcessingElement,
        ProcessNode,
        QoSSpec,
    )
    from repro.core.architecture import PEKind
    from repro.noc import mms_apcg, video_surveillance_apcg

    checks: list[tuple[str, object]] = [
        ("noc:video-surveillance", video_surveillance_apcg()),
        ("noc:mms", mms_apcg()),
    ]

    app = ApplicationGraph("reference-pipeline")
    app.add_process(ProcessNode("camera", 0.0, rate_hz=25.0))
    app.add_process(ProcessNode("encoder", 4.0e6, cycles_cv=0.4))
    app.add_process(ProcessNode("packetizer", 0.2e6))
    app.add_channel(ChannelSpec("camera", "encoder",
                                bits_per_token=2.0e6))
    app.add_channel(ChannelSpec("encoder", "packetizer",
                                bits_per_token=0.5e6))
    platform = Platform("reference-platform")
    platform.add_pe(ProcessingElement("cpu0", PEKind.GPP,
                                      frequency=400e6))
    platform.add_pe(ProcessingElement("dsp0", PEKind.DSP,
                                      frequency=300e6))
    mapping = Mapping({"camera": "cpu0", "encoder": "dsp0",
                       "packetizer": "cpu0"})
    checks.append((
        "core:reference-design",
        {
            "application": app,
            "platform": platform,
            "mapping": mapping,
            "qos": QoSSpec(max_latency=0.5, max_loss_rate=0.05),
        },
    ))
    return checks


def check_models(
    include_experiments: bool = True,
) -> list[Diagnostic]:
    """Run the Layer-1 verifier over every registered model."""
    diagnostics: list[Diagnostic] = []
    for name, model in builtin_model_checks():
        for diag in verify_model(model):
            diag.subject = f"{name}/{diag.subject}"
            diagnostics.append(diag)
    if include_experiments:
        from repro import experiments

        for exp_id in experiments.ids():
            diagnostics.extend(experiments.preflight(exp_id))
    return diagnostics


def check_repository(
    root: Path | str | None = None,
    models: bool = True,
    lint: bool = True,
    flow: bool = True,
    lint_targets: Iterable[str | Path] | None = None,
) -> list[Diagnostic]:
    """Run the requested layers and return every finding.

    Parameters
    ----------
    root:
        Repository root; defaults to the tree this package lives in.
    models, lint, flow:
        Which layers to run (Layer-1 verifier, Layer-2 lint, Layer-3
        flow analysis).
    lint_targets:
        Explicit files/directories for the lint and flow passes
        (defaults to :data:`LINT_DIRS` under ``root``).
    """
    root = repository_root() if root is None else Path(root)
    diagnostics: list[Diagnostic] = []
    if models:
        diagnostics.extend(check_models())
    targets = (list(lint_targets) if lint_targets is not None
               else default_lint_paths(root))
    if lint:
        diagnostics.extend(lint_paths(targets, root=root))
    if flow:
        diagnostics.extend(analyze_paths(targets, root=root))
    return diagnostics
