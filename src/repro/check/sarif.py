"""SARIF 2.1.0 export of static-analysis findings.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what code hosts and CI dashboards ingest; ``repro check --sarif FILE``
writes one ``run`` whose ``tool.driver.rules`` is the catalog subset
that actually fired and whose ``results`` carry the same stable
fingerprints the baseline file uses (``partialFingerprints``), so a
SARIF viewer and :mod:`repro.check.baseline` agree on identity.

The document is deterministic: findings are ordered with the same sort
key as :func:`repro.check.diagnostics.diagnostics_to_dict` and rules
by id, so two runs over the same tree serialize byte-identically.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.check.diagnostics import (
    Diagnostic,
    Severity,
    _sort_key,
    rule,
)

__all__ = ["SARIF_VERSION", "to_sarif", "to_sarif_json"]

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
               "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: SARIF ``level`` values for catalog severities.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

#: The ``partialFingerprints`` key findings are published under; the
#: ``/v1`` suffix versions the hashing scheme, per the SARIF spec.
FINGERPRINT_KEY = "reproCheck/v1"


def _rule_object(rule_id: str) -> dict:
    entry = rule(rule_id)
    return {
        "id": entry.id,
        "name": entry.title.title().replace(" ", ""),
        "shortDescription": {"text": entry.title},
        "fullDescription": {"text": entry.rationale},
        "help": {"text": entry.fix_hint},
        "defaultConfiguration": {"level": _LEVELS[entry.severity]},
    }


def _result(diag: Diagnostic, rule_index: dict[str, int]) -> dict:
    location: dict = {
        "physicalLocation": {
            "artifactLocation": {"uri": diag.subject},
        },
    }
    if diag.line is not None:
        location["physicalLocation"]["region"] = {
            "startLine": diag.line,
        }
    return {
        "ruleId": diag.rule,
        "ruleIndex": rule_index[diag.rule],
        "level": _LEVELS[diag.severity],
        "message": {"text": diag.message},
        "locations": [location],
        "partialFingerprints": {FINGERPRINT_KEY: diag.fingerprint},
    }


def to_sarif(diagnostics: Iterable[Diagnostic]) -> dict:
    """Render findings as one SARIF 2.1.0 document (a dict)."""
    ordered = sorted(diagnostics, key=_sort_key)
    fired = sorted({d.rule for d in ordered})
    rule_index = {rule_id: i for i, rule_id in enumerate(fired)}
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "informationUri":
                            "https://example.invalid/repro",
                        "rules": [_rule_object(r) for r in fired],
                    },
                },
                "columnKind": "utf16CodeUnits",
                "results": [_result(d, rule_index) for d in ordered],
            },
        ],
    }


def to_sarif_json(
    diagnostics: Iterable[Diagnostic], indent: int | None = 2
) -> str:
    """Serialize findings to deterministic SARIF JSON text."""
    return json.dumps(to_sarif(diagnostics), indent=indent,
                      sort_keys=True)
