"""Layer 2: "simlint" — AST lint for discrete-event simulation code.

Simulation code has discipline rules ordinary linters do not know:
every random draw must come from a seeded, named stream; simulated
time must never mix with the host's wall clock; kernel events created
inside a generator process must be yielded; and the simulated clock
must never be compared with ``==``.  This module enforces them with a
stdlib-:mod:`ast` pass (no third-party dependencies).

Rules (catalog in :mod:`repro.check.diagnostics`):

* ``SL201`` — unseeded or global RNG (``random.*``, legacy
  ``numpy.random.*`` module calls, ``default_rng()`` without a seed).
* ``SL202`` — wall-clock calls (``time.time``, ``datetime.now``,
  ``time.sleep``, ...); ``time.perf_counter`` stays allowed for
  measuring the cost of a run.
* ``SL203`` — a kernel event (``env.timeout(...)``, ``queue.get()``,
  ...) created as a bare statement inside a generator process instead
  of being yielded.
* ``SL204`` — mutable default arguments.
* ``SL205`` — ``==``/``!=`` against simulated time (``env.now``).
* ``SL206`` — ``multiprocessing`` / ``concurrent.futures`` imported
  outside :mod:`repro.parallel`, the one sanctioned home for process
  pools (ad-hoc pools bypass seed derivation and counter merging).
* ``SL207`` — a silently swallowed exception: an ``except`` catching
  ``Exception``/``BaseException`` (or nothing at all), or any
  :class:`~repro.resilience.PolicyError` subclass, whose body only
  ``pass``/``...``/``continue``-s.  Silent fault-masking defeats the
  resilience layer — injected chaos faults and real policy failures
  alike disappear without a trace.

Intentional violations are whitelisted inline with the shared pragma
grammar of :mod:`repro.check.pragmas` (one parser serves simlint and
simflow, so a single pragma can silence rules from both families)::

    t0 = time.time()  # simlint: ignore[SL202]
    req = res.request()  # simlint: ignore[SL203, SF303]

A bare ``# simlint: ignore`` suppresses every rule on that line; the
pragma is also honored on the line directly above the finding, and
``# simlint: skip-file`` anywhere in a file skips it entirely.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from repro.check.astcache import parse_file, parse_source
from repro.check.cfg import is_generator as _cfg_is_generator
from repro.check.diagnostics import Diagnostic, make_diagnostic
from repro.check.pragmas import collect_pragmas, filter_suppressed

__all__ = ["lint_source", "lint_file", "lint_paths", "ImportTable"]

#: random.* members that are constructors/introspection, not draws
#: from the hidden global generator.
_RANDOM_ALLOWED = {"Random", "SystemRandom"}

#: numpy.random members of the modern, explicitly-seeded API.
_NUMPY_RANDOM_ALLOWED = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}

#: Wall-clock reads and blocking sleeps (SL202).  time.perf_counter /
#: process_time stay legal: they measure the cost of the run itself.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.sleep",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Method names that create kernel events which must be yielded when
#: called inside a generator process (SL203).
_EVENT_METHODS = {"timeout", "request", "get", "put", "hold", "wait"}

#: Names that denote the simulated clock in SL205 comparisons.
_TIME_NAMES = {"now"}

#: Top-level modules whose import marks ad-hoc process parallelism
#: (SL206).  ``repro.parallel`` itself is exempt by path.
_PARALLEL_MODULES = {"multiprocessing", "concurrent"}

#: Path fragments identifying the sanctioned home of process pools.
_PARALLEL_EXEMPT_FRAGMENT = "repro/parallel"

#: Exception names that are too broad to swallow silently (SL207).
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}

#: The resilience layer's policy-failure types (SL207): swallowing one
#: hides exactly the fault signal the layer exists to propagate.
_POLICY_ERRORS = {
    "PolicyError", "DeadlineExceeded", "RetryBudgetExceeded",
    "CircuitOpen",
}


class ImportTable:
    """Resolve local names to the dotted module paths they came from."""

    def __init__(self) -> None:
        self._names: dict[str, str] = {}

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(
                ".")[0]
            self._names[local] = target

    def add_import_from(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return  # relative imports never shadow stdlib rng/clock
        for alias in node.names:
            local = alias.asname or alias.name
            self._names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted path of an attribute chain, through import aliases.

        ``np.random.rand`` with ``import numpy as np`` resolves to
        ``"numpy.random.rand"``; unresolvable chains give ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self._names.get(node.id)
        if base is None:
            return None
        return ".".join([base, *reversed(parts)])


def _mentions_simulated_time(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in _TIME_NAMES:
            return True
        if isinstance(sub, ast.Name) and sub.id in _TIME_NAMES:
            return True
    return False


def _handler_type_names(node: ast.expr | None) -> set[str]:
    """Terminal names an ``except`` clause catches.

    ``except resilience.PolicyError`` yields ``{"PolicyError"}``;
    tuples contribute every member; a bare ``except`` yields the
    empty set (the caller treats ``None`` as catch-everything).
    """
    if node is None:
        return set()
    members = node.elts if isinstance(node, ast.Tuple) else [node]
    names: set[str] = set()
    for member in members:
        if isinstance(member, ast.Attribute):
            names.add(member.attr)
        elif isinstance(member, ast.Name):
            names.add(member.id)
    return names


def _body_swallows(body: list[ast.stmt]) -> bool:
    """True when a handler body does nothing with the exception:
    every statement is ``pass``, ``...``, or ``continue``."""
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis):
            continue
        return False
    return True


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str):
        self.path = path
        self.imports = ImportTable()
        self.diagnostics: list[Diagnostic] = []
        self._generator_depth = 0
        self._pool_exempt = (
            _PARALLEL_EXEMPT_FRAGMENT in path.replace("\\", "/")
        )

    # -- bookkeeping ---------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        self.imports.add_import(node)
        for alias in node.names:
            self._check_pool_import(alias.name, node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.add_import_from(node)
        if not node.level and node.module is not None:
            self._check_pool_import(node.module, node)
        self.generic_visit(node)

    # -- SL206: process pools outside repro.parallel -------------------
    def _check_pool_import(self, module: str, node: ast.AST) -> None:
        if self._pool_exempt:
            return
        if module.split(".")[0] in _PARALLEL_MODULES:
            self._emit(
                "SL206",
                f"import of {module!r} outside repro.parallel — "
                f"ad-hoc process pools bypass seed derivation and "
                f"kernel-counter merging",
                node,
            )

    def _emit(self, rule_id: str, message: str,
              node: ast.AST) -> None:
        self.diagnostics.append(make_diagnostic(
            rule_id, message, self.path,
            line=getattr(node, "lineno", None),
        ))

    # -- SL204: mutable defaults --------------------------------------
    def _check_defaults(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp,
                 ast.DictComp, ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in {"list", "dict", "set"}
            )
            if mutable:
                self._emit(
                    "SL204",
                    f"function {node.name!r} has a mutable default "
                    f"argument",
                    default,
                )

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._check_defaults(node)
        saved = self._generator_depth
        # A nested def opens a fresh scope: bare event calls inside a
        # plain helper are not in generator context even when the
        # helper is defined inside a process.
        self._generator_depth = 1 if _cfg_is_generator(node) else 0
        self.generic_visit(node)
        self._generator_depth = saved

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- SL203: bare kernel events in generator processes -------------
    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if (self._generator_depth > 0
                and isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in _EVENT_METHODS):
            self._emit(
                "SL203",
                f".{call.func.attr}(...) creates a kernel event that "
                f"is never yielded",
                node,
            )
        self.generic_visit(node)

    # -- SL201 / SL202: calls ------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.imports.resolve(node.func)
        if dotted is not None:
            self._check_rng(dotted, node)
            self._check_wall_clock(dotted, node)
        self.generic_visit(node)

    def _check_rng(self, dotted: str, node: ast.Call) -> None:
        if dotted.startswith("random."):
            member = dotted.split(".", 1)[1]
            if member not in _RANDOM_ALLOWED:
                self._emit(
                    "SL201",
                    f"{dotted}() draws from the global random module "
                    f"state",
                    node,
                )
            elif not node.args and not node.keywords:
                self._emit(
                    "SL201",
                    f"{dotted}() without a seed is irreproducible",
                    node,
                )
            return
        if dotted.startswith("numpy.random."):
            member = dotted.split(".", 2)[2].split(".")[0]
            if member not in _NUMPY_RANDOM_ALLOWED:
                self._emit(
                    "SL201",
                    f"{dotted}() uses numpy's legacy global RNG",
                    node,
                )
            elif (member == "default_rng" and not node.args
                  and not node.keywords):
                self._emit(
                    "SL201",
                    "numpy.random.default_rng() without a seed is "
                    "irreproducible",
                    node,
                )

    def _check_wall_clock(self, dotted: str, node: ast.Call) -> None:
        if dotted in _WALL_CLOCK:
            self._emit(
                "SL202",
                f"{dotted}() reads (or blocks on) the host wall "
                f"clock",
                node,
            )

    # -- SL207: silently swallowed exceptions --------------------------
    def visit_Try(self, node: ast.Try) -> None:
        for handler in node.handlers:
            names = _handler_type_names(handler.type)
            broad = (handler.type is None
                     or bool(names & _BROAD_EXCEPTIONS))
            policy = bool(names & _POLICY_ERRORS)
            if (broad or policy) and _body_swallows(handler.body):
                caught = ("everything" if handler.type is None
                          else ", ".join(sorted(names)))
                self._emit(
                    "SL207",
                    f"except block catches {caught} and silently "
                    f"swallows it — faults (including injected chaos "
                    f"faults and resilience-policy failures) vanish "
                    f"without a trace",
                    handler,
                )
        self.generic_visit(node)

    # -- SL205: float == simulated time --------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        has_eq = any(isinstance(op, (ast.Eq, ast.NotEq))
                     for op in node.ops)
        if has_eq:
            operands = [node.left, *node.comparators]
            if any(_mentions_simulated_time(op) for op in operands):
                self._emit(
                    "SL205",
                    "equality comparison against simulated time "
                    "(env.now) is unreliable for floats",
                    node,
                )
        self.generic_visit(node)


def _lint_parsed(parsed, path: str) -> list[Diagnostic]:
    pragmas = collect_pragmas(parsed.source)
    if pragmas.skip_file:
        return []
    if parsed.tree is None:
        return [make_diagnostic(
            "SL200", f"file does not parse: {parsed.error.msg}", path,
            line=parsed.error.lineno,
        )]
    linter = _Linter(path)
    linter.visit(parsed.tree)
    return filter_suppressed(linter.diagnostics, pragmas)


def lint_source(
    source: str, path: str = "<string>"
) -> list[Diagnostic]:
    """Lint Python ``source``; ``path`` labels the diagnostics."""
    return _lint_parsed(parse_source(source, path), path)


def lint_file(path: str | Path) -> list[Diagnostic]:
    """Lint one file (through the shared AST cache)."""
    path = Path(path)
    return _lint_parsed(parse_file(path), str(path))


def lint_paths(
    paths: Iterable[str | Path], root: str | Path | None = None
) -> list[Diagnostic]:
    """Lint files and directories (recursing into ``*.py``).

    ``root``, when given, relativizes diagnostic subjects so output is
    stable across machines.  Parsing goes through the shared
    mtime-keyed AST cache, so a subsequent simflow pass (or a repeat
    lint of an unchanged tree) does not re-parse.
    """
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    diagnostics: list[Diagnostic] = []
    for file in files:
        label = file
        if root is not None:
            try:
                label = file.relative_to(root)
            except ValueError:
                label = file
        diagnostics.extend(
            _lint_parsed(parse_file(file), str(label))
        )
    return diagnostics
