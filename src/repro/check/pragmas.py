"""Shared suppression-pragma parser for simlint and simflow.

Both AST layers — the Layer-2 lint (``SL2xx``) and the Layer-3 flow
analyzer (``SF3xx``) — honor the same inline suppression grammar, so
one pragma can silence rules from either family on the same line::

    t0 = time.time()  # simlint: ignore[SL202]
    req = res.request()  # simlint: ignore[SL203, SF303]  -- teardown path
    # simlint: ignore[SF307]   <- also honored on the line directly above
    env.timeout(jitter)

A bare ``# simlint: ignore`` suppresses every rule on that line, and
``# simlint: skip-file`` anywhere exempts the whole file.  The
``simflow`` tag is accepted as a synonym of ``simlint`` everywhere, so
``# simflow: ignore[SF304]`` reads naturally in flow-heavy code.

The repository convention (enforced by the strict CI gate's review
rules, not by this parser) is that every pragma carries a short
justification after the bracket, as in the second example above.
"""

from __future__ import annotations

import re

from repro.check.diagnostics import Diagnostic

__all__ = [
    "Pragmas",
    "collect_pragmas",
    "is_suppressed",
    "filter_suppressed",
]

_PRAGMA_RE = re.compile(
    r"#\s*(?:simlint|simflow):\s*ignore"
    r"(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)
_SKIP_FILE_RE = re.compile(r"#\s*(?:simlint|simflow):\s*skip-file")


class Pragmas:
    """Parsed suppressions of one source file.

    Attributes
    ----------
    skip_file:
        ``True`` when the file opts out of both AST layers entirely.
    by_line:
        Line number → set of suppressed rule ids (``None`` = every
        rule, from a bare ``ignore``).
    """

    __slots__ = ("skip_file", "by_line")

    def __init__(self, skip_file: bool,
                 by_line: dict[int, set[str] | None]):
        self.skip_file = skip_file
        self.by_line = by_line

    def suppresses(self, rule_id: str, line: int | None) -> bool:
        """True when ``rule_id`` at ``line`` is pragma-suppressed.

        A pragma applies to its own line and to the line directly
        below it (i.e. findings look one line *up* as well), matching
        the historical simlint contract.
        """
        if self.skip_file:
            return True
        if line is None:
            return False
        for lineno in (line, line - 1):
            if lineno not in self.by_line:
                continue
            rules = self.by_line[lineno]
            if rules is None or rule_id in rules:
                return True
        return False


def collect_pragmas(source: str) -> Pragmas:
    """Parse every suppression pragma out of ``source``."""
    by_line: dict[int, set[str] | None] = {}
    skip_file = False
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "simlint" not in line and "simflow" not in line:
            continue
        if _SKIP_FILE_RE.search(line):
            skip_file = True
        for match in _PRAGMA_RE.finditer(line):
            rules = match.group("rules")
            if rules is None:
                by_line[lineno] = None
                continue
            ids = {r.strip() for r in rules.split(",") if r.strip()}
            previous = by_line.get(lineno)
            if previous is None and lineno in by_line:
                continue  # bare ignore already covers everything
            by_line[lineno] = (ids if previous is None
                               else previous | ids)
    return Pragmas(skip_file, by_line)


def is_suppressed(diag: Diagnostic, pragmas: Pragmas) -> bool:
    """True when ``diag`` is silenced by ``pragmas``."""
    return pragmas.suppresses(diag.rule, diag.line)


def filter_suppressed(
    diagnostics: list[Diagnostic], pragmas: Pragmas
) -> list[Diagnostic]:
    """Drop every pragma-suppressed finding."""
    if pragmas.skip_file:
        return []
    return [d for d in diagnostics if not is_suppressed(d, pragmas)]
