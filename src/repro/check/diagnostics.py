"""Diagnostic records and the static-analysis rule catalog.

Every check in :mod:`repro.check` — the Layer-1 model verifier, the
Layer-2 simulation lint, and the Layer-3 flow analyzer
(:mod:`repro.check.simflow`) — reports through one vocabulary: a
:class:`Rule` describes *what class of defect* a check detects (stable
id, default severity, rationale, fix hint), and a :class:`Diagnostic`
is *one concrete finding* (which rule fired, where, and why).

The catalog below is the single source of truth: the verifier and the
linter both look their rules up here, ``docs/static_analysis.md``
documents exactly these ids, and the test suite asserts the two stay
in sync.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Mapping

__all__ = [
    "Severity",
    "Rule",
    "Diagnostic",
    "RULES",
    "rule",
    "make_diagnostic",
    "max_severity",
    "has_errors",
    "diagnostics_to_dict",
    "diagnostics_to_json",
    "format_diagnostic",
    "ModelVerificationError",
]


class Severity(IntEnum):
    """How bad a finding is; ordering allows threshold comparisons."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()

    @classmethod
    def parse(cls, label: str) -> "Severity":
        """Parse ``"error"``/``"warning"``/``"info"`` (case-insensitive)."""
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {label!r}") from None


@dataclass(frozen=True)
class Rule:
    """One entry of the static-analysis rule catalog.

    Parameters
    ----------
    id:
        Stable identifier: ``RC1xx`` for model-verifier rules,
        ``SL2xx`` for simulation-lint rules, ``SF3xx`` for
        flow-analysis rules.  Ids never change meaning; retired rules
        are not reused.
    title:
        Short human label ("deadlock cycle", "unseeded RNG").
    severity:
        Default severity of findings (a check may not override upward).
    rationale:
        Why the defect matters for a DES-based design flow.
    fix_hint:
        The standard remedy, shown with every finding.
    """

    id: str
    title: str
    severity: Severity
    rationale: str
    fix_hint: str


@dataclass
class Diagnostic:
    """One concrete finding of a static check.

    Attributes
    ----------
    rule:
        Catalog id of the rule that fired (e.g. ``"RC103"``).
    severity:
        Severity of this finding.
    message:
        What was found, with model/code specifics interpolated.
    subject:
        Where: a model element (``"app:pipeline/process:enc"``) or a
        source path for lint findings.
    line:
        1-based source line for lint findings; ``None`` for model
        findings.
    fix_hint:
        Remedy, defaulted from the rule catalog.
    """

    rule: str
    severity: Severity
    message: str
    subject: str
    line: int | None = None
    fix_hint: str = ""

    @property
    def location(self) -> str:
        """``subject`` or ``subject:line`` when a line is known."""
        if self.line is None:
            return self.subject
        return f"{self.subject}:{self.line}"

    @property
    def fingerprint(self) -> str:
        """Stable identity of this finding across line shifts.

        A hash of (rule, subject, message-with-numbers-masked): adding
        or removing unrelated lines — which renumbers both ``line``
        and any line references interpolated into the message — does
        not change the fingerprint, so baseline suppression
        (:mod:`repro.check.baseline`) survives routine edits.  Moving
        the finding to another file or changing what it says does.
        """
        context = re.sub(r"\d+", "#", self.message)
        digest = hashlib.sha256(
            f"{self.rule}|{self.subject}|{context}".encode()
        ).hexdigest()
        return digest[:16]

    def to_dict(self) -> dict:
        """JSON-ready representation (stable key order via sort_keys)."""
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "subject": self.subject,
            "line": self.line,
            "fix_hint": self.fix_hint,
            "fingerprint": self.fingerprint,
        }

    def __str__(self) -> str:
        return format_diagnostic(self)


def format_diagnostic(diag: Diagnostic) -> str:
    """One-line human rendering: ``location: severity RC101: message``."""
    return (
        f"{diag.location}: {diag.severity} {diag.rule}: {diag.message}"
    )


class ModelVerificationError(ValueError):
    """Raised when a pre-flight model check finds error diagnostics.

    Attributes
    ----------
    diagnostics:
        Every diagnostic of the failed check (including warnings).
    """

    def __init__(self, diagnostics: list[Diagnostic]):
        self.diagnostics = list(diagnostics)
        errors = [d for d in self.diagnostics
                  if d.severity >= Severity.ERROR]
        lines = "; ".join(format_diagnostic(d) for d in errors[:5])
        more = len(errors) - 5
        if more > 0:
            lines += f"; and {more} more"
        super().__init__(
            f"model verification failed with {len(errors)} error(s): "
            f"{lines}"
        )


# ----------------------------------------------------------------------
# Rule catalog
# ----------------------------------------------------------------------
def _catalog(rules: Iterable[Rule]) -> dict[str, Rule]:
    out: dict[str, Rule] = {}
    for entry in rules:
        if entry.id in out:
            raise ValueError(f"duplicate rule id {entry.id}")
        out[entry.id] = entry
    return out


#: Every static-analysis rule, keyed by id.  ``RC1xx`` = model
#: verifier (Layer 1), ``SL2xx`` = simulation lint (Layer 2),
#: ``SF3xx`` = flow analysis (Layer 3).
RULES: Mapping[str, Rule] = _catalog([
    # ---- Layer 1: process/task-graph structure ----------------------
    Rule(
        "RC101", "unreachable process", Severity.ERROR,
        "A process no rated source can reach never activates; the "
        "simulation silently computes QoS over a smaller graph than "
        "the designer modeled.",
        "Connect the process to a rated source or remove it.",
    ),
    Rule(
        "RC102", "disconnected graph", Severity.WARNING,
        "A weakly-disconnected fragment is almost always a modeling "
        "mistake: the fragments share no tokens yet get mapped and "
        "evaluated as one application.",
        "Split the model into separate graphs or add the missing "
        "channel/dependency.",
    ),
    Rule(
        "RC103", "deadlock cycle", Severity.ERROR,
        "Process-network channels carry no initial tokens, so every "
        "directed cycle is a guaranteed deadlock: each process in the "
        "cycle waits forever on its predecessor.",
        "Break the cycle or model the feedback path outside the token "
        "flow.",
    ),
    Rule(
        "RC104", "source without rate", Severity.ERROR,
        "A source process with no activation rate never emits tokens; "
        "everything downstream starves.",
        "Set ProcessNode.rate_hz on every source process.",
    ),
    Rule(
        "RC105", "rate on non-source", Severity.WARNING,
        "A rate on a process with input channels is ignored by the "
        "evaluator (non-sources activate on input tokens); the model "
        "claims a behaviour the simulation does not implement.",
        "Drop rate_hz from internal processes, or remove their input "
        "channels to make them sources.",
    ),
    Rule(
        "RC106", "join rate mismatch", Severity.WARNING,
        "A join consumes one token per input per activation; inputs "
        "fed at different rates make the slower input the bottleneck "
        "and the faster input's buffer overflow.",
        "Equalize the upstream source rates or add an explicit "
        "down-sampling process before the join.",
    ),
    Rule(
        "RC107", "zero-volume dependency", Severity.WARNING,
        "A dependency carrying zero bits creates scheduling precedence "
        "without communication, silently serializing otherwise "
        "independent subgraphs.",
        "Give the edge its real control-message volume, or delete it "
        "if no ordering is intended.",
    ),
    # ---- Layer 1: mapping ------------------------------------------
    Rule(
        "RC110", "unmapped process", Severity.ERROR,
        "A process without a PE binding cannot execute; evaluation "
        "either crashes or silently drops its work.",
        "Map every process/task of the graph to a platform PE.",
    ),
    Rule(
        "RC111", "unknown process in mapping", Severity.WARNING,
        "The mapping binds a name the application does not define — "
        "usually a typo that leaves the intended process unmapped.",
        "Remove the stale entry or fix the process name.",
    ),
    Rule(
        "RC112", "unknown PE", Severity.ERROR,
        "The mapping targets a processing element the platform does "
        "not contain.",
        "Add the PE to the platform or retarget the mapping.",
    ),
    Rule(
        "RC113", "PE out of service", Severity.ERROR,
        "The mapping targets a PE currently marked unavailable "
        "(failed or powered off); work bound to it never runs.",
        "Repair the PE before simulating, or remap its processes.",
    ),
    Rule(
        "RC114", "ASIC capability mismatch", Severity.WARNING,
        "An ASIC is fixed-function hardware; hosting several distinct "
        "processes on one ASIC assumes a flexibility the component "
        "class does not have.",
        "Map one kernel per ASIC, or model the PE as an ASIP/DSP/GPP.",
    ),
    Rule(
        "RC115", "missing link", Severity.ERROR,
        "The mapping routes traffic over a src->dst link that is out "
        "of service (or absent) in the platform interconnect.",
        "Repair the link, or co-locate the communicating processes.",
    ),
    # ---- Layer 1: constraint feasibility ---------------------------
    Rule(
        "RC120", "PE over-utilized", Severity.ERROR,
        "Aggregate offered load above 1 on a PE means unbounded queue "
        "growth: the design cannot be feasible at any buffer size.",
        "Rebalance the mapping, raise the PE frequency, or lower the "
        "source rates.",
    ),
    Rule(
        "RC121", "deadline infeasible", Severity.ERROR,
        "The deadline is shorter than the best-case path latency "
        "(critical-path cycles on the fastest PE with free "
        "communication) — no mapping or scheduler can meet it.",
        "Relax the deadline, shorten the critical path, or add a "
        "faster PE.",
    ),
    Rule(
        "RC122", "bandwidth exceeded", Severity.ERROR,
        "Sustained communication demand above the interconnect "
        "bandwidth saturates the medium; latency grows without bound.",
        "Co-locate heavy communicators, widen the interconnect, or "
        "reduce token sizes.",
    ),
    # ---- Layer 1: unit & dimension sanity --------------------------
    Rule(
        "RC130", "idle power above active", Severity.WARNING,
        "Idle power above active power is almost always a unit slip "
        "(mW vs W); every DPM and DVFS conclusion drawn from such a "
        "model inverts.",
        "Check the datasheet units; active power must exceed idle.",
    ),
    Rule(
        "RC131", "implausible magnitude", Severity.WARNING,
        "A parameter orders of magnitude outside the physical range "
        "for embedded multimedia silicon (Hz, W, J/bit) indicates a "
        "unit-conversion error.",
        "Re-derive the value in SI base units (Hz, W, J).",
    ),
    Rule(
        "RC132", "DVFS model inconsistent", Severity.WARNING,
        "A PE whose nominal frequency lies outside its DVFS model's "
        "operating-point range cannot be scheduled consistently: "
        "scaling decisions refer to points the PE does not have.",
        "Make ProcessingElement.frequency one of the DVFS operating "
        "points.",
    ),
    # ---- Layer 1: scenario documents -------------------------------
    Rule(
        "RC140", "scenario schema violation", Severity.ERROR,
        "A file that does not conform to the repro.scenario/v1 schema "
        "cannot be loaded into model objects at all; every downstream "
        "check and simulation is moot until the document parses.",
        "Fix the value at the reported JSON path (repro scenario "
        "import FILE re-validates), or re-export the scenario with "
        "repro scenario export.",
    ),
    # ---- Layer 2: simulation lint ----------------------------------
    Rule(
        "SL200", "file does not parse", Severity.ERROR,
        "A syntax error makes every other guarantee void; the file "
        "cannot even be imported.",
        "Fix the syntax error.",
    ),
    Rule(
        "SL201", "unseeded or global RNG", Severity.ERROR,
        "Module-level RNG (random.*, numpy.random legacy calls, or "
        "default_rng() without a seed) draws from hidden global state: "
        "runs become irreproducible and experiments stop being "
        "bit-exact.",
        "Draw from a seeded stream: repro.utils.RandomStreams, "
        "spawn_rng(seed, name), or np.random.default_rng(seed).",
    ),
    Rule(
        "SL202", "wall-clock call in simulation code", Severity.ERROR,
        "time.time()/datetime.now()/time.sleep() read or block on the "
        "host clock; simulated time must come only from the DES "
        "environment (time.perf_counter is allowed for measuring "
        "wall-clock cost of the run itself).",
        "Use env.now for simulated time and env.timeout for delays; "
        "use time.perf_counter for wall-time measurement.",
    ),
    Rule(
        "SL203", "kernel event not yielded", Severity.ERROR,
        "Inside a generator process, a bare env.timeout(...)/.get()/"
        ".put()/.request() creates an event that is never waited on: "
        "the process races ahead and the event leaks.",
        "Yield every kernel event: `yield env.timeout(d)`, "
        "`tok = yield queue.get()`.",
    ),
    Rule(
        "SL204", "mutable default argument", Severity.WARNING,
        "A list/dict/set default is shared across calls; in model "
        "constructors it silently couples every instance built with "
        "the default.",
        "Default to None and create the container in the body, or use "
        "dataclasses.field(default_factory=...).",
    ),
    Rule(
        "SL205", "float equality against simulated time",
        Severity.WARNING,
        "Simulated clocks accumulate floating-point error; `t == "
        "env.now` comparisons silently never (or spuriously) fire.",
        "Compare with a tolerance (math.isclose) or use ordered "
        "comparisons (<=, >=).",
    ),
    Rule(
        "SL206", "bare multiprocessing outside repro.parallel",
        Severity.WARNING,
        "Ad-hoc process pools bypass the replication engine's "
        "contracts: per-replica seed derivation, kernel-counter "
        "snapshot merging, and the deterministic completion-order-"
        "independent merge all live in repro.parallel; a bare pool "
        "silently loses cross-process counters and reproducibility.",
        "Fan work out with repro.parallel.parallel_map or "
        "run_replicated instead of importing multiprocessing / "
        "concurrent.futures directly.",
    ),
    Rule(
        "SL207", "silently swallowed exception",
        Severity.WARNING,
        "An `except Exception: pass` (or a swallowed PolicyError "
        "subclass) masks the very faults the resilience and "
        "supervision layers exist to surface: a fault injected by the "
        "chaos harness, or a real timeout/retry-budget/circuit "
        "failure, vanishes without a trace and the sweep reports "
        "healthy results it never computed.",
        "Catch the narrowest exception you can actually recover "
        "from, and handle it visibly: record a metric, return a "
        "degraded result, or re-raise.",
    ),
    # ---- Layer 3: flow analysis (simflow) ---------------------------
    Rule(
        "SF301", "event overwritten before yield", Severity.ERROR,
        "Rebinding a variable holding an un-yielded kernel event "
        "drops the first event on the floor: whatever it modeled "
        "(a delay, a pending request) silently never happens, and "
        "on some control paths the process skips simulated work.",
        "Yield each event before creating the next, or collect "
        "events and wait with env.any_of/env.all_of.",
    ),
    Rule(
        "SF302", "yield of non-event", Severity.ERROR,
        "The kernel only accepts Event objects from process "
        "generators; yielding a constant raises TypeError the first "
        "time the process runs — but only on the path that reaches "
        "the yield, so it can hide until a rare branch fires.",
        "Yield kernel events only: `yield env.timeout(delay)`.",
    ),
    Rule(
        "SF303", "resource leak on exception or early return",
        Severity.ERROR,
        "A Resource.request() grant that is not released on every "
        "path — including interrupts raised at a yield and early "
        "returns — shrinks the resource's capacity for the rest of "
        "the run; under load the model deadlocks or serializes for a "
        "reason that does not exist in the system being studied.",
        "Acquire with `with res.request() as req:` or release in a "
        "try/finally.",
    ),
    Rule(
        "SF304", "conflicting resource acquisition order",
        Severity.WARNING,
        "Process functions that acquire the same resources in "
        "different orders can deadlock when their requests "
        "interleave: each holds what the other needs.  The cycle is "
        "over the project-wide acquisition graph, so no single "
        "function shows the defect.",
        "Pick one global acquisition order for the cycle's "
        "resources, or merge the acquisitions into one request.",
    ),
    Rule(
        "SF305", "event scheduled in the past", Severity.ERROR,
        "A negative delay asks the kernel to schedule before `now`; "
        "the kernel raises ValueError at run time — but only when "
        "the path executes, which for guard/fallback branches may be "
        "deep into a long sweep.",
        "Clamp delays to max(0.0, delay) or fix the sign of the "
        "computed interval.",
    ),
    Rule(
        "SF306", "infinite loop without yield", Severity.ERROR,
        "A `while True` (or time-conditioned) loop with no yield "
        "never returns control to the scheduler: simulated time "
        "freezes and the run spins forever at 100% CPU, "
        "indistinguishable from a hang.",
        "Yield a kernel event inside the loop (`yield "
        "env.timeout(...)`) so time can advance.",
    ),
    Rule(
        "SF307", "nondeterminism reaches the schedule",
        Severity.ERROR,
        "A value derived from the wall clock, an unseeded RNG, "
        "id()/hash() addresses, OS entropy, or set iteration order "
        "flowing into a timeout, schedule, or seed argument makes "
        "event ordering depend on the host: the run stops being a "
        "pure function of the experiment seed, and replications "
        "silently diverge.",
        "Derive delays and seeds only from seeded streams "
        "(spawn_rng, RandomStreams) and simulated time (env.now).",
    ),
])


def rule(rule_id: str) -> Rule:
    """Look up a catalog rule by id."""
    try:
        return RULES[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}") from None


def make_diagnostic(
    rule_id: str,
    message: str,
    subject: str,
    line: int | None = None,
    severity: Severity | None = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic` with catalog defaults filled in."""
    entry = rule(rule_id)
    return Diagnostic(
        rule=rule_id,
        severity=entry.severity if severity is None else severity,
        message=message,
        subject=subject,
        line=line,
        fix_hint=entry.fix_hint,
    )


def max_severity(diagnostics: Iterable[Diagnostic]) -> Severity | None:
    """Highest severity present, or ``None`` for a clean result."""
    severities = [d.severity for d in diagnostics]
    return max(severities) if severities else None


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    """True when any diagnostic is error-severity."""
    return any(d.severity >= Severity.ERROR for d in diagnostics)


def _sort_key(diag: Diagnostic) -> tuple:
    return (diag.subject, diag.line if diag.line is not None else -1,
            diag.rule, diag.message)


def diagnostics_to_dict(diagnostics: Iterable[Diagnostic]) -> dict:
    """Stable JSON document for a set of findings.

    Findings are sorted by (subject, line, rule, message) so two runs
    over the same tree serialize identically — the property the golden
    test and the CI artifact diffing rely on.
    """
    ordered = sorted(diagnostics, key=_sort_key)
    counts = {"error": 0, "warning": 0, "info": 0}
    for diag in ordered:
        counts[str(diag.severity)] += 1
    return {
        "version": 1,
        "counts": counts,
        "diagnostics": [d.to_dict() for d in ordered],
    }


def diagnostics_to_json(
    diagnostics: Iterable[Diagnostic], indent: int | None = 2
) -> str:
    """Serialize findings to deterministic JSON text."""
    return json.dumps(diagnostics_to_dict(diagnostics), indent=indent,
                      sort_keys=True)
