"""Determinism-taint analysis (rule ``SF307``).

The deterministic-merge contracts of :mod:`repro.parallel` and
:mod:`repro.scenario` hold only if no scheduling decision depends on
anything but the seed.  This module tracks values *derived from*
nondeterministic sources — wall-clock reads, unseeded RNG draws,
``id()``, ``hash()`` (salted per process), OS entropy, and iteration
order over ``set``\\ s — through assignments, arithmetic, and function
calls, and reports when such a value reaches a **scheduling sink**: an
``env.timeout``/``env.schedule`` delay, a ``seed=`` argument, or the
seed-derivation helpers.

This is the interprocedural upgrade of the Layer-2 point rules
(``SL201``/``SL202`` flag the *call sites*; ``SF307`` flags the *flow*
— ``t0 = time.perf_counter()`` is fine for wall-time measurement and
stays silent until ``t0`` leaks into a timeout).  Function summaries
are computed over the project call graph to a fixpoint: a function
returning tainted data taints its callers, and a function whose
parameter reaches a sink turns every call site passing tainted data
into a finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.check.cfg import CFG, ForIter, WithEnter, WithExit, \
    build_cfg, dataflow, function_defs
from repro.check.simlint import ImportTable

__all__ = ["TaintAnalysis", "TaintFinding", "SOURCE_KINDS"]

#: Dotted call targets that read the host wall clock.  Unlike SL202,
#: the *allowed* perf counters are included: calling them is fine,
#: letting the value steer the simulation is not.
_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic",
    "time.monotonic_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: Dotted call targets drawing OS entropy.
_ENTROPY = {
    "os.urandom", "uuid.uuid4", "uuid.uuid1",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
    "secrets.choice",
}

#: numpy.random members of the modern, explicitly-seeded API (same
#: whitelist as SL201).
_NUMPY_RANDOM_ALLOWED = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}

#: random.* members that are constructors, not global-state draws.
_RANDOM_ALLOWED = {"Random", "SystemRandom"}

#: Human labels of the taint kinds SF307 reports.
SOURCE_KINDS = {
    "wall-clock": "a wall-clock read",
    "global-rng": "an unseeded RNG draw",
    "id": "an id() address",
    "hash": "a salted hash() value",
    "entropy": "OS entropy",
    "set-order": "set iteration order",
}

#: Functions whose positional arguments are seed-derivation sinks.
_SINK_FUNCS = {"derive_seed", "replica_seed", "spawn_rng"}


@dataclass(frozen=True)
class TaintFinding:
    """One nondeterministic flow into a scheduling sink."""

    path: str
    line: int
    kind: str
    source_line: int
    sink: str

    @property
    def message(self) -> str:
        origin = SOURCE_KINDS.get(self.kind, self.kind)
        return (f"value derived from {origin} (line "
                f"{self.source_line}) reaches {self.sink} — the "
                f"schedule stops being a pure function of the seed")


@dataclass
class _Summary:
    """Interprocedural behaviour of one function."""

    returns: frozenset = frozenset()        # taint kinds returned
    param_returns: frozenset = frozenset()  # param positions returned
    param_sinks: frozenset = frozenset()    # param positions → sink

    def __eq__(self, other) -> bool:
        return (self.returns == other.returns
                and self.param_returns == other.param_returns
                and self.param_sinks == other.param_sinks)


@dataclass
class _Function:
    path: str
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cfg: CFG
    imports: ImportTable
    summary: _Summary = field(default_factory=_Summary)
    new_param_sinks: set = field(default_factory=set)
    new_param_returns: set = field(default_factory=set)
    new_returns: set = field(default_factory=set)


def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) \
        -> list[str]:
    args = node.args
    ordered = [a.arg for a in args.posonlyargs] \
        + [a.arg for a in args.args]
    return ordered


class TaintAnalysis:
    """Project-wide determinism-taint pass.

    Parameters
    ----------
    files:
        ``(path, tree)`` pairs of every module in the analysis scope;
        the call graph resolves across all of them.
    """

    def __init__(self, files: Iterable[tuple[str, ast.Module]]):
        self.functions: dict[tuple[str, str], _Function] = {}
        self._by_tail: dict[str, list[_Function]] = {}
        for path, tree in files:
            imports = ImportTable()
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    imports.add_import(node)
                elif isinstance(node, ast.ImportFrom):
                    imports.add_import_from(node)
            for qualname, func in function_defs(tree):
                entry = _Function(path, qualname, func,
                                  build_cfg(func), imports)
                self.functions[(path, qualname)] = entry
                tail = qualname.rsplit(".", 1)[-1]
                self._by_tail.setdefault(tail, []).append(entry)

    # -- call resolution ----------------------------------------------
    def _resolve(self, caller: _Function,
                 func_expr: ast.expr) -> _Function | None:
        if isinstance(func_expr, ast.Name):
            name = func_expr.id
            local = self.functions.get((caller.path, name))
            if local is not None:
                return local
        elif isinstance(func_expr, ast.Attribute):
            name = func_expr.attr
            # self.m() prefers a method of the same module.
            candidates = [f for f in self._by_tail.get(name, ())
                          if f.path == caller.path
                          and "." in f.qualname]
            if len(candidates) == 1:
                return candidates[0]
        else:
            return None
        project = self._by_tail.get(name, ())
        return project[0] if len(project) == 1 else None

    # -- expression taint ---------------------------------------------
    def _call_taint(self, caller: _Function, node: ast.Call,
                    state: dict) -> frozenset:
        dotted = caller.imports.resolve(node.func)
        kinds: set = set()
        if dotted is not None:
            if dotted in _WALL_CLOCK:
                kinds.add(("wall-clock", node.lineno))
            elif dotted in _ENTROPY:
                kinds.add(("entropy", node.lineno))
            elif dotted.startswith("random."):
                member = dotted.split(".", 1)[1]
                if member not in _RANDOM_ALLOWED:
                    kinds.add(("global-rng", node.lineno))
            elif dotted.startswith("numpy.random."):
                member = dotted.split(".", 2)[2].split(".")[0]
                if member not in _NUMPY_RANDOM_ALLOWED:
                    kinds.add(("global-rng", node.lineno))
        if isinstance(node.func, ast.Name):
            if node.func.id == "id":
                kinds.add(("id", node.lineno))
            elif node.func.id == "hash":
                kinds.add(("hash", node.lineno))
        callee = self._resolve(caller, node.func)
        if callee is not None:
            for kind in callee.summary.returns:
                kinds.add((kind, node.lineno))
            for pos in callee.summary.param_returns:
                for fact in self._arg_taint(caller, node, pos, state):
                    kinds.add(fact)
        return frozenset(kinds)

    def _arg_taint(self, caller: _Function, call: ast.Call,
                   pos: int, state: dict) -> frozenset:
        if pos < len(call.args):
            return self._expr_taint(caller, call.args[pos], state)
        return frozenset()

    def _expr_taint(self, caller: _Function, expr: ast.expr,
                    state: dict) -> frozenset:
        kinds: set = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Name):
                kinds |= {f for f in state.get(node.id, frozenset())
                          if f[0] != "isset"}
            elif isinstance(node, ast.Call):
                kinds |= self._call_taint(caller, node, state)
        return frozenset(kinds)

    def _is_set_expr(self, expr: ast.expr, state: dict) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) \
                and isinstance(expr.func, ast.Name) \
                and expr.func.id in {"set", "frozenset"}:
            return True
        if isinstance(expr, ast.Name):
            return any(f[0] == "isset"
                       for f in state.get(expr.id, frozenset()))
        return False

    # -- sinks ---------------------------------------------------------
    def _sink_args(self, node: ast.Call) \
            -> list[tuple[ast.expr, str]]:
        out: list[tuple[ast.expr, str]] = []
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "timeout":
                if node.args:
                    out.append((node.args[0], "a timeout delay"))
            elif func.attr == "schedule" and len(node.args) > 1:
                out.append((node.args[1], "a schedule delay"))
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None)
        if name in _SINK_FUNCS:
            for arg in node.args:
                out.append((arg, f"{name}() (seed derivation)"))
        for keyword in node.keywords:
            if keyword.arg == "seed":
                out.append((keyword.value, "a seed= argument"))
            elif keyword.arg == "delay" and isinstance(
                    func, ast.Attribute) \
                    and func.attr in {"timeout", "schedule"}:
                out.append((keyword.value, "a schedule delay"))
        return out

    # -- per-function dataflow ----------------------------------------
    def _transfer(self, entry: _Function,
                  sink_hook: Callable | None):
        def transfer(state: dict, atom) -> dict:
            if isinstance(atom, (WithEnter, WithExit)):
                return state
            if isinstance(atom, ForIter):
                target = atom.node.target
                taints = self._expr_taint(entry, atom.node.iter,
                                          state)
                if self._is_set_expr(atom.node.iter, state):
                    taints |= {("set-order", atom.node.lineno)}
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        state = dict(state)
                        if taints:
                            state[name_node.id] = taints
                        else:
                            state.pop(name_node.id, None)
                return state
            # Sinks can sit in any statement; check before rebinding.
            if sink_hook is not None:
                for node in ast.walk(atom):
                    if isinstance(node, ast.Call):
                        for arg, label in self._sink_args(node):
                            taints = self._expr_taint(entry, arg,
                                                      state)
                            for fact in taints:
                                sink_hook(node, fact, label)
            if isinstance(atom, ast.Return) and atom.value is not None:
                taints = self._expr_taint(entry, atom.value, state)
                for kind, _line in taints:
                    if isinstance(kind, tuple):  # ("param", i)
                        entry.new_param_returns.add(kind[1])
                    else:
                        entry.new_returns.add(kind)
                return state
            if isinstance(atom, ast.Assign):
                taints = self._expr_taint(entry, atom.value, state)
                isset = self._is_set_expr(atom.value, state)
                state = dict(state)
                for target in atom.targets:
                    if isinstance(target, ast.Name):
                        facts = set(taints)
                        if isset:
                            facts.add(("isset", atom.lineno))
                        if facts:
                            state[target.id] = frozenset(facts)
                        else:
                            state.pop(target.id, None)
                return state
            if isinstance(atom, ast.AugAssign) \
                    and isinstance(atom.target, ast.Name):
                taints = self._expr_taint(entry, atom.value, state)
                if taints:
                    state = dict(state)
                    state[atom.target.id] = \
                        state.get(atom.target.id, frozenset()) | taints
                return state
            if isinstance(atom, ast.AnnAssign) \
                    and atom.value is not None \
                    and isinstance(atom.target, ast.Name):
                taints = self._expr_taint(entry, atom.value, state)
                state = dict(state)
                if taints:
                    state[atom.target.id] = taints
                else:
                    state.pop(atom.target.id, None)
                return state
            return state

        return transfer

    def _run_function(self, entry: _Function,
                      sink_hook: Callable | None) -> None:
        initial = {
            name: frozenset({(("param", i), entry.node.lineno)})
            for i, name in enumerate(_param_names(entry.node))
        }
        entry.new_returns = set()
        entry.new_param_returns = set()

        def summary_sink(node: ast.Call, fact, label: str) -> None:
            kind, _line = fact
            if isinstance(kind, tuple):  # ("param", i) reaches a sink
                entry.new_param_sinks.add(kind[1])
            elif sink_hook is not None:
                sink_hook(node, fact, label)

        transfer = self._transfer(entry, summary_sink)
        dataflow(entry.cfg, transfer, initial)

    # -- driver --------------------------------------------------------
    def summarize(self, max_rounds: int = 6) -> None:
        """Iterate function summaries over the call graph to a
        fixpoint (bounded by ``max_rounds``)."""
        for _ in range(max_rounds):
            changed = False
            for entry in self.functions.values():
                entry.new_param_sinks = set()
                self._run_function(entry, sink_hook=None)
                summary = _Summary(
                    returns=frozenset(entry.new_returns),
                    param_returns=frozenset(entry.new_param_returns),
                    param_sinks=frozenset(
                        entry.new_param_sinks
                        | set(entry.summary.param_sinks)),
                )
                if summary != entry.summary:
                    entry.summary = summary
                    changed = True
            if not changed:
                break

    def findings(self) -> list[TaintFinding]:
        """Summaries + one reporting pass → every SF307 flow."""
        self.summarize()
        results: list[TaintFinding] = []
        seen: set[tuple] = set()
        for entry in self.functions.values():

            def hook(node: ast.Call, fact, label: str,
                     entry: _Function = entry) -> None:
                kind, src_line = fact
                if isinstance(kind, tuple):
                    return  # parameter taint is a summary, not a bug
                key = (entry.path, node.lineno, kind, label)
                if key in seen:
                    return
                seen.add(key)
                results.append(TaintFinding(
                    entry.path, node.lineno, kind, src_line, label))

            self._run_function(entry, sink_hook=hook)
            # Interprocedural sinks: tainted argument into a callee
            # whose parameter reaches a sink.
            self._call_site_sinks(entry, seen, results)
        results.sort(key=lambda f: (f.path, f.line, f.kind))
        return results

    def _call_site_sinks(self, entry: _Function, seen: set,
                         results: list[TaintFinding]) -> None:
        def hook(node, fact, label):  # direct sinks handled above
            return

        transfer = self._transfer(entry, None)
        initial: dict = {}
        states = dataflow(entry.cfg, transfer, initial)
        for block in entry.cfg.reachable():
            state = states.get(block.id)
            if state is None:
                continue
            for atom in block.stmts:
                if not isinstance(atom, (WithEnter, WithExit,
                                         ForIter)):
                    for node in ast.walk(atom):
                        if isinstance(node, ast.Call):
                            self._check_callee_sink(
                                entry, node, state, seen, results)
                state = transfer(state, atom)

    def _check_callee_sink(self, entry: _Function, node: ast.Call,
                           state: dict, seen: set,
                           results: list[TaintFinding]) -> None:
        callee = self._resolve(entry, node.func)
        if callee is None or not callee.summary.param_sinks:
            return
        for pos in callee.summary.param_sinks:
            for fact in self._arg_taint(entry, node, pos, state):
                kind, src_line = fact
                if isinstance(kind, tuple):
                    continue
                label = (f"a scheduling sink inside "
                         f"{callee.qualname}()")
                key = (entry.path, node.lineno, kind, label)
                if key in seen:
                    continue
                seen.add(key)
                results.append(TaintFinding(
                    entry.path, node.lineno, kind, src_line, label))
