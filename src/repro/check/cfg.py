"""Per-function control-flow graphs for the Layer-3 flow analyzer.

:func:`build_cfg` lowers one ``ast`` function body into basic blocks
connected by directed edges — the substrate
:mod:`repro.check.simflow` runs its abstract interpretation over.
The lowering keeps only *atomic* statements inside blocks (assignments,
expression statements, returns, raises, ...); structured control flow
(``if``/``while``/``for``/``try``/``with``/``match``) becomes edges.

Design choices, tuned for the DES-discipline analyses:

* ``with`` statements contribute :class:`WithEnter`/:class:`WithExit`
  markers so transfer functions see resource scopes without
  re-walking nested bodies.
* ``try`` bodies get a coarse exception edge from **every** block of
  the protected region to each handler (and into ``finally``): any
  statement may raise, and for leak analysis over-approximating the
  exceptional flow is the sound direction.
* ``return``/``raise`` edge to the single synthetic exit block, with
  the statement retained in its block so exit-path analyses can
  distinguish an early return from falling off the end.
* Loop back edges are real edges; the engine in simflow iterates to a
  fixpoint, so states reaching a loop tail propagate back to the head.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Union

__all__ = ["Block", "CFG", "WithEnter", "WithExit", "ForIter",
           "build_cfg", "function_defs", "dataflow", "merge_states",
           "is_generator"]


@dataclass
class WithEnter:
    """Marker: control entered ``with`` item ``item`` (of ``node``)."""

    node: ast.With | ast.AsyncWith
    item: ast.withitem

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class WithExit:
    """Marker: the matching ``with`` scope is being left."""

    node: ast.With | ast.AsyncWith
    item: ast.withitem

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ForIter:
    """Marker: the loop header binding ``node.target`` from
    ``node.iter`` (re-executed every iteration — it sits in the loop
    head block, which back edges return to)."""

    node: ast.For | ast.AsyncFor

    @property
    def lineno(self) -> int:
        return self.node.lineno


#: What a basic block may contain.
Atom = Union[ast.stmt, WithEnter, WithExit, ForIter]


@dataclass
class Block:
    """A straight-line run of atomic statements."""

    id: int
    stmts: list[Atom] = field(default_factory=list)
    succ: list["Block"] = field(default_factory=list)
    pred: list["Block"] = field(default_factory=list)
    #: True for the synthetic exit block.
    is_exit: bool = False

    def link(self, other: "Block") -> None:
        if other not in self.succ:
            self.succ.append(other)
            other.pred.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(s).__name__ for s in self.stmts)
        return f"Block({self.id}, [{kinds}] -> " \
               f"{[b.id for b in self.succ]})"


class CFG:
    """Control-flow graph of one function.

    Attributes
    ----------
    func:
        The ``ast.FunctionDef`` the graph was built from.
    entry, exit:
        Unique entry block and synthetic exit block.  Both normal
        completion and ``return``/``raise`` reach ``exit``.
    blocks:
        Every block, in creation (roughly source) order.
    """

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.func = func
        self.blocks: list[Block] = []
        self.entry = self.new_block()
        self.exit = self.new_block()
        self.exit.is_exit = True

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def reachable(self) -> list[Block]:
        """Blocks reachable from the entry, in visit order."""
        seen: set[int] = set()
        order: list[Block] = []
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block.id in seen:
                continue
            seen.add(block.id)
            order.append(block)
            stack.extend(block.succ)
        return order


class _Builder:
    def __init__(self, cfg: CFG):
        self.cfg = cfg
        # (continue_target, break_target) stack for loops.
        self.loops: list[tuple[Block, Block]] = []
        # Exception targets of enclosing try statements: each entry is
        # the list of blocks an exception may transfer control to.
        self.handlers: list[list[Block]] = []

    # -- helpers -------------------------------------------------------
    def _exception_edges(self, block: Block) -> None:
        """Connect ``block`` to every active exception target."""
        for targets in self.handlers:
            for target in targets:
                block.link(target)

    def _append(self, block: Block, stmt: Atom) -> Block:
        block.stmts.append(stmt)
        # Under an active try, any statement may raise: give the block
        # the coarse exception edge once it holds a statement.
        self._exception_edges(block)
        return block

    # -- statement lowering -------------------------------------------
    def build(self, stmts: list[ast.stmt], current: Block) -> Block:
        """Lower ``stmts`` starting in ``current``; return the block
        control falls out of (which may be unreachable after a
        terminator)."""
        for stmt in stmts:
            current = self.build_stmt(stmt, current)
        return current

    def build_stmt(self, stmt: ast.stmt, current: Block) -> Block:
        cfg = self.cfg
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._append(current, stmt)
            current.link(cfg.exit)
            return cfg.new_block()  # dead continuation

        if isinstance(stmt, ast.Break):
            if self.loops:
                current.link(self.loops[-1][1])
            return cfg.new_block()

        if isinstance(stmt, ast.Continue):
            if self.loops:
                current.link(self.loops[-1][0])
            return cfg.new_block()

        if isinstance(stmt, ast.If):
            then_block = cfg.new_block()
            after = cfg.new_block()
            current.link(then_block)
            then_end = self.build(stmt.body, then_block)
            then_end.link(after)
            if stmt.orelse:
                else_block = cfg.new_block()
                current.link(else_block)
                else_end = self.build(stmt.orelse, else_block)
                else_end.link(after)
            else:
                current.link(after)
            return after

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = cfg.new_block()
            body = cfg.new_block()
            after = cfg.new_block()
            current.link(head)
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._append(head, ForIter(stmt))
            head.link(body)
            # ``while True`` never falls through to the else/after
            # edge — the only way out is break/return.  Every other
            # loop may skip or leave the body (through the orelse,
            # when present).
            if not _always_true_loop(stmt):
                if stmt.orelse:
                    else_block = cfg.new_block()
                    head.link(else_block)
                    end = self.build(stmt.orelse, else_block)
                    end.link(after)
                else:
                    head.link(after)
            self.loops.append((head, after))
            body_end = self.build(stmt.body, body)
            self.loops.pop()
            body_end.link(head)
            return after

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._append(current, WithEnter(stmt, item))
            current = self.build(stmt.body, current)
            for item in reversed(stmt.items):
                self._append(current, WithExit(stmt, item))
            return current

        if isinstance(stmt, ast.Try):
            handler_blocks = [cfg.new_block() for _ in stmt.handlers]
            final_entry = cfg.new_block() if stmt.finalbody else None
            after = cfg.new_block()
            # The exceptional continuation of the protected region:
            # each handler, or finally directly when there is none.
            targets = list(handler_blocks)
            if final_entry is not None and not handler_blocks:
                targets.append(final_entry)
            self.handlers.append(targets)
            body_end = self.build(stmt.body, current)
            self.handlers.pop()
            if stmt.orelse:
                body_end = self.build(stmt.orelse, body_end)
            joins = [body_end]
            for handler, block in zip(stmt.handlers, handler_blocks):
                joins.append(self.build(handler.body, block))
            if final_entry is not None:
                for join in joins:
                    join.link(final_entry)
                final_end = self.build(stmt.finalbody, final_entry)
                final_end.link(after)
            else:
                for join in joins:
                    join.link(after)
            return after

        if isinstance(stmt, ast.Match):
            after = cfg.new_block()
            for case in stmt.cases:
                case_block = cfg.new_block()
                current.link(case_block)
                end = self.build(case.body, case_block)
                end.link(after)
            current.link(after)  # no case may match
            return after

        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            # Nested definitions are separate CFGs; record the
            # statement (for call-graph construction) without
            # descending.
            return self._append(current, stmt)

        return self._append(current, stmt)


def _always_true_loop(stmt: ast.stmt) -> bool:
    return (isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value))


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the control-flow graph of one function definition."""
    cfg = CFG(func)
    builder = _Builder(cfg)
    end = builder.build(func.body, cfg.entry)
    end.link(cfg.exit)
    return cfg


def merge_states(a: dict, b: dict) -> dict:
    """Join two abstract states: key-wise union of fact sets (the
    may-analysis join — a fact holds after the join if it holds on
    *some* incoming path)."""
    out = dict(a)
    for key, facts in b.items():
        previous = out.get(key)
        out[key] = facts if previous is None else previous | facts
    return out


def dataflow(
    cfg: CFG,
    transfer,
    initial: dict,
) -> dict[int, dict]:
    """Forward may-analysis over ``cfg`` to a fixpoint.

    ``transfer(state, atom) -> state`` folds one atomic statement into
    an abstract state (a dict mapping variable names to frozensets of
    facts); states merge at joins with :func:`merge_states`.  Facts
    are drawn from the finite set of (kind, line) pairs of one
    function, and the join is a set union, so the iteration is
    monotone and terminates.

    Returns the fixpoint state at the **entry** of each block, keyed
    by block id (``cfg.exit.id`` therefore gives the state on function
    exit).  Callers that emit diagnostics run one more deterministic
    pass over ``cfg.reachable()`` replaying ``transfer`` from these
    entry states.
    """
    from collections import deque

    entry_states: dict[int, dict] = {cfg.entry.id: initial}
    work = deque([cfg.entry])
    while work:
        block = work.popleft()
        state = entry_states.get(block.id)
        if state is None:  # pragma: no cover - defensive
            continue
        for atom in block.stmts:
            state = transfer(state, atom)
        for succ in block.succ:
            previous = entry_states.get(succ.id)
            joined = (state if previous is None
                      else merge_states(previous, state))
            if previous is None or joined != previous:
                entry_states[succ.id] = joined
                work.append(succ)
    return entry_states


def is_generator(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when ``func`` itself yields (nested defs excluded)."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False


def function_defs(
    tree: ast.AST,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualified_name, def)`` for every function in ``tree``.

    Qualified names join enclosing classes/functions with dots
    (``Server.run.worker``), the key space the project call graph and
    the lock-order analysis use.
    """
    def walk(node: ast.AST, prefix: str) -> Iterator[
            tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}"
                yield name, child
                yield from walk(child, f"{name}.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, "")
