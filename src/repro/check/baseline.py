"""Baseline suppression: adopt the analyzers on a codebase with debt.

A baseline file records the fingerprints of the findings present at
adoption time (``repro check --baseline write``); later runs subtract
exactly those findings (``--baseline compare``), so CI can gate on
*new* findings while the recorded debt is burned down separately.

Fingerprints (:attr:`repro.check.diagnostics.Diagnostic.fingerprint`)
mask line numbers, so routine edits that shift code do not invalidate
the baseline; fixing a baselined finding makes its entry *stale*,
which ``compare`` reports so the file shrinks monotonically instead
of accumulating dead entries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.check.diagnostics import Diagnostic, _sort_key

__all__ = [
    "BaselineComparison",
    "write_baseline",
    "load_baseline",
    "compare_baseline",
]

_VERSION = 1


@dataclass
class BaselineComparison:
    """Outcome of subtracting a baseline from a set of findings.

    Attributes
    ----------
    new:
        Findings whose fingerprint the baseline does not contain —
        what a gated run should fail on.
    suppressed:
        Findings matched (and silenced) by a baseline entry.
    stale:
        Baseline fingerprints no finding matched any more: the debt
        was paid, the entries should be deleted (re-run ``--baseline
        write``).  Each entry is the recorded ``{fingerprint, rule,
        subject}`` mapping, so the report is human-readable.
    """

    new: list[Diagnostic] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)
    stale: list[dict] = field(default_factory=list)


def _entries(diagnostics: Iterable[Diagnostic]) -> list[dict]:
    ordered = sorted(diagnostics, key=_sort_key)
    seen: set[str] = set()
    entries: list[dict] = []
    for diag in ordered:
        if diag.fingerprint in seen:
            continue  # one entry suppresses every identical finding
        seen.add(diag.fingerprint)
        entries.append({
            "fingerprint": diag.fingerprint,
            "rule": diag.rule,
            "subject": diag.subject,
        })
    return entries


def write_baseline(
    diagnostics: Iterable[Diagnostic], path: str | Path
) -> dict:
    """Record current findings as the accepted baseline at ``path``.

    Returns the written document.  The file is deterministic JSON
    (sorted entries, sorted keys) so it diffs cleanly under review.
    """
    document = {
        "version": _VERSION,
        "fingerprints": _entries(diagnostics),
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    return document


def load_baseline(path: str | Path) -> dict:
    """Load and validate a baseline document."""
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) \
            or document.get("version") != _VERSION:
        raise ValueError(
            f"{path}: not a repro-check baseline file "
            f"(expected version {_VERSION})"
        )
    entries = document.get("fingerprints")
    if not isinstance(entries, list) or not all(
            isinstance(e, dict) and "fingerprint" in e
            for e in entries):
        raise ValueError(f"{path}: malformed fingerprint list")
    return document


def compare_baseline(
    diagnostics: Iterable[Diagnostic], baseline: dict
) -> BaselineComparison:
    """Split ``diagnostics`` against a loaded ``baseline``."""
    by_fingerprint = {e["fingerprint"]: e
                      for e in baseline["fingerprints"]}
    comparison = BaselineComparison()
    matched: set[str] = set()
    for diag in sorted(diagnostics, key=_sort_key):
        if diag.fingerprint in by_fingerprint:
            matched.add(diag.fingerprint)
            comparison.suppressed.append(diag)
        else:
            comparison.new.append(diag)
    comparison.stale = [
        entry for entry in baseline["fingerprints"]
        if entry["fingerprint"] not in matched
    ]
    return comparison
