"""Shared, mtime-keyed AST cache for the AST-based analysis layers.

``repro check`` runs two independent passes over the same Python
sources — the Layer-2 lint (:mod:`repro.check.simlint`) and the
Layer-3 flow analyzer (:mod:`repro.check.simflow`) — and the
experiment pre-flight may analyze the same module several times in one
process.  Parsing dominates the cost of both passes, so every consumer
goes through :func:`parse_file`, which parses each file exactly once
per content version: entries are keyed by resolved path and
invalidated on ``(mtime_ns, size)`` change.

The cache also carries per-file derived artifacts (parsed pragmas,
CFGs) under :attr:`ParsedFile.derived`, so simflow's CFG construction
is likewise shared between repeated analyses of an unchanged file.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["ParsedFile", "parse_file", "parse_source",
           "cache_stats", "clear_cache"]


@dataclass
class ParsedFile:
    """One parsed source file plus a slot for derived artifacts.

    Attributes
    ----------
    path:
        Resolved filesystem path (``"<string>"`` for in-memory
        sources).
    source:
        The file text.
    tree:
        Parsed module, or ``None`` when the file has a syntax error.
    error:
        The :class:`SyntaxError` when parsing failed.
    derived:
        Scratch space for analyses keyed by consumer
        (``parsed.derived["cfg"]``); invalidated together with the
        entry itself.
    """

    path: str
    source: str
    tree: ast.Module | None
    error: SyntaxError | None = None
    derived: dict[str, Any] = field(default_factory=dict)


#: path → ((mtime_ns, size), ParsedFile)
_CACHE: dict[str, tuple[tuple[int, int], ParsedFile]] = {}
_HITS = 0
_MISSES = 0


def _parse(source: str, path: str) -> ParsedFile:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return ParsedFile(path, source, None, error=exc)
    return ParsedFile(path, source, tree)


def parse_source(source: str, path: str = "<string>") -> ParsedFile:
    """Parse in-memory ``source`` (never cached — no file identity)."""
    return _parse(source, path)


def parse_file(path: str | Path) -> ParsedFile:
    """Parse ``path`` through the shared cache.

    The entry is reused while the file's ``(mtime_ns, size)`` stays
    unchanged; an edited file re-parses transparently.
    """
    global _HITS, _MISSES
    resolved = os.fspath(Path(path))
    stat = os.stat(resolved)
    key = (stat.st_mtime_ns, stat.st_size)
    entry = _CACHE.get(resolved)
    if entry is not None and entry[0] == key:
        _HITS += 1
        return entry[1]
    _MISSES += 1
    source = Path(resolved).read_text(encoding="utf-8")
    parsed = _parse(source, resolved)
    _CACHE[resolved] = (key, parsed)
    return parsed


def cache_stats() -> dict[str, int]:
    """Hit/miss/size counters (the perf-guard test asserts on these)."""
    return {"hits": _HITS, "misses": _MISSES, "entries": len(_CACHE)}


def clear_cache() -> None:
    """Drop every entry and zero the counters."""
    global _HITS, _MISSES
    _CACHE.clear()
    _HITS = 0
    _MISSES = 0
