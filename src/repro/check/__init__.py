"""repro.check — static model verification and simulation lint.

The holistic design flow stands or falls on its models being
well-formed *before* anything is simulated (companion methodologies —
Bhattacharyya & Wolf's tool flows, Borgatti's integrated design and
verification — make this an explicit design-flow stage).  This package
is that stage:

* **Layer 1 — model verifier** (:mod:`repro.check.model`): pure
  functions over :mod:`repro.core` objects that catch structural
  errors (unreachable processes, deadlock cycles), broken mappings,
  guaranteed constraint infeasibility and unit/dimension slips.
  Rule ids ``RC1xx``.
* **Layer 2 — simulation lint** (:mod:`repro.check.simlint`): a
  stdlib-:mod:`ast` pass over the simulation sources enforcing DES
  discipline — seeded RNG streams only, no wall-clock reads, kernel
  events must be yielded, no ``==`` against simulated time.  Rule ids
  ``SL2xx``; suppress intentional findings with
  ``# simlint: ignore[RULE]``.

Both layers report :class:`Diagnostic` records and surface through
``repro check [--models] [--lint] [--json] [--strict]`` and the
experiment registry's pre-flight hook (``repro.experiments.run``
verifies an experiment's declared models before running it).

See ``docs/static_analysis.md`` for the full rule catalog.
"""

from repro.check.diagnostics import (
    RULES,
    Diagnostic,
    ModelVerificationError,
    Rule,
    Severity,
    diagnostics_to_dict,
    diagnostics_to_json,
    format_diagnostic,
    has_errors,
    make_diagnostic,
    max_severity,
    rule,
)
from repro.check.model import (
    verify_application,
    verify_design,
    verify_mapping,
    verify_model,
    verify_platform,
    verify_task_graph,
)
from repro.check.repo import (
    builtin_model_checks,
    check_models,
    check_repository,
    default_lint_paths,
    repository_root,
)
from repro.check.simlint import lint_file, lint_paths, lint_source

__all__ = [
    "Severity",
    "Rule",
    "Diagnostic",
    "RULES",
    "rule",
    "make_diagnostic",
    "max_severity",
    "has_errors",
    "diagnostics_to_dict",
    "diagnostics_to_json",
    "format_diagnostic",
    "ModelVerificationError",
    "verify_application",
    "verify_task_graph",
    "verify_platform",
    "verify_mapping",
    "verify_design",
    "verify_model",
    "lint_source",
    "lint_file",
    "lint_paths",
    "builtin_model_checks",
    "check_models",
    "check_repository",
    "default_lint_paths",
    "repository_root",
]
