"""repro.check — static model verification and simulation lint.

The holistic design flow stands or falls on its models being
well-formed *before* anything is simulated (companion methodologies —
Bhattacharyya & Wolf's tool flows, Borgatti's integrated design and
verification — make this an explicit design-flow stage).  This package
is that stage:

* **Layer 1 — model verifier** (:mod:`repro.check.model`): pure
  functions over :mod:`repro.core` objects that catch structural
  errors (unreachable processes, deadlock cycles), broken mappings,
  guaranteed constraint infeasibility and unit/dimension slips.
  Rule ids ``RC1xx``.
* **Layer 2 — simulation lint** (:mod:`repro.check.simlint`): a
  stdlib-:mod:`ast` pass over the simulation sources enforcing DES
  discipline — seeded RNG streams only, no wall-clock reads, kernel
  events must be yielded, no ``==`` against simulated time.  Rule ids
  ``SL2xx``; suppress intentional findings with
  ``# simlint: ignore[RULE,...]`` (see :mod:`repro.check.pragmas`).
* **Layer 3 — flow analysis** (:mod:`repro.check.simflow`):
  per-function control-flow graphs (:mod:`repro.check.cfg`) and a
  project call graph drive a flow-sensitive abstract interpretation
  of the DES-kernel API — event/resource lifecycles, lock-order
  cycles, scheduling-in-the-past, starvation loops, and an
  interprocedural determinism-taint pass
  (:mod:`repro.check.taint`).  Rule ids ``SF3xx``.

All layers report :class:`Diagnostic` records and surface through
``repro check [--models] [--lint] [--flow] [--json] [--sarif FILE]
[--baseline write|compare] [--strict]`` and the experiment registry's
pre-flight hook (``repro.experiments.run`` verifies an experiment's
declared models before running it).

See ``docs/static_analysis.md`` for the full rule catalog.
"""

from repro.check.diagnostics import (
    RULES,
    Diagnostic,
    ModelVerificationError,
    Rule,
    Severity,
    diagnostics_to_dict,
    diagnostics_to_json,
    format_diagnostic,
    has_errors,
    make_diagnostic,
    max_severity,
    rule,
)
from repro.check.astcache import cache_stats, clear_cache
from repro.check.baseline import (
    BaselineComparison,
    compare_baseline,
    load_baseline,
    write_baseline,
)
from repro.check.model import (
    verify_application,
    verify_design,
    verify_mapping,
    verify_model,
    verify_platform,
    verify_task_graph,
)
from repro.check.repo import (
    builtin_model_checks,
    check_models,
    check_repository,
    default_lint_paths,
    repository_root,
)
from repro.check.sarif import to_sarif, to_sarif_json
from repro.check.simflow import analyze_file, analyze_paths, \
    analyze_source
from repro.check.simlint import lint_file, lint_paths, lint_source

__all__ = [
    "Severity",
    "Rule",
    "Diagnostic",
    "RULES",
    "rule",
    "make_diagnostic",
    "max_severity",
    "has_errors",
    "diagnostics_to_dict",
    "diagnostics_to_json",
    "format_diagnostic",
    "ModelVerificationError",
    "verify_application",
    "verify_task_graph",
    "verify_platform",
    "verify_mapping",
    "verify_design",
    "verify_model",
    "lint_source",
    "lint_file",
    "lint_paths",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "to_sarif",
    "to_sarif_json",
    "BaselineComparison",
    "write_baseline",
    "load_baseline",
    "compare_baseline",
    "cache_stats",
    "clear_cache",
    "builtin_model_checks",
    "check_models",
    "check_repository",
    "default_lint_paths",
    "repository_root",
]
