"""Layer 1: static verification of application/architecture models.

Pure functions over :mod:`repro.core` objects that detect ill-formed
designs *before* anything is simulated: structural errors in process
and task graphs, broken mappings, constraint infeasibility that no
scheduler can repair, and unit/dimension slips in power parameters.

Each function returns a list of
:class:`~repro.check.diagnostics.Diagnostic` and never mutates its
arguments; callers decide whether findings are fatal (the experiment
pre-flight hook raises on error severity, the CLI turns them into an
exit code).
"""

from __future__ import annotations

import networkx as nx

from repro.check.diagnostics import Diagnostic, make_diagnostic
from repro.core.application import ApplicationGraph, TaskGraph
from repro.core.architecture import (
    PEKind,
    Platform,
    ProcessingElement,
)
from repro.core.mapping import Mapping
from repro.core.qos import QoSSpec

__all__ = [
    "verify_application",
    "verify_task_graph",
    "verify_platform",
    "verify_mapping",
    "verify_design",
    "verify_model",
]

#: Physical plausibility bounds for RC131 (embedded multimedia silicon).
_FREQUENCY_RANGE = (1e4, 1e12)       # 10 kHz .. 1 THz
_MAX_ACTIVE_POWER = 1e3              # 1 kW
_MAX_ENERGY_PER_BIT = 1e-6           # 1 uJ/bit (typical values are pJ)
_RELATIVE_RATE_TOLERANCE = 1e-6


def _subject(kind: str, name: str, element: str = "") -> str:
    base = f"{kind}:{name}"
    return f"{base}/{element}" if element else base


# ----------------------------------------------------------------------
# Application process networks
# ----------------------------------------------------------------------
def verify_application(app: ApplicationGraph) -> list[Diagnostic]:
    """Structural checks on a process network (RC101..RC106)."""
    diags: list[Diagnostic] = []
    graph = app._graph
    name = app.name

    # RC103 first: reachability below assumes the usual acyclic case.
    try:
        cycle = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        cycle = []
    if cycle:
        loop = " -> ".join([edge[0] for edge in cycle]
                           + [cycle[0][0]])
        diags.append(make_diagnostic(
            "RC103",
            f"channel cycle {loop} has no initial tokens and will "
            f"deadlock",
            _subject("app", name),
        ))

    rated = [p.name for p in app.sources() if p.rate_hz is not None]
    reachable: set[str] = set(rated)
    for source in rated:
        reachable |= nx.descendants(graph, source)
    for process in app.processes:
        if process.name not in reachable:
            diags.append(make_diagnostic(
                "RC101",
                f"process {process.name!r} is not reachable from any "
                f"rated source and will never activate",
                _subject("app", name, f"process:{process.name}"),
            ))

    if len(app) > 1 and not nx.is_weakly_connected(graph):
        n_parts = nx.number_weakly_connected_components(graph)
        diags.append(make_diagnostic(
            "RC102",
            f"application graph splits into {n_parts} disconnected "
            f"fragments",
            _subject("app", name),
        ))

    for process in app.sources():
        if process.rate_hz is None and graph.out_degree(process.name):
            diags.append(make_diagnostic(
                "RC104",
                f"source process {process.name!r} has no rate_hz",
                _subject("app", name, f"process:{process.name}"),
            ))
    for process in app.processes:
        if process.rate_hz is not None and app.predecessors(
                process.name):
            diags.append(make_diagnostic(
                "RC105",
                f"process {process.name!r} has rate_hz="
                f"{process.rate_hz:g} but also input channels; the "
                f"rate is ignored",
                _subject("app", name, f"process:{process.name}"),
            ))

    if not cycle:
        rates = _activation_rates(app)
        for process in app.processes:
            preds = app.predecessors(process.name)
            if len(preds) < 2:
                continue
            in_rates = {p: rates[p] for p in preds}
            lo, hi = min(in_rates.values()), max(in_rates.values())
            if hi > 0 and (hi - lo) / hi > _RELATIVE_RATE_TOLERANCE:
                detail = ", ".join(
                    f"{p}={r:g}/s" for p, r in sorted(in_rates.items())
                )
                diags.append(make_diagnostic(
                    "RC106",
                    f"join {process.name!r} consumes inputs at "
                    f"mismatched rates ({detail})",
                    _subject("app", name, f"process:{process.name}"),
                ))
    return diags


def _activation_rates(app: ApplicationGraph) -> dict[str, float]:
    """Steady-state token rate per process (max-of-inputs join rule,
    matching :class:`~repro.core.evaluation.AnalyticalEvaluator`)."""
    rates: dict[str, float] = {}
    for name in nx.lexicographical_topological_sort(app._graph):
        process = app.process(name)
        preds = app.predecessors(name)
        if process.rate_hz is not None:
            rates[name] = process.rate_hz
        elif preds:
            rates[name] = max(rates[p] for p in preds)
        else:
            rates[name] = 0.0
    return rates


# ----------------------------------------------------------------------
# Task graphs
# ----------------------------------------------------------------------
def verify_task_graph(tg: TaskGraph) -> list[Diagnostic]:
    """Structural checks on a task DAG (RC102, RC107)."""
    diags: list[Diagnostic] = []
    if len(tg) > 1 and not nx.is_weakly_connected(tg._graph):
        n_parts = nx.number_weakly_connected_components(tg._graph)
        diags.append(make_diagnostic(
            "RC102",
            f"task graph splits into {n_parts} disconnected fragments",
            _subject("taskgraph", tg.name),
        ))
    for dep in tg.dependencies:
        if dep.bits == 0:
            diags.append(make_diagnostic(
                "RC107",
                f"dependency {dep.src}->{dep.dst} carries zero bits "
                f"but still serializes the two tasks",
                _subject("taskgraph", tg.name,
                         f"dep:{dep.src}->{dep.dst}"),
            ))
    return diags


# ----------------------------------------------------------------------
# Platforms (unit/dimension sanity)
# ----------------------------------------------------------------------
def verify_platform(platform: Platform) -> list[Diagnostic]:
    """Power/energy parameter sanity on a platform (RC130..RC132)."""
    diags: list[Diagnostic] = []
    name = platform.name
    for pe in platform.pes:
        diags.extend(_verify_pe(name, pe))
    inter = platform.interconnect
    energy_per_bit = getattr(inter, "energy_per_bit", None)
    if (energy_per_bit is not None
            and energy_per_bit > _MAX_ENERGY_PER_BIT):
        diags.append(make_diagnostic(
            "RC131",
            f"interconnect energy_per_bit={energy_per_bit:g} J/bit is "
            f"implausibly high (typical values are pJ/bit)",
            _subject("platform", name, "interconnect"),
        ))
    return diags


def _verify_pe(platform_name: str,
               pe: ProcessingElement) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    where = _subject("platform", platform_name, f"pe:{pe.name}")
    active = pe.active_power if pe.active_power is not None else 0.0
    if pe.idle_power > active > 0:
        diags.append(make_diagnostic(
            "RC130",
            f"PE {pe.name!r} idle power {pe.idle_power:g} W exceeds "
            f"active power {active:g} W",
            where,
        ))
    lo, hi = _FREQUENCY_RANGE
    if not lo <= pe.frequency <= hi:
        diags.append(make_diagnostic(
            "RC131",
            f"PE {pe.name!r} frequency {pe.frequency:g} Hz lies "
            f"outside the plausible range [{lo:g}, {hi:g}]",
            where,
        ))
    if active > _MAX_ACTIVE_POWER:
        diags.append(make_diagnostic(
            "RC131",
            f"PE {pe.name!r} active power {active:g} W is implausibly "
            f"high for embedded silicon",
            where,
        ))
    if pe.dvfs is not None:
        freqs = [point.frequency for point in pe.dvfs.points]
        f_lo, f_hi = min(freqs), max(freqs)
        if not f_lo <= pe.frequency <= f_hi:
            diags.append(make_diagnostic(
                "RC132",
                f"PE {pe.name!r} nominal frequency {pe.frequency:g} "
                f"Hz is outside its DVFS range [{f_lo:g}, {f_hi:g}]",
                where,
            ))
    return diags


# ----------------------------------------------------------------------
# Mappings
# ----------------------------------------------------------------------
def verify_mapping(
    app: ApplicationGraph | TaskGraph,
    platform: Platform,
    mapping: Mapping,
) -> list[Diagnostic]:
    """Binding checks for one mapping (RC110..RC115)."""
    diags: list[Diagnostic] = []
    if isinstance(app, ApplicationGraph):
        expected = {p.name for p in app.processes}
        model_kind, model_name = "app", app.name
    else:
        expected = {t.name for t in app.tasks}
        model_kind, model_name = "taskgraph", app.name
    assignment = mapping.assignment
    where = _subject(model_kind, model_name, "mapping")

    for missing in sorted(expected - set(assignment)):
        diags.append(make_diagnostic(
            "RC110", f"process {missing!r} has no PE binding", where,
        ))
    for unknown in sorted(set(assignment) - expected):
        diags.append(make_diagnostic(
            "RC111",
            f"mapping binds {unknown!r}, which the model does not "
            f"define",
            where,
        ))
    for process, pe_name in assignment.items():
        if pe_name not in platform:
            diags.append(make_diagnostic(
                "RC112",
                f"process {process!r} is mapped to unknown PE "
                f"{pe_name!r}",
                where,
            ))
        elif not platform.pe(pe_name).available:
            diags.append(make_diagnostic(
                "RC113",
                f"process {process!r} is mapped to out-of-service PE "
                f"{pe_name!r}",
                where,
            ))

    for pe in platform.pes:
        if pe.kind is not PEKind.ASIC:
            continue
        hosted = [p for p in mapping.processes_on(pe.name)
                  if p in expected]
        if len(hosted) > 1:
            diags.append(make_diagnostic(
                "RC114",
                f"ASIC {pe.name!r} hosts {len(hosted)} processes "
                f"({', '.join(sorted(hosted))})",
                where,
            ))

    # RC115 only makes sense when every endpoint resolves.
    if not any(d.rule in ("RC110", "RC112") for d in diags):
        seen: set[tuple[str, str]] = set()
        for src_pe, dst_pe, _bits in mapping.remote_edges(app):
            link = (src_pe, dst_pe)
            if link in seen:
                continue
            seen.add(link)
            if not platform.interconnect.link_available(src_pe, dst_pe):
                diags.append(make_diagnostic(
                    "RC115",
                    f"mapping routes traffic over out-of-service link "
                    f"{src_pe}->{dst_pe}",
                    where,
                ))
    return diags


# ----------------------------------------------------------------------
# Feasibility (needs graph + platform, optionally mapping/QoS)
# ----------------------------------------------------------------------
def _utilization_diags(
    app: ApplicationGraph | TaskGraph,
    platform: Platform,
    mapping: Mapping,
) -> list[Diagnostic]:
    """RC120: aggregate offered load per PE must stay below 1."""
    utils: dict[str, float] = {pe.name: 0.0 for pe in platform.pes}
    if isinstance(app, ApplicationGraph):
        rates = _activation_rates(app)
        demands = [
            (p.name, rates[p.name] * p.cycles_mean)
            for p in app.processes
        ]
        kind, name = "app", app.name
    else:
        if not app.period:
            return []
        demands = [(t.name, t.cycles / app.period) for t in app.tasks]
        kind, name = "taskgraph", app.name
    for process, cycles_per_second in demands:
        pe_name = mapping.assignment.get(process)
        if pe_name is None or pe_name not in platform:
            continue
        utils[pe_name] += cycles_per_second / platform.pe(
            pe_name).frequency
    diags = []
    for pe_name, util in sorted(utils.items()):
        if util > 1.0:
            diags.append(make_diagnostic(
                "RC120",
                f"PE {pe_name!r} offered load {util:.3f} exceeds 1",
                _subject(kind, name, f"mapping/pe:{pe_name}"),
            ))
    return diags


def _bandwidth_diags(
    app: ApplicationGraph | TaskGraph,
    platform: Platform,
    mapping: Mapping,
) -> list[Diagnostic]:
    """RC122: sustained traffic must fit the interconnect bandwidth."""
    inter = platform.interconnect
    bandwidth = getattr(inter, "bandwidth", None)
    if bandwidth is None:
        return []
    if isinstance(app, ApplicationGraph):
        rates = _activation_rates(app)
        edge_bps = [
            (c.src, c.dst, rates[c.src] * c.bits_per_token)
            for c in app.channels
        ]
        kind, name = "app", app.name
    else:
        if not app.period:
            return []
        edge_bps = [
            (d.src, d.dst, d.bits / app.period)
            for d in app.dependencies
        ]
        kind, name = "taskgraph", app.name

    per_link: dict[tuple[str, str], float] = {}
    for src, dst, bps in edge_bps:
        src_pe = mapping.assignment.get(src)
        dst_pe = mapping.assignment.get(dst)
        if (src_pe is None or dst_pe is None or src_pe == dst_pe
                or bps <= 0):
            continue
        key = ("<shared>", "<shared>") if inter.is_shared() else (
            src_pe, dst_pe)
        per_link[key] = per_link.get(key, 0.0) + bps

    diags = []
    for (src_pe, dst_pe), bps in sorted(per_link.items()):
        if bps > bandwidth:
            medium = ("shared interconnect" if src_pe == "<shared>"
                      else f"link {src_pe}->{dst_pe}")
            diags.append(make_diagnostic(
                "RC122",
                f"{medium} carries {bps:g} bit/s, above its "
                f"{bandwidth:g} bit/s capacity",
                _subject(kind, name, "mapping"),
            ))
    return diags


def _fastest_frequency(platform: Platform) -> float:
    return max((pe.frequency for pe in platform.pes), default=0.0)


def _deadline_diags_taskgraph(
    tg: TaskGraph, platform: Platform
) -> list[Diagnostic]:
    """RC121 for task graphs: critical-path cycles into each task,
    executed on the fastest PE with free communication, is a hard
    lower bound on its completion time."""
    f_max = _fastest_frequency(platform)
    if f_max <= 0:
        return []
    longest: dict[str, float] = {}
    diags = []
    for name in tg.topological_order():
        incoming = [longest[p] for p in tg.predecessors(name)]
        task = tg.task(name)
        longest[name] = task.cycles + (max(incoming) if incoming
                                       else 0.0)
        if task.deadline is None:
            continue
        best_case = longest[name] / f_max
        if best_case > task.deadline:
            diags.append(make_diagnostic(
                "RC121",
                f"task {name!r} deadline {task.deadline:g} s is below "
                f"its best-case completion {best_case:g} s "
                f"({longest[name]:g} cycles at {f_max:g} Hz)",
                _subject("taskgraph", tg.name, f"task:{name}"),
            ))
    return diags


def _deadline_diags_application(
    app: ApplicationGraph, platform: Platform, qos: QoSSpec
) -> list[Diagnostic]:
    """RC121 for process networks: the QoS latency bound must exceed
    the best-case critical path (joins wait for all inputs)."""
    if qos.max_latency is None:
        return []
    f_max = _fastest_frequency(platform)
    if f_max <= 0 or not app.is_acyclic():
        return []
    longest: dict[str, float] = {}
    for name in nx.lexicographical_topological_sort(app._graph):
        incoming = [longest[p] for p in app.predecessors(name)]
        longest[name] = app.process(name).cycles_mean + (
            max(incoming) if incoming else 0.0)
    worst_sink = max(
        (longest[s.name] for s in app.sinks()), default=0.0
    )
    best_case = worst_sink / f_max
    if best_case > qos.max_latency:
        return [make_diagnostic(
            "RC121",
            f"QoS max_latency {qos.max_latency:g} s is below the "
            f"best-case end-to-end latency {best_case:g} s "
            f"({worst_sink:g} cycles at {f_max:g} Hz)",
            _subject("app", app.name, "qos"),
        )]
    return []


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def verify_design(
    application: ApplicationGraph | None = None,
    task_graph: TaskGraph | None = None,
    platform: Platform | None = None,
    mapping: Mapping | None = None,
    qos: QoSSpec | None = None,
) -> list[Diagnostic]:
    """Verify whatever slice of a design is provided.

    Single objects get their structural/sanity checks; combinations
    unlock the cross-cutting rules (mapping validity needs graph +
    platform + mapping, feasibility additionally uses QoS bounds and
    deadlines).
    """
    diags: list[Diagnostic] = []
    graph: ApplicationGraph | TaskGraph | None = None
    if application is not None:
        diags.extend(verify_application(application))
        graph = application
    if task_graph is not None:
        diags.extend(verify_task_graph(task_graph))
        graph = task_graph if graph is None else graph
    if platform is not None:
        diags.extend(verify_platform(platform))
    if graph is not None and platform is not None:
        if mapping is not None:
            diags.extend(verify_mapping(graph, platform, mapping))
            diags.extend(_utilization_diags(graph, platform, mapping))
            diags.extend(_bandwidth_diags(graph, platform, mapping))
        if task_graph is not None:
            diags.extend(_deadline_diags_taskgraph(task_graph,
                                                   platform))
        if application is not None and qos is not None:
            diags.extend(_deadline_diags_application(
                application, platform, qos))
    return diags


def verify_model(obj: object) -> list[Diagnostic]:
    """Dispatch on a single model object (or a kwargs dict bundle).

    Accepts an :class:`ApplicationGraph`, :class:`TaskGraph` or
    :class:`Platform` directly, or a dict of :func:`verify_design`
    keyword arguments for cross-object checks — the shape the
    experiment ``models=`` hook returns.
    """
    if isinstance(obj, ApplicationGraph):
        return verify_application(obj)
    if isinstance(obj, TaskGraph):
        return verify_task_graph(obj)
    if isinstance(obj, Platform):
        return verify_platform(obj)
    if isinstance(obj, dict):
        return verify_design(**obj)
    raise TypeError(
        f"cannot verify object of type {type(obj).__name__}; expected "
        f"ApplicationGraph, TaskGraph, Platform or a verify_design "
        f"kwargs dict"
    )
