"""Resilience policy combinators for DES processes.

These are the reusable building blocks consumers wrap around fallible
operations, all built on the kernel's interrupt primitive:

* :func:`with_timeout` — bound the wait for any event by a deadline;
* :func:`retry_with_backoff` — re-attempt a fallible operation with an
  exponential-backoff schedule and a bounded retry budget (the ARQ
  pattern of §2.1, "how much retransmission can be afforded");
* :class:`Watchdog` — interrupt a process whose heartbeats stop;
* :class:`CircuitBreaker` — fast-fail callers while a dependency is
  broken, probing it again after a cool-down.

All combinators are generator functions used with ``yield from`` inside
model processes::

    def worker(env, store):
        item = yield from with_timeout(env, store.get(), deadline=2.0)
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable

from repro.des.events import Event, Interrupt, Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.des.environment import Environment

__all__ = [
    "PolicyError",
    "DeadlineExceeded",
    "RetryBudgetExceeded",
    "CircuitOpen",
    "WatchdogTimeout",
    "with_timeout",
    "retry_with_backoff",
    "Watchdog",
    "CircuitBreaker",
]


class PolicyError(Exception):
    """Base class of all resilience-policy failures."""


class DeadlineExceeded(PolicyError):
    """An operation outlived its :func:`with_timeout` deadline."""

    @property
    def deadline(self) -> float:
        return self.args[0]


class RetryBudgetExceeded(PolicyError):
    """Every attempt of :func:`retry_with_backoff` failed."""


class CircuitOpen(PolicyError):
    """A :class:`CircuitBreaker` rejected the call without trying."""


class WatchdogTimeout:
    """Interrupt cause delivered by a starved :class:`Watchdog`."""

    def __init__(self, name: str, silent_for: float):
        self.name = name
        self.silent_for = silent_for

    def __repr__(self) -> str:
        return (f"WatchdogTimeout({self.name!r}, "
                f"silent_for={self.silent_for:g})")


def _defuse_late_failure(event: Event) -> None:
    """Callback that keeps an abandoned event's failure from crashing
    the run — nobody is listening for it anymore."""
    if event._ok is False:
        event._defused = True


def _abandon(event: Event) -> None:
    """Detach from an event we no longer care about.

    Cancellable waiters (store puts/gets, resource requests) are
    withdrawn so they cannot consume items or grants on our behalf;
    live processes are interrupted; any late failure is defused.
    """
    cancel = getattr(event, "cancel", None)
    if cancel is not None:
        cancel()
    if isinstance(event, Process) and event.is_alive:
        event.interrupt(DeadlineExceeded(math.nan))
    if event.callbacks is not None:
        event.callbacks.append(_defuse_late_failure)


def with_timeout(env: "Environment", event: Event, deadline: float):
    """Wait for ``event`` at most ``deadline`` time units.

    Returns the event's value if it wins the race; raises
    :class:`DeadlineExceeded` otherwise, after abandoning the laggard
    (cancelling store/resource waiters, interrupting processes) so the
    timed-out operation cannot complete behind the caller's back.
    Failures of ``event`` before the deadline propagate unchanged.
    """
    if deadline < 0:
        raise ValueError("deadline must be non-negative")
    timer = env.timeout(deadline)
    already_triggered = event.triggered
    results = yield env.any_of([event, timer])
    if event in results:
        return results[event]
    if not already_triggered and event.triggered and event._ok:
        # Dead heat: the event succeeded at the very deadline instant
        # but the timer processed first.  Its effect (an item taken, a
        # grant consumed) already happened, so hand the value over
        # rather than dropping it on the floor.  Born-triggered events
        # (timeouts still scheduled in the future) don't qualify.
        return event.value
    _abandon(event)
    raise DeadlineExceeded(deadline)


def retry_with_backoff(
    env: "Environment",
    factory: Callable[[], Any],
    retries: int = 3,
    base_delay: float = 0.01,
    factor: float = 2.0,
    max_delay: float = math.inf,
    timeout: float | None = None,
    retry_on: tuple = (Exception,),
    rng=None,
    jitter: float = 0.0,
    on_retry: Callable[[int, float, BaseException], None] | None = None,
):
    """Attempt a fallible operation up to ``1 + retries`` times.

    ``factory`` produces a *fresh* attempt each call: an event, a
    process, or a plain generator (wrapped into a process).  Failed
    attempts wait ``base_delay * factor**k`` (clamped to ``max_delay``,
    optionally jittered by ``rng``) before the next try; ``timeout``
    additionally bounds each attempt via :func:`with_timeout`.

    Raises :class:`RetryBudgetExceeded` (chaining the last error) once
    the budget is spent.  :class:`~repro.des.events.Interrupt` is never
    treated as a retryable failure unless listed in ``retry_on``
    explicitly — a fault injector killing *this* process must win.
    """
    if retries < 0:
        raise ValueError("retries must be non-negative")
    if base_delay < 0 or factor < 1.0:
        raise ValueError("need base_delay >= 0 and factor >= 1")
    attempt = 0
    while True:
        target = factory()
        if not isinstance(target, Event):
            target = env.process(target)
        try:
            if timeout is not None:
                result = yield from with_timeout(env, target, timeout)
            else:
                result = yield target
            return result
        except retry_on as error:
            if isinstance(error, Interrupt) and \
                    not _explicitly_retryable(Interrupt, retry_on):
                raise
            attempt += 1
            if attempt > retries:
                raise RetryBudgetExceeded(
                    f"gave up after {attempt} attempts"
                ) from error
            delay = min(base_delay * factor ** (attempt - 1), max_delay)
            if jitter > 0 and rng is not None:
                delay *= 1.0 + jitter * float(rng.random())
            if on_retry is not None:
                on_retry(attempt, delay, error)
            if delay > 0:
                yield env.timeout(delay)


def _explicitly_retryable(exc_type: type, retry_on: tuple) -> bool:
    return any(cls is exc_type for cls in retry_on)


class Watchdog:
    """Interrupts a victim (or fires a callback) when heartbeats stop.

    The watched process calls :meth:`beat` at every sign of life; if no
    beat arrives within ``timeout``, the watchdog delivers a
    :class:`WatchdogTimeout` interrupt to ``victim`` and/or invokes
    ``on_starve``, then re-arms (continuous supervision) unless
    ``one_shot``.

    Examples
    --------
    >>> from repro.des import Environment, Interrupt
    >>> env = Environment()
    >>> log = []
    >>> def worker(env):
    ...     try:
    ...         yield env.timeout(100)   # hung
    ...     except Interrupt as interrupt:
    ...         log.append((env.now, type(interrupt.cause).__name__))
    >>> victim = env.process(worker(env))
    >>> dog = Watchdog(env, timeout=3.0, victim=victim)
    >>> env.run(until=10)
    >>> log
    [(3.0, 'WatchdogTimeout')]
    """

    def __init__(
        self,
        env: "Environment",
        timeout: float,
        victim: Process | None = None,
        on_starve: Callable[["Watchdog"], None] | None = None,
        name: str = "watchdog",
        one_shot: bool = False,
    ):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.env = env
        self.timeout = timeout
        self.victim = victim
        self.on_starve = on_starve
        self.name = name
        self.one_shot = one_shot
        self.n_starvations = 0
        self._last_beat = env.now
        self._stopped = False
        self.process = env.process(self._run())

    def beat(self) -> None:
        """Record a sign of life, pushing the deadline out."""
        self._last_beat = self.env.now

    def stop(self) -> None:
        """Retire the watchdog."""
        self._stopped = True
        if self.process.is_alive:
            self.process.interrupt("watchdog-stopped")

    def _run(self):
        while not self._stopped:
            deadline = self._last_beat + self.timeout
            delay = deadline - self.env.now
            if delay > 0:
                try:
                    yield self.env.timeout(delay)
                except Interrupt:
                    return  # stop()
                continue  # a beat may have moved the deadline
            self.n_starvations += 1
            silent = self.env.now - self._last_beat
            cause = WatchdogTimeout(self.name, silent)
            if self.victim is not None and self.victim.is_alive:
                self.victim.interrupt(cause)
            if self.on_starve is not None:
                self.on_starve(self)
            if self.one_shot:
                return
            self._last_beat = self.env.now  # re-arm


class CircuitBreaker:
    """Fast-fails calls to a broken dependency; probes after cool-down.

    States: *closed* (calls pass), *open* (calls rejected with
    :class:`CircuitOpen` until ``reset_timeout`` elapses), *half-open*
    (one trial call allowed; success closes the circuit, failure
    re-opens it).

    Use as a combinator::

        result = yield from breaker.call(lambda: store.get())
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        env: "Environment",
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        call_timeout: float | None = None,
        name: str = "breaker",
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.env = env
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.call_timeout = call_timeout
        self.name = name
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._open_until = -math.inf
        self.n_calls = 0
        self.n_failures = 0
        self.n_rejected = 0
        self.n_state_changes = 0

    @property
    def state(self) -> str:
        """Current breaker state (resolves open → half-open lazily)."""
        if self._state == self.OPEN and self.env.now >= self._open_until:
            return self.HALF_OPEN
        return self._state

    def call(self, factory: Callable[[], Any]):
        """Run one guarded attempt of ``factory`` (see class docs)."""
        state = self.state
        if state == self.OPEN:
            self.n_rejected += 1
            raise CircuitOpen(
                f"{self.name} open for another "
                f"{self._open_until - self.env.now:g}"
            )
        if state == self.HALF_OPEN:
            self._transition(self.HALF_OPEN)
        self.n_calls += 1
        target = factory()
        if not isinstance(target, Event):
            target = self.env.process(target)
        try:
            if self.call_timeout is not None:
                result = yield from with_timeout(
                    self.env, target, self.call_timeout
                )
            else:
                result = yield target
        except Interrupt:
            raise  # a fault aimed at the caller is not a call failure
        except Exception:
            self._record_failure()
            raise
        self._record_success()
        return result

    def _transition(self, state: str) -> None:
        if state != self._state:
            self._state = state
            self.n_state_changes += 1

    def _record_success(self) -> None:
        self._consecutive_failures = 0
        self._transition(self.CLOSED)

    def _record_failure(self) -> None:
        self.n_failures += 1
        self._consecutive_failures += 1
        if (self._state == self.HALF_OPEN
                or self._consecutive_failures >= self.failure_threshold):
            self._transition(self.OPEN)
            self._open_until = self.env.now + self.reset_timeout

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.name!r}, state={self.state}, "
                f"failures={self.n_failures}/{self.n_calls})")
