"""In-simulation fault injection and resilience policies (§5).

The paper's ambient-multimedia thesis is that distributed multimedia
systems must "operate with limited resources and failing parts".  This
package makes failure a first-class *simulation event* rather than an
offline trace:

* :mod:`repro.resilience.faults` — :class:`FaultInjector` processes
  that break and repair live model components (DES resources and
  stores, stream channels, platform PEs and links, running processes)
  on sampled fail/repair schedules;
* :mod:`repro.resilience.policies` — process combinators
  (:func:`retry_with_backoff`, :func:`with_timeout`,
  :class:`Watchdog`, :class:`CircuitBreaker`) that let model code
  survive those faults gracefully;
* :mod:`repro.resilience.harness` — QoS-vs-fault-rate sweeps over the
  existing experiments, quantifying *graceful degradation* (the paper's
  redundancy/adaptation claim) against crash-or-stall baselines.
"""

from repro.resilience.faults import (
    BreakableLink,
    BreakablePE,
    BreakableResource,
    BreakableStore,
    CallbackBreakable,
    FailureModel,
    FaultEvent,
    FaultInjector,
    ProcessKill,
    all_down_intervals,
    any_up_fraction,
    session_fault_plan,
)
from repro.resilience.harness import (
    DegradationCurve,
    QosPoint,
    ambient_qos,
    arq_streaming_qos,
    fault_rate_sweep,
    format_report,
    manet_qos,
    resilience_report,
    stream_pipeline_qos,
)
from repro.resilience.policies import (
    CircuitBreaker,
    CircuitOpen,
    DeadlineExceeded,
    PolicyError,
    RetryBudgetExceeded,
    Watchdog,
    WatchdogTimeout,
    retry_with_backoff,
    with_timeout,
)

__all__ = [
    # faults
    "FailureModel",
    "FaultEvent",
    "FaultInjector",
    "ProcessKill",
    "BreakableResource",
    "BreakableStore",
    "BreakablePE",
    "BreakableLink",
    "CallbackBreakable",
    "session_fault_plan",
    "all_down_intervals",
    "any_up_fraction",
    # policies
    "PolicyError",
    "DeadlineExceeded",
    "RetryBudgetExceeded",
    "CircuitOpen",
    "WatchdogTimeout",
    "with_timeout",
    "retry_with_backoff",
    "Watchdog",
    "CircuitBreaker",
    # harness
    "QosPoint",
    "DegradationCurve",
    "fault_rate_sweep",
    "stream_pipeline_qos",
    "arq_streaming_qos",
    "manet_qos",
    "ambient_qos",
    "resilience_report",
    "format_report",
]
