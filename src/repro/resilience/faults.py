"""In-simulation fault injectors.

A :class:`FaultInjector` is a DES process that repeatedly samples a
time-to-failure from a :class:`FailureModel`, breaks its target, then
(unless the failure is permanent) samples a time-to-repair and mends
it.  Targets are *breakables*: anything exposing ``fail(cause)`` and
``repair()``.  Adapters are provided for every shareable component of
the repository — DES :class:`~repro.des.resources.Resource` and
:class:`~repro.des.stores.Store`, platform
:class:`~repro.core.architecture.ProcessingElement` and interconnect
links, and plain processes (killed via
:meth:`~repro.des.events.Process.interrupt`).

Everything is seeded through :func:`repro.utils.rng.spawn_rng`, so a
fault-injected run is exactly as reproducible as a fault-free one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.des.events import Interrupt
from repro.utils.rng import spawn_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.architecture import Interconnect, ProcessingElement
    from repro.des.environment import Environment
    from repro.des.events import Process
    from repro.des.resources import Resource
    from repro.des.stores import Store

__all__ = [
    "FailureModel",
    "FaultEvent",
    "FaultInjector",
    "ProcessKill",
    "BreakableResource",
    "BreakableStore",
    "BreakablePE",
    "BreakableLink",
    "CallbackBreakable",
    "session_fault_plan",
    "all_down_intervals",
    "any_up_fraction",
]


@dataclass(frozen=True)
class FailureModel:
    """Fail/repair dynamics of one component.

    Parameters
    ----------
    mtbf:
        Mean time between failures (model time units).
    mttr:
        Mean time to repair; ``None`` = permanent failure (crash),
        ``0`` = transient glitch (fail and repair at the same instant,
        e.g. a dropped packet or a bit flip).
    shape:
        Weibull shape parameter for the time-to-failure; ``1.0`` is the
        exponential (memoryless) special case, ``>1`` models wear-out,
        ``<1`` infant mortality.  Repairs are always exponential.
    """

    mtbf: float
    mttr: float | None = None
    shape: float = 1.0

    def __post_init__(self) -> None:
        if self.mtbf <= 0:
            raise ValueError("mtbf must be positive")
        if self.mttr is not None and self.mttr < 0:
            raise ValueError("mttr must be non-negative when given")
        if self.shape <= 0:
            raise ValueError("shape must be positive")

    @classmethod
    def exponential(cls, mtbf: float,
                    mttr: float | None = None) -> "FailureModel":
        """Memoryless fail/repair — the classical availability model."""
        return cls(mtbf=mtbf, mttr=mttr, shape=1.0)

    @classmethod
    def weibull(cls, mtbf: float, shape: float,
                mttr: float | None = None) -> "FailureModel":
        """Weibull time-to-failure with the given *mean* and shape."""
        return cls(mtbf=mtbf, mttr=mttr, shape=shape)

    @classmethod
    def crash(cls, mtbf: float) -> "FailureModel":
        """One permanent failure, exponentially distributed."""
        return cls(mtbf=mtbf, mttr=None, shape=1.0)

    @classmethod
    def transient(cls, rate: float) -> "FailureModel":
        """Instantaneous glitches at ``rate`` per time unit."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        return cls(mtbf=1.0 / rate, mttr=0.0, shape=1.0)

    @property
    def permanent(self) -> bool:
        """True when failures are never repaired."""
        return self.mttr is None

    def steady_availability(self) -> float:
        """Long-run availability MTBF/(MTBF+MTTR); 0 if permanent."""
        if self.mttr is None:
            return 0.0
        return self.mtbf / (self.mtbf + self.mttr)

    def sample_ttf(self, rng) -> float:
        """Draw one time-to-failure."""
        if self.shape == 1.0:
            return float(rng.exponential(self.mtbf))
        # Weibull with mean mtbf: scale = mtbf / Gamma(1 + 1/shape).
        scale = self.mtbf / math.gamma(1.0 + 1.0 / self.shape)
        return float(scale * rng.weibull(self.shape))

    def sample_ttr(self, rng) -> float:
        """Draw one time-to-repair (0 for transient glitches)."""
        if self.mttr is None:
            raise RuntimeError("permanent failures are never repaired")
        if self.mttr == 0:
            return 0.0
        return float(rng.exponential(self.mttr))


class FaultEvent:
    """The cause object delivered with an injected fault.

    Carried as the :class:`~repro.des.events.Interrupt` cause when the
    target is a process, and passed to ``fail`` otherwise, so handlers
    can distinguish injected faults from other interrupts.
    """

    def __init__(self, injector: str, index: int, time: float,
                 permanent: bool = False):
        self.injector = injector
        self.index = index
        self.time = time
        self.permanent = permanent

    def __repr__(self) -> str:
        kind = "permanent" if self.permanent else "recoverable"
        return (f"FaultEvent({self.injector!r} #{self.index} "
                f"at t={self.time:g}, {kind})")


class CallbackBreakable:
    """Adapter turning two callables into a breakable target."""

    def __init__(self, on_fail: Callable[[Any], None] | None = None,
                 on_repair: Callable[[], None] | None = None):
        self._on_fail = on_fail
        self._on_repair = on_repair

    def fail(self, cause: Any = None) -> None:
        if self._on_fail is not None:
            self._on_fail(cause)

    def repair(self) -> None:
        if self._on_repair is not None:
            self._on_repair()


class ProcessKill:
    """Breakable that interrupts a victim process on every fault.

    The victim decides — by catching the Interrupt or not — whether the
    fault is survivable; ``repair`` is a no-op because a process that
    died cannot be restarted from outside.
    """

    def __init__(self, victim: "Process"):
        self.victim = victim

    def fail(self, cause: Any = None) -> None:
        if self.victim.is_alive:
            self.victim.interrupt(cause)

    def repair(self) -> None:
        pass


class BreakableResource:
    """Breakable that takes a DES resource out of service."""

    def __init__(self, resource: "Resource"):
        self.resource = resource

    def fail(self, cause: Any = None) -> None:
        self.resource.set_out_of_service(True)

    def repair(self) -> None:
        self.resource.set_out_of_service(False)


class BreakableStore:
    """Breakable that takes a DES store/queue out of service."""

    def __init__(self, store: "Store"):
        self.store = store

    def fail(self, cause: Any = None) -> None:
        self.store.set_out_of_service(True)

    def repair(self) -> None:
        self.store.set_out_of_service(False)


class BreakablePE:
    """Breakable flipping a processing element's availability."""

    def __init__(self, pe: "ProcessingElement"):
        self.pe = pe

    def fail(self, cause: Any = None) -> None:
        self.pe.fail(cause)

    def repair(self) -> None:
        self.pe.repair()


class BreakableLink:
    """Breakable for one interconnect link (``src`` → ``dst``)."""

    def __init__(self, interconnect: "Interconnect", src: str, dst: str):
        self.interconnect = interconnect
        self.src = src
        self.dst = dst

    def fail(self, cause: Any = None) -> None:
        self.interconnect.fail_link(self.src, self.dst)

    def repair(self) -> None:
        self.interconnect.repair_link(self.src, self.dst)


class FaultInjector:
    """A DES process breaking and repairing one target.

    Parameters
    ----------
    env:
        Simulation environment.
    target:
        Any breakable (``fail(cause)``/``repair()``); ``None`` records
        fault windows without touching anything (useful when the
        windows themselves are the model, as in the ambient studies).
    model:
        Fail/repair dynamics.
    seed, name:
        Reproducible RNG stream identity; two injectors with distinct
        names draw independent streams from the same master seed.
    start_delay:
        Grace period before the first time-to-failure is sampled.

    Attributes
    ----------
    windows:
        ``(down_at, up_at)`` pairs per completed outage; ``up_at`` is
        ``None`` for a permanent failure.
    n_failures:
        Number of faults injected so far.
    """

    def __init__(
        self,
        env: "Environment",
        target,
        model: FailureModel,
        seed: int = 0,
        name: str = "fault",
        start_delay: float = 0.0,
    ):
        if start_delay < 0:
            raise ValueError("start_delay must be non-negative")
        self.env = env
        self.target = target
        self.model = model
        self.name = name
        self.start_delay = start_delay
        self.windows: list[tuple[float, float | None]] = []
        self.n_failures = 0
        self._rng = spawn_rng(seed, f"fault-injector:{name}")
        self.process = env.process(self._run())

    @property
    def down(self) -> bool:
        """True while the target is inside an outage window."""
        return bool(self.windows) and self.windows[-1][1] is None

    def downtime(self, horizon: float) -> float:
        """Total outage time within ``[0, horizon]``."""
        total = 0.0
        for down_at, up_at in self.windows:
            if down_at >= horizon:
                break
            total += min(up_at if up_at is not None else horizon,
                         horizon) - down_at
        return total

    def availability(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the target was in service."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return 1.0 - self.downtime(horizon) / horizon

    def _run(self):
        try:
            if self.start_delay:
                yield self.env.timeout(self.start_delay)
            while True:
                yield self.env.timeout(
                    self.model.sample_ttf(self._rng)
                )
                self.n_failures += 1
                down_at = self.env.now
                cause = FaultEvent(self.name, self.n_failures, down_at,
                                   permanent=self.model.permanent)
                self.windows.append((down_at, None))
                if self.target is not None:
                    self.target.fail(cause)
                if self.model.permanent:
                    return
                ttr = self.model.sample_ttr(self._rng)
                if ttr > 0:
                    yield self.env.timeout(ttr)
                self.windows[-1] = (down_at, self.env.now)
                if self.target is not None:
                    self.target.repair()
        except Interrupt:
            return  # stop(): retire quietly, target left as-is

    def stop(self) -> None:
        """Retire the injector (leaves the target as-is)."""
        if self.process.is_alive:
            self.process.interrupt("injector-stopped")

    def __repr__(self) -> str:
        return (f"FaultInjector({self.name!r}, failures="
                f"{self.n_failures})")


def all_down_intervals(
    down_windows: list[list[tuple[float, float | None]]],
    horizon: float,
) -> list[tuple[float, float]]:
    """Maximal sub-intervals of ``[0, horizon]`` during which *every*
    replica was simultaneously down.

    ``down_windows[i]`` is replica *i*'s outage list in
    :attr:`FaultInjector.windows` form (``up_at`` of ``None`` = still
    down).  Used by the live ambient study to turn per-node injector
    records into zone outage intervals.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if not down_windows:
        return []
    # Sweep: +1 when a replica goes down, -1 when it comes back; ties
    # sort repairs first, so zero-length overlaps never appear.
    edges: list[tuple[float, int]] = []
    for windows in down_windows:
        for down_at, up_at in windows:
            start = min(down_at, horizon)
            end = min(up_at if up_at is not None else horizon, horizon)
            if end > start:
                edges.append((start, +1))
                edges.append((end, -1))
    edges.sort()
    n_replicas = len(down_windows)
    intervals: list[tuple[float, float]] = []
    down_count = 0
    all_down_since = 0.0
    for time, delta in edges:
        if down_count == n_replicas and time > all_down_since:
            intervals.append((all_down_since, time))
        down_count += delta
        if down_count == n_replicas:
            all_down_since = time
    if down_count == n_replicas and horizon > all_down_since:
        intervals.append((all_down_since, horizon))  # pragma: no cover
    return intervals


def any_up_fraction(down_windows: list[list[tuple[float, float | None]]],
                    horizon: float) -> float:
    """Fraction of ``[0, horizon]`` during which at least one of the
    replicas was up (0.0 when there are no replicas at all)."""
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if not down_windows:
        return 0.0
    all_down = sum(
        end - start
        for start, end in all_down_intervals(down_windows, horizon)
    )
    return 1.0 - all_down / horizon


def session_fault_plan(
    n_nodes: int,
    n_sessions: int,
    model: FailureModel,
    seed: int = 0,
) -> dict[int, list[tuple[int, str]]]:
    """Session-indexed fault schedule for discrete-round simulations.

    The MANET lifetime experiment advances in *sessions* rather than
    continuous time; this samples each node's fail/repair trajectory in
    session units and returns ``{session: [(node_id, "fail"|"repair"),
    ...]}`` to be applied at the top of each round.
    """
    if n_nodes < 1 or n_sessions < 1:
        raise ValueError("need at least one node and session")
    plan: dict[int, list[tuple[int, str]]] = {}
    for node in range(n_nodes):
        rng = spawn_rng(seed, f"session-faults:{node}")
        t = 0.0
        while True:
            t += model.sample_ttf(rng)
            session = int(math.ceil(t))
            if session > n_sessions:
                break
            plan.setdefault(session, []).append((node, "fail"))
            if model.permanent:
                break
            t += model.sample_ttr(rng)
            session = int(math.ceil(t))
            if session > n_sessions:
                break
            plan.setdefault(session, []).append((node, "repair"))
    return plan
