"""QoS-vs-fault-rate sweeps over the repository's experiments.

The paper's systems claim is *graceful degradation*: a well-designed
distributed multimedia system loses quality smoothly as parts fail,
instead of falling off a cliff (crashing, stalling, or collapsing to
zero service).  This harness makes that claim measurable.  Each
``*_qos`` scenario runs one existing experiment — the Fig.1(a) stream
pipeline, the E8 FGS streaming session, the E9 MANET lifetime study,
the §5 ambient smart space — under injected faults at a given rate,
twice: once with the resilience mechanisms on (interrupt-aware
channels, ARQ with backoff, route repair, redundancy) and once with
the non-resilient baseline.  :func:`fault_rate_sweep` turns a scenario
into a :class:`DegradationCurve`, whose :meth:`~DegradationCurve.
is_graceful` check encodes "monotone-ish and cliff-free".

Every scenario is seeded end to end, so sweeps are bit-reproducible.
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = [
    "QosPoint",
    "DegradationCurve",
    "fault_rate_sweep",
    "stream_pipeline_qos",
    "arq_streaming_qos",
    "manet_qos",
    "ambient_qos",
    "resilience_report",
    "format_report",
]


@dataclass(frozen=True)
class QosPoint:
    """One (fault rate, quality) sample of a degradation curve.

    ``qos`` is normalized service quality in ``[0, 1]`` — 1.0 is the
    fault-free service level, 0.0 is no service.  ``detail`` carries
    scenario-specific diagnostics (crash flags, drop counts, ...).
    """

    fault_rate: float
    qos: float
    detail: dict = field(default_factory=dict)


@dataclass
class DegradationCurve:
    """QoS as a function of fault rate, under one configuration."""

    label: str
    points: list[QosPoint] = field(default_factory=list)

    @property
    def fault_rates(self) -> list[float]:
        return [point.fault_rate for point in self.points]

    @property
    def qos_values(self) -> list[float]:
        return [point.qos for point in self.points]

    def is_monotone(self, tolerance: float = 0.05) -> bool:
        """True when QoS never *rises* by more than ``tolerance`` as the
        fault rate increases (sampling noise allowance)."""
        qos = self.qos_values
        return all(b <= a + tolerance for a, b in zip(qos, qos[1:]))

    def max_step_drop(self) -> float:
        """Largest QoS loss between adjacent fault rates."""
        qos = self.qos_values
        if len(qos) < 2:
            return 0.0
        return max(a - b for a, b in zip(qos, qos[1:]))

    def min_qos(self) -> float:
        """Worst quality anywhere on the curve."""
        return min(self.qos_values) if self.points else math.nan

    def is_graceful(self, cliff: float = 0.5,
                    tolerance: float = 0.05) -> bool:
        """The paper's criterion: QoS decays monotonically (within
        ``tolerance``) and no single fault-rate step loses more than
        ``cliff`` of full service."""
        return self.is_monotone(tolerance) and \
            self.max_step_drop() <= cliff


def fault_rate_sweep(
    scenario: Callable[[float], QosPoint],
    fault_rates: Iterable[float],
    label: str,
) -> DegradationCurve:
    """Evaluate ``scenario`` at each fault rate, collecting a curve."""
    rates = list(fault_rates)
    if any(rate < 0 for rate in rates):
        raise ValueError("fault rates must be non-negative")
    return DegradationCurve(
        label=label,
        points=[scenario(rate) for rate in rates],
    )


# ----------------------------------------------------------------------
# Scenario adapters: one per subsystem, resilient and baseline flavors.
# ----------------------------------------------------------------------

def stream_pipeline_qos(
    fault_rate: float,
    resilient: bool = True,
    failover: bool = False,
    horizon: float = 20.0,
    mttr: float = 0.5,
    seed: int = 0,
) -> QosPoint:
    """Fig.1(a) stream under channel faults at ``fault_rate`` per
    second.

    QoS is displayed frames over the fault-free expectation.  The
    baseline channel crashes at the first fault (the report records the
    crash); the resilient channel rides outages out, shedding buffered
    B-frames on recovery; ``failover`` adds a half-bandwidth backup
    path.
    """
    from repro.streams import (
        Channel,
        FailoverChannel,
        MpegSource,
        Sink,
        StreamPipeline,
    )

    from repro.resilience.faults import FailureModel

    fps = 25.0
    source = MpegSource(fps=fps, i_frame_bits=100_000.0, seed=seed)
    channel = Channel(
        bandwidth=4e6, seed=seed,
        resilient=resilient, shed_enhancement=resilient,
    )
    if failover:
        backup = Channel(bandwidth=2e6, seed=seed + 1, name="backup",
                         resilient=True)
        channel = FailoverChannel(primary=channel, backup=backup)
    pipeline = StreamPipeline(
        source=source,
        channel=channel,
        sink=Sink(display_rate_hz=fps),
    )
    faults = None
    if fault_rate > 0:
        faults = FailureModel.exponential(mtbf=1.0 / fault_rate,
                                          mttr=mttr)
    report = pipeline.run(horizon, faults=faults, fault_seed=seed)
    expected = fps * horizon
    qos = min(report.displayed / expected, 1.0)
    return QosPoint(fault_rate=fault_rate, qos=qos, detail={
        "displayed": report.displayed,
        "emitted": report.emitted,
        "crashed": report.crashed,
        "crash_time": report.crash_time,
        "n_faults": report.n_faults,
        "outages": report.channel.outages,
        "fault_drops": report.channel.fault_drops,
        "degraded_drops": report.channel.degraded_drops,
    })


def arq_streaming_qos(
    fault_rate: float,
    resilient: bool = True,
    n_frames: int = 400,
    rtt: float = 0.004,
    seed: int = 0,
) -> QosPoint:
    """E8 FGS streaming over a lossy link; ``fault_rate`` is the
    per-frame loss probability.

    QoS is mean PSNR relative to the same session over a perfect link.
    The resilient client retransmits under exponential backoff within
    each frame deadline; the baseline shows every loss as a skipped
    frame.
    """
    from repro.streaming import (
        ArqPolicy,
        FeedbackServer,
        LossyLink,
        run_session,
    )

    if not 0.0 <= fault_rate <= 1.0:
        raise ValueError("fault_rate is a loss probability here")
    reference = run_session(FeedbackServer(), n_frames=n_frames,
                            seed=seed)
    link = LossyLink(p_loss=fault_rate, rtt=rtt, seed=seed)
    arq = ArqPolicy(max_retries=3, initial_timeout=rtt,
                    backoff_factor=2.0) if resilient else None
    report = run_session(FeedbackServer(), n_frames=n_frames,
                         seed=seed, link=link, arq=arq)
    qos = (report.mean_psnr / reference.mean_psnr
           if reference.mean_psnr > 0 else math.nan)
    return QosPoint(fault_rate=fault_rate, qos=min(qos, 1.0), detail={
        "mean_psnr": report.mean_psnr,
        "reference_psnr": reference.mean_psnr,
        "delivery_ratio": report.delivery_ratio,
        "retransmissions": report.retransmissions,
    })


def manet_qos(
    fault_rate: float,
    resilient: bool = True,
    n_nodes: int = 30,
    n_sessions: int = 2_000,
    mttr_sessions: float = 100.0,
    battery: float = 8.0,
    bits_per_session: float = 8_000.0,
    seed: int = 0,
) -> QosPoint:
    """E9 MANET sessions with nodes crashing at ``fault_rate`` per
    session.

    QoS is sessions delivered over sessions *requested* — a network
    that dies before the workload ends scores low, even if it delivered
    everything while it lasted.  The resilient network re-discovers
    routes around dead nodes; the baseline transmits over stale cached
    routes, burning energy into broken paths.
    """
    from repro.manet import random_network
    from repro.manet.lifetime import simulate_lifetime
    from repro.manet.routing import MinimumPowerRouting

    from repro.resilience.faults import FailureModel, session_fault_plan

    plan = None
    if fault_rate > 0:
        model = FailureModel.exponential(mtbf=1.0 / fault_rate,
                                         mttr=mttr_sessions)
        plan = session_fault_plan(n_nodes, n_sessions, model, seed=seed)
    network = random_network(n_nodes=n_nodes, seed=seed,
                             battery=battery)
    result = simulate_lifetime(
        MinimumPowerRouting(), network,
        n_sessions=n_sessions, bits_per_session=bits_per_session,
        seed=seed + 1, reroute_every=50, traffic_pairs=8,
        fault_plan=plan, route_repair=resilient,
        # Min-power routing never reads drain predictions; skip the
        # per-session EWMA maintenance.
        track_drain=False,
    )
    return QosPoint(fault_rate=fault_rate,
                    qos=result.delivered / n_sessions,
                    detail={
                        "delivery_ratio": result.delivery_ratio,
                        "delivered": result.delivered,
                        "failed": result.failed,
                        "stale_route_failures":
                            result.stale_route_failures,
                        "n_fault_events": result.n_fault_events,
                        "lifetime_sessions": result.lifetime_sessions,
                    })


def ambient_qos(
    fault_rate: float,
    resilient: bool = True,
    n_zones: int = 4,
    horizon: float = 5_000.0,
    mttr_slots: float = 100.0,
    seed: int = 0,
) -> QosPoint:
    """§5 smart space with live injected node faults at ``fault_rate``
    per slot.

    QoS is measured service availability (all zones covered).
    Resilience here is redundancy: two nodes per zone against the
    baseline's one.
    """
    from repro.ambient import FaultProcess, SmartSpace
    from repro.ambient.smart_space import live_redundancy_study

    if fault_rate <= 0:
        raise ValueError("ambient scenario needs a positive fault rate")
    space = SmartSpace(
        n_zones=n_zones,
        nodes_per_zone=1,
        faults=FaultProcess(mtbf_slots=1.0 / fault_rate,
                            mttr_slots=mttr_slots),
    )
    level = 2 if resilient else 1
    (result,) = live_redundancy_study(
        space, redundancy_levels=(level,), horizon=horizon, seed=seed
    )
    return QosPoint(fault_rate=fault_rate,
                    qos=result.measured_availability, detail={
                        "analytical": result.analytical_availability,
                        "n_faults": result.n_faults,
                        "nodes_per_zone": level,
                    })


# ----------------------------------------------------------------------
# The headline report
# ----------------------------------------------------------------------

_SCENARIOS: dict[str, Callable[..., QosPoint]] = {
    "stream": stream_pipeline_qos,
    "arq-streaming": arq_streaming_qos,
    "manet": manet_qos,
    "ambient": ambient_qos,
}

_DEFAULT_RATES: dict[str, tuple[float, ...]] = {
    "stream": (0.0, 0.05, 0.1, 0.2, 0.4),
    "arq-streaming": (0.0, 0.05, 0.1, 0.2, 0.4),
    "manet": (0.0, 0.001, 0.002, 0.005, 0.01),
    "ambient": (0.0005, 0.001, 0.002, 0.005),
}


def resilience_report(
    scenarios: Iterable[str] = ("arq-streaming", "manet"),
    fault_rates: dict[str, Iterable[float]] | None = None,
    seed: int = 0,
    **scenario_kwargs,
) -> dict[str, dict[str, DegradationCurve]]:
    """Resilient-vs-baseline degradation curves for chosen scenarios.

    Returns ``{scenario: {"resilient": curve, "baseline": curve}}``.
    Extra keyword arguments are forwarded to each scenario function
    that accepts them (useful to shrink ``horizon``/``n_frames``/
    ``n_sessions`` for smoke runs); a kwarg foreign to a scenario is
    simply not passed to it, so mixed-scenario reports can be tuned
    per scenario in one call.
    """
    rates = dict(_DEFAULT_RATES)
    if fault_rates:
        rates.update({k: tuple(v) for k, v in fault_rates.items()})
    report: dict[str, dict[str, DegradationCurve]] = {}
    for name in scenarios:
        if name not in _SCENARIOS:
            raise ValueError(f"unknown scenario {name!r}; "
                             f"choose from {sorted(_SCENARIOS)}")
        scenario = _SCENARIOS[name]
        accepted = set(inspect.signature(scenario).parameters)
        kwargs = {key: value for key, value in scenario_kwargs.items()
                  if key in accepted}
        report[name] = {
            mode: fault_rate_sweep(
                lambda rate, _r=resilient: scenario(
                    rate, resilient=_r, seed=seed, **kwargs
                ),
                rates[name],
                label=f"{name}/{mode}",
            )
            for mode, resilient in (("resilient", True),
                                    ("baseline", False))
        }
    return report


def format_report(
    report: dict[str, dict[str, DegradationCurve]],
) -> str:
    """Render a report as aligned QoS-vs-fault-rate text tables."""
    lines: list[str] = []
    for name, curves in report.items():
        lines.append(f"== {name} ==")
        rates = curves["resilient"].fault_rates
        lines.append(f"{'fault rate':>12} {'resilient':>10} "
                     f"{'baseline':>10}")
        for i, rate in enumerate(rates):
            res = curves["resilient"].points[i].qos
            base = curves["baseline"].points[i].qos
            lines.append(f"{rate:>12.4g} {res:>10.3f} {base:>10.3f}")
        lines.append("")
    return "\n".join(lines)
