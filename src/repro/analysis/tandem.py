"""Tandem queueing networks: where exact analysis explodes (§2.2).

"although timed extensions for most modern formalisms have been
proposed (e.g. Petri Nets, process algebras), they suffer from
excessive complexity and their application to solving real examples
remains problematic at best."

A pipeline of k finite buffers (the Fig.1(b) decoder shape) has an
exact CTMC with (K+1)^k states — tractable for toy instances, hopeless
for real ones.  :class:`TandemQueueModel` builds and solves that exact
chain; :func:`simulate_tandem` runs the same system on the DES kernel;
:func:`state_space_study` measures both as the pipeline deepens,
reproducing the scaling wall the paper describes.
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass

import numpy as np

from repro.analysis.ctmc import CTMC
from repro.des import Environment, FiniteQueue
from repro.utils.rng import spawn_rng

__all__ = ["TandemMetrics", "TandemQueueModel", "simulate_tandem",
           "state_space_study"]


@dataclass
class TandemMetrics:
    """Steady-state metrics of a tandem of finite queues."""

    throughput: float
    loss_rate: float
    mean_occupancies: list[float]
    n_states: int | None = None
    wall_seconds: float = 0.0


class TandemQueueModel:
    """Exact CTMC of an M/M/1/K tandem with loss at the first stage.

    Stage i has one exponential server (rate ``service_rates[i]``) and
    ``capacities[i]`` total slots.  Arrivals blocked at stage 0 are
    lost; a finished stage-i customer blocked by a full stage i+1
    *waits in place* (blocking-after-service), which is the behaviour
    of the DES pipeline with back-pressure.

    State: tuple of per-stage customer counts.
    """

    def __init__(self, arrival_rate: float,
                 service_rates: list[float],
                 capacities: list[int]):
        if arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        if len(service_rates) != len(capacities) or not service_rates:
            raise ValueError("need matching non-empty stage lists")
        if any(rate <= 0 for rate in service_rates):
            raise ValueError("service rates must be positive")
        if any(capacity < 1 for capacity in capacities):
            raise ValueError("capacities must be >= 1")
        self.arrival_rate = arrival_rate
        self.service_rates = list(service_rates)
        self.capacities = list(capacities)
        self.k = len(service_rates)
        self._states = list(itertools.product(
            *[range(c + 1) for c in self.capacities]
        ))
        self._index = {s: i for i, s in enumerate(self._states)}

    @property
    def n_states(self) -> int:
        """Size of the exact state space: prod(K_i + 1)."""
        return len(self._states)

    def _build_generator(self) -> np.ndarray:
        n = self.n_states
        Q = np.zeros((n, n))
        for state in self._states:
            i = self._index[state]
            # Arrival into stage 0 (lost when full).
            if state[0] < self.capacities[0]:
                target = (state[0] + 1,) + state[1:]
                Q[i, self._index[target]] += self.arrival_rate
            # Service completions: stage j -> j+1 (or departure).
            for j in range(self.k):
                if state[j] == 0:
                    continue
                if j < self.k - 1 and state[j + 1] >= \
                        self.capacities[j + 1]:
                    continue  # blocked after service: wait in place
                moved = list(state)
                moved[j] -= 1
                if j < self.k - 1:
                    moved[j + 1] += 1
                Q[i, self._index[tuple(moved)]] += \
                    self.service_rates[j]
        np.fill_diagonal(Q, 0.0)
        np.fill_diagonal(Q, -Q.sum(axis=1))
        return Q

    def solve(self) -> TandemMetrics:
        """Build and solve the exact chain; returns the metrics."""
        start = time.perf_counter()
        chain = CTMC(self._build_generator())
        pi = chain.steady_state()
        elapsed = time.perf_counter() - start

        p_block = sum(
            p for state, p in zip(self._states, pi)
            if state[0] == self.capacities[0]
        )
        throughput = self.arrival_rate * (1.0 - p_block)
        occupancies = [
            float(sum(state[j] * p
                      for state, p in zip(self._states, pi)))
            for j in range(self.k)
        ]
        return TandemMetrics(
            throughput=throughput,
            loss_rate=p_block,
            mean_occupancies=occupancies,
            n_states=self.n_states,
            wall_seconds=elapsed,
        )


def simulate_tandem(
    arrival_rate: float,
    service_rates: list[float],
    capacities: list[int],
    horizon: float = 2_000.0,
    warmup: float = 100.0,
    seed: int = 0,
) -> TandemMetrics:
    """The same tandem on the DES kernel (cost grows ~linearly in k)."""
    if len(service_rates) != len(capacities) or not service_rates:
        raise ValueError("need matching non-empty stage lists")
    start = time.perf_counter()
    env = Environment()
    queues = [FiniteQueue(env, capacity=c) for c in capacities]
    arrivals_rng = spawn_rng(seed, "tandem:arrivals")
    served = [0]
    offered = [0]

    def arrivals():
        while True:
            yield env.timeout(float(
                arrivals_rng.exponential(1.0 / arrival_rate)
            ))
            if env.now > warmup:
                offered[0] += 1
                if not queues[0].offer(env.now):
                    pass  # lost
            else:
                queues[0].offer(env.now)

    def server(stage: int):
        rng = spawn_rng(seed, f"tandem:server{stage}")
        rate = service_rates[stage]
        while True:
            item = yield queues[stage].get()
            yield env.timeout(float(rng.exponential(1.0 / rate)))
            if stage < len(queues) - 1:
                # Back-pressure: block until downstream has room.
                yield queues[stage + 1].put(item)
            elif env.now > warmup:
                served[0] += 1

    env.process(arrivals())
    for stage in range(len(queues)):
        env.process(server(stage))
    env.run(until=horizon)

    span = horizon - warmup
    lost = queues[0].n_dropped  # includes warmup drops; approximate
    loss_rate = (
        1.0 - served[0] / offered[0] if offered[0] else math.nan
    )
    occupancies = [
        q.occupancy.mean(at_time=horizon) for q in queues
    ]
    return TandemMetrics(
        throughput=served[0] / span,
        loss_rate=max(loss_rate, 0.0),
        mean_occupancies=occupancies,
        n_states=None,
        wall_seconds=time.perf_counter() - start,
    )


def state_space_study(
    max_stages: int = 5,
    capacity: int = 4,
    arrival_rate: float = 8.0,
    service_rate: float = 10.0,
) -> list[dict]:
    """Exact-analysis cost vs pipeline depth (the §2.2 scaling wall).

    Returns one row per depth: state count, analysis seconds, DES
    seconds, and the throughput both methods report.
    """
    if max_stages < 1:
        raise ValueError("max_stages must be >= 1")
    rows = []
    for k in range(1, max_stages + 1):
        # DES stage capacity counts the waiting room only; its server
        # holds one more customer.  The exact chain counts everything,
        # so it gets capacity+1 per stage for a like-for-like system.
        model = TandemQueueModel(
            arrival_rate, [service_rate] * k, [capacity + 1] * k
        )
        exact = model.solve()
        sim = simulate_tandem(
            arrival_rate, [service_rate] * k, [capacity] * k,
            horizon=500.0, warmup=50.0,
        )
        rows.append({
            "stages": k,
            "states": model.n_states,
            "exact_seconds": exact.wall_seconds,
            "sim_seconds": sim.wall_seconds,
            "exact_throughput": exact.throughput,
            "sim_throughput": sim.throughput,
        })
    return rows
