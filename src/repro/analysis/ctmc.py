"""Continuous-time Markov chains.

The CTMC is the workhorse behind the analytical stream models (§2.2):
queue levels, channel states and power states all map onto small CTMCs
whose stationary distribution yields throughput, loss and power in closed
form — no simulation needed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CTMC", "birth_death_rates"]


class CTMC:
    """A finite continuous-time Markov chain.

    Parameters
    ----------
    rate_matrix:
        Generator matrix ``Q``: ``Q[i, j]`` (i≠j) is the transition rate
        from ``i`` to ``j``; diagonals must make rows sum to zero (they
        are recomputed and verified).
    labels:
        Optional state labels.

    Examples
    --------
    An M/M/1/2 queue with arrival rate 1 and service rate 2:

    >>> chain = CTMC([[-1, 1, 0], [2, -3, 1], [0, 2, -2]])
    >>> pi = chain.steady_state()
    >>> [round(float(p), 4) for p in pi]
    [0.5714, 0.2857, 0.1429]
    """

    def __init__(self, rate_matrix, labels: list[str] | None = None):
        Q = np.asarray(rate_matrix, dtype=float)
        if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
            raise ValueError("rate matrix must be square")
        off_diag = Q - np.diag(np.diag(Q))
        if (off_diag < -1e-12).any():
            raise ValueError("negative off-diagonal rate")
        if not np.allclose(Q.sum(axis=1), 0.0, atol=1e-8):
            raise ValueError("rows of the generator must sum to 0")
        self.Q = Q
        self.n = Q.shape[0]
        if labels is not None:
            if len(labels) != self.n:
                raise ValueError("label count mismatch")
            self.labels = list(labels)
        else:
            self.labels = [str(i) for i in range(self.n)]

    @classmethod
    def from_rates(
        cls, rates: dict[tuple[int, int], float], n_states: int,
        labels: list[str] | None = None,
    ) -> "CTMC":
        """Build a CTMC from a sparse ``{(i, j): rate}`` description."""
        Q = np.zeros((n_states, n_states))
        for (i, j), rate in rates.items():
            if i == j:
                raise ValueError("self-transitions are not allowed")
            if rate < 0:
                raise ValueError("negative rate")
            Q[i, j] = rate
        np.fill_diagonal(Q, 0.0)
        np.fill_diagonal(Q, -Q.sum(axis=1))
        return cls(Q, labels)

    def steady_state(self) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi Q = 0``.

        Solved directly by replacing one balance equation with the
        normalization constraint (O(n³) but with a small constant);
        falls back to least squares for numerically degenerate chains.
        """
        A = self.Q.T.copy()
        A[-1, :] = 1.0
        b = np.zeros(self.n)
        b[-1] = 1.0
        try:
            pi = np.linalg.solve(A, b)
        except np.linalg.LinAlgError:
            A_ls = np.vstack([self.Q.T, np.ones(self.n)])
            b_ls = np.zeros(self.n + 1)
            b_ls[-1] = 1.0
            pi, *_ = np.linalg.lstsq(A_ls, b_ls, rcond=None)
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0:
            raise np.linalg.LinAlgError("steady-state solve failed")
        return pi / total

    def transient(self, distribution, t: float,
                  steps: int = 256) -> np.ndarray:
        """Distribution after ``t`` time units via uniformization.

        ``steps`` bounds the Poisson series truncation.
        """
        if t < 0:
            raise ValueError("t must be non-negative")
        pi0 = np.asarray(distribution, dtype=float)
        if pi0.shape != (self.n,):
            raise ValueError("distribution size mismatch")
        lam = max(-np.diag(self.Q).min(), 1e-12)
        P = np.eye(self.n) + self.Q / lam
        weight = np.exp(-lam * t)
        term = pi0.copy()
        result = weight * term
        for k in range(1, steps):
            term = term @ P
            weight *= lam * t / k
            result = result + weight * term
            if weight < 1e-16 and k > lam * t:
                break
        return result / result.sum()

    def expected_value(self, values) -> float:
        """Steady-state expectation of a per-state value vector."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.n,):
            raise ValueError("value vector size mismatch")
        return float(self.steady_state() @ values)

    def __repr__(self) -> str:
        return f"CTMC(n={self.n})"


def birth_death_rates(
    birth: list[float], death: list[float]
) -> dict[tuple[int, int], float]:
    """Sparse rates of a birth–death chain with ``len(birth)+1`` states.

    ``birth[k]`` is the rate k→k+1, ``death[k]`` the rate k+1→k.  The
    backbone of every queueing model in this package.
    """
    if len(birth) != len(death):
        raise ValueError("birth and death rate lists differ in length")
    rates: dict[tuple[int, int], float] = {}
    for k, rate in enumerate(birth):
        rates[(k, k + 1)] = rate
    for k, rate in enumerate(death):
        rates[(k + 1, k)] = rate
    return rates
