"""Simulation vs. analysis head-to-head (experiment E10).

"Due to its conceptual simplicity, simulation is the method of choice in
most practical situations. The only problem ... is the huge volume of
data that is typically needed ... the advantage of having available
analytical tools that can quickly derive power/performance estimates
becomes evident." (§2.2)

This module runs the *same* M/M/1/K system both ways — as a DES model on
the kernel and as a closed-form birth–death chain — and reports accuracy
and wall-clock cost side by side.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.analysis.queueing import MM1K
from repro.des import Environment, FiniteQueue
from repro.utils.rng import spawn_rng
from repro.utils.stats import SummaryStats

__all__ = ["MM1KSimResult", "simulate_mm1k", "ComparisonRow",
           "compare_mm1k"]


@dataclass
class MM1KSimResult:
    """Measured steady-state metrics of a simulated M/M/1/K queue."""

    mean_queue_length: float
    blocking_probability: float
    throughput: float
    mean_waiting_time: float
    wall_seconds: float
    n_arrivals: int


def simulate_mm1k(
    arrival_rate: float,
    service_rate: float,
    capacity: int,
    horizon: float,
    warmup: float = 0.0,
    seed: int = 0,
) -> MM1KSimResult:
    """Simulate an M/M/1/K queue on the DES kernel.

    Packets arriving to a full buffer (K slots including the one in
    service) are dropped; the single server drains the buffer with
    exponential service times.
    """
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if horizon <= 0 or not 0 <= warmup < horizon:
        raise ValueError("bad horizon/warmup")

    start = time.perf_counter()
    env = Environment()
    # K slots *including* the customer in service: the waiting room holds
    # capacity items, and admission checks waiting + in-service < K.
    queue = FiniteQueue(env, capacity=capacity)
    arrivals_rng = spawn_rng(seed, "mm1k:arrivals")
    service_rng = spawn_rng(seed, "mm1k:service")

    counters = {"arrived": 0, "blocked": 0, "served": 0}
    in_service = [0]
    waits = SummaryStats()

    def admit() -> bool:
        if queue.level + in_service[0] >= capacity:
            return False
        return queue.offer(env.now)

    def arrivals():
        while True:
            yield env.timeout(float(
                arrivals_rng.exponential(1.0 / arrival_rate)
            ))
            if env.now <= warmup:
                admit()
                continue
            counters["arrived"] += 1
            if not admit():
                counters["blocked"] += 1

    def server():
        while True:
            arrived_at = yield queue.get()
            in_service[0] = 1
            yield env.timeout(float(
                service_rng.exponential(1.0 / service_rate)
            ))
            in_service[0] = 0
            if env.now > warmup:
                counters["served"] += 1
                waits.add(env.now - arrived_at)

    env.process(arrivals())
    env.process(server())
    env.run(until=horizon)

    span = horizon - warmup
    arrived = counters["arrived"]
    blocking = counters["blocked"] / arrived if arrived else math.nan
    # Time-average occupancy from the built-in occupancy monitor plus the
    # in-service customer is approximated by Little's law instead, which
    # is exact in steady state: L = throughput * W.
    throughput = counters["served"] / span
    mean_wait = waits.mean
    return MM1KSimResult(
        mean_queue_length=throughput * mean_wait,
        blocking_probability=blocking,
        throughput=throughput,
        mean_waiting_time=mean_wait,
        wall_seconds=time.perf_counter() - start,
        n_arrivals=arrived,
    )


@dataclass
class ComparisonRow:
    """One sim-vs-analysis line of the E10 table."""

    metric: str
    simulated: float
    analytical: float

    @property
    def relative_error(self) -> float:
        """|sim − ana| / |ana| (NaN when the reference is ~0)."""
        if abs(self.analytical) < 1e-12:
            return math.nan
        return abs(self.simulated - self.analytical) / abs(
            self.analytical
        )


def compare_mm1k(
    arrival_rate: float,
    service_rate: float,
    capacity: int,
    horizon: float = 2_000.0,
    warmup: float = 100.0,
    seed: int = 0,
) -> tuple[list[ComparisonRow], float, float]:
    """Run both evaluations; return (rows, sim_seconds, ana_seconds)."""
    sim = simulate_mm1k(
        arrival_rate, service_rate, capacity, horizon, warmup, seed
    )
    start = time.perf_counter()
    model = MM1K(arrival_rate, service_rate, capacity)
    analytical = {
        "mean_queue_length": model.mean_queue_length(),
        "blocking_probability": model.blocking_probability(),
        "throughput": model.throughput(),
        "mean_waiting_time": model.mean_waiting_time(),
    }
    ana_seconds = time.perf_counter() - start
    rows = [
        ComparisonRow("mean_queue_length", sim.mean_queue_length,
                      analytical["mean_queue_length"]),
        ComparisonRow("blocking_probability", sim.blocking_probability,
                      analytical["blocking_probability"]),
        ComparisonRow("throughput", sim.throughput,
                      analytical["throughput"]),
        ComparisonRow("mean_waiting_time", sim.mean_waiting_time,
                      analytical["mean_waiting_time"]),
    ]
    return rows, sim.wall_seconds, ana_seconds
