"""Discrete-time Markov chains.

"The objective of any analysis technique is the computation of the
stationary probability distribution for a distributed system consisting
of several processes that operate and interact concurrently" (§2.2, [7]).
This module supplies the DTMC primitive: steady-state solution, transient
evolution, and basic structural checks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DTMC"]


class DTMC:
    """A finite discrete-time Markov chain.

    Parameters
    ----------
    transition_matrix:
        Row-stochastic matrix ``P`` with ``P[i, j]`` the probability of
        moving from state ``i`` to state ``j`` in one step.
    labels:
        Optional state labels (defaults to indices).

    Examples
    --------
    >>> chain = DTMC([[0.9, 0.1], [0.5, 0.5]])
    >>> pi = chain.steady_state()
    >>> [round(float(p), 4) for p in pi]
    [0.8333, 0.1667]
    """

    def __init__(self, transition_matrix, labels: list[str] | None = None):
        P = np.asarray(transition_matrix, dtype=float)
        if P.ndim != 2 or P.shape[0] != P.shape[1]:
            raise ValueError("transition matrix must be square")
        if (P < -1e-12).any():
            raise ValueError("negative transition probability")
        row_sums = P.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-9):
            raise ValueError("rows must sum to 1")
        self.P = P
        self.n = P.shape[0]
        if labels is not None:
            if len(labels) != self.n:
                raise ValueError("label count mismatch")
            self.labels = list(labels)
        else:
            self.labels = [str(i) for i in range(self.n)]

    def index(self, label: str) -> int:
        """State index of ``label``."""
        return self.labels.index(label)

    def step(self, distribution, n_steps: int = 1) -> np.ndarray:
        """Evolve a distribution ``n_steps`` forward."""
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        pi = np.asarray(distribution, dtype=float)
        if pi.shape != (self.n,):
            raise ValueError("distribution size mismatch")
        if not np.isclose(pi.sum(), 1.0):
            raise ValueError("distribution must sum to 1")
        for _ in range(n_steps):
            pi = pi @ self.P
        return pi

    def steady_state(self) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi P = pi``.

        Solved directly with the normalization constraint replacing one
        balance equation (least-squares fallback for degenerate
        matrices).  For reducible chains this returns one stationary
        distribution; call :meth:`is_irreducible` when uniqueness
        matters.
        """
        A = (self.P.T - np.eye(self.n)).copy()
        A[-1, :] = 1.0
        b = np.zeros(self.n)
        b[-1] = 1.0
        try:
            pi = np.linalg.solve(A, b)
        except np.linalg.LinAlgError:
            A_ls = np.vstack([self.P.T - np.eye(self.n),
                              np.ones(self.n)])
            b_ls = np.zeros(self.n + 1)
            b_ls[-1] = 1.0
            pi, *_ = np.linalg.lstsq(A_ls, b_ls, rcond=None)
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0:
            raise np.linalg.LinAlgError("steady-state solve failed")
        return pi / total

    def is_irreducible(self) -> bool:
        """True when every state reaches every other state."""
        reach = (self.P > 1e-15).astype(bool)
        closure = reach.copy()
        for _ in range(self.n):
            closure = closure | (closure @ reach)
        return bool(closure.all())

    def expected_hitting_times(self, target: int) -> np.ndarray:
        """Expected steps to first reach state ``target`` from each state.

        ``h[target] = 0``; solves the standard first-passage system.
        """
        if not 0 <= target < self.n:
            raise ValueError("target out of range")
        others = [i for i in range(self.n) if i != target]
        Q = self.P[np.ix_(others, others)]
        h_others = np.linalg.solve(
            np.eye(len(others)) - Q, np.ones(len(others))
        )
        h = np.zeros(self.n)
        for value, i in zip(h_others, others):
            h[i] = value
        return h

    def simulate(self, n_steps: int,
                 rng: np.random.Generator | None = None,
                 start: int = 0, *, seed: int | None = None
                 ) -> np.ndarray:
        """Sample a trajectory of state indices of length ``n_steps``.

        Pass either an explicit ``rng`` (callers composing a
        hierarchical seeding scheme) or a plain ``seed=`` — the
        standard spelling across the repository; seeding draws the
        generator through :func:`repro.utils.rng.spawn_rng`.
        """
        if n_steps < 0:
            raise ValueError("n_steps must be non-negative")
        if rng is None:
            from repro.utils.rng import spawn_rng
            rng = spawn_rng(0 if seed is None else seed, "dtmc")
        elif seed is not None:
            raise TypeError("pass either rng or seed, not both")
        states = np.empty(n_steps, dtype=int)
        current = start
        cumulative = self.P.cumsum(axis=1)
        draws = rng.random(n_steps)
        for t in range(n_steps):
            current = int(np.searchsorted(cumulative[current], draws[t]))
            states[t] = current
        return states

    def __repr__(self) -> str:
        return f"DTMC(n={self.n})"
