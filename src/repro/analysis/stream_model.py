"""Analytical model of the Fig.1(a) stream.

"Once the steady-state probability distribution is determined, different
performance measures such as throughput, response time, power
consumption, etc. can be easily derived" (§2.1).  This module builds that
pipeline: the Rx-buffer of the generic stream is a birth–death CTMC whose
arrival rate is the source rate thinned by the channel loss, and whose
stationary distribution yields every Fig.1(a) metric in closed form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.ctmc import CTMC, birth_death_rates

__all__ = ["StreamModelResult", "AnalyticalStreamModel"]


@dataclass
class StreamModelResult:
    """Closed-form stream metrics (analytical twin of StreamReport)."""

    throughput: float
    loss_rate: float
    mean_rx_occupancy: float
    mean_latency: float
    power: float


class AnalyticalStreamModel:
    """CTMC model of Source → Channel(loss) → Rx-buffer → Sink.

    Parameters
    ----------
    source_rate:
        Packet emission rate λ (packets/s), modeled Poisson.
    channel_loss:
        Probability a packet dies on the channel (thins arrivals).
    service_rate:
        Sink consumption rate μ (packets/s), modeled exponential.
    rx_capacity:
        Rx-buffer slots; arrivals finding it full are dropped.
    packet_bits:
        Mean packet size (for energy accounting).
    tx_energy_per_bit, rx_energy_per_bit:
        Transceiver energy figures.

    Examples
    --------
    >>> model = AnalyticalStreamModel(
    ...     source_rate=40.0, channel_loss=0.1,
    ...     service_rate=50.0, rx_capacity=8,
    ... )
    >>> result = model.solve()
    >>> result.loss_rate > 0.1   # channel loss plus a little blocking
    True
    """

    def __init__(
        self,
        source_rate: float,
        channel_loss: float,
        service_rate: float,
        rx_capacity: int,
        packet_bits: float = 8_000.0,
        tx_energy_per_bit: float = 0.0,
        rx_energy_per_bit: float = 0.0,
    ):
        if source_rate <= 0 or service_rate <= 0:
            raise ValueError("rates must be positive")
        if not 0.0 <= channel_loss < 1.0:
            raise ValueError("channel_loss must be in [0, 1)")
        if rx_capacity < 1:
            raise ValueError("rx_capacity must be >= 1")
        self.source_rate = source_rate
        self.channel_loss = channel_loss
        self.service_rate = service_rate
        self.rx_capacity = rx_capacity
        self.packet_bits = packet_bits
        self.tx_energy_per_bit = tx_energy_per_bit
        self.rx_energy_per_bit = rx_energy_per_bit

    def effective_arrival_rate(self) -> float:
        """Rate of packets surviving the channel."""
        return self.source_rate * (1.0 - self.channel_loss)

    def build_ctmc(self) -> CTMC:
        """Birth–death CTMC of the Rx-buffer occupancy."""
        lam = self.effective_arrival_rate()
        k = self.rx_capacity
        rates = birth_death_rates(
            birth=[lam] * k, death=[self.service_rate] * k
        )
        return CTMC.from_rates(rates, n_states=k + 1)

    def solve(self) -> StreamModelResult:
        """Stationary metrics of the stream."""
        chain = self.build_ctmc()
        pi = chain.steady_state()
        lam = self.effective_arrival_rate()
        blocking = float(pi[-1])
        accepted = lam * (1 - blocking)
        occupancy = float(pi @ np.arange(self.rx_capacity + 1))
        # Loss: channel deaths plus buffer blocking of survivors.
        loss = self.channel_loss + (1 - self.channel_loss) * blocking
        latency = occupancy / accepted if accepted > 0 else math.nan
        power = (
            self.source_rate * self.packet_bits * self.tx_energy_per_bit
            + accepted * self.packet_bits * self.rx_energy_per_bit
        )
        return StreamModelResult(
            throughput=accepted,
            loss_rate=loss,
            mean_rx_occupancy=occupancy,
            mean_latency=latency,
            power=power,
        )
