"""Closed-form queueing results used across the reproduction.

M/M/1, M/M/1/K and M/G/1 (Pollaczek–Khinchine) formulas — the
"theoretical assumptions (for instance, exponentially distributed
arrival times) that are needed in order to make the analysis tractable"
(§2.2).  Experiment E2 shows exactly where these Markovian results stop
applying (self-similar input); experiment E10 shows where they shine
(orders-of-magnitude faster than simulation at equal accuracy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["MM1", "MM1K", "MG1", "erlang_b"]


@dataclass(frozen=True)
class MM1:
    """The M/M/1 queue: Poisson arrivals, exponential service, infinite
    room.

    Parameters
    ----------
    arrival_rate:
        λ, customers per second.
    service_rate:
        μ, customers per second; requires λ < μ for stability.
    """

    arrival_rate: float
    service_rate: float

    def __post_init__(self) -> None:
        if self.arrival_rate < 0 or self.service_rate <= 0:
            raise ValueError("rates must be positive")

    @property
    def utilization(self) -> float:
        """ρ = λ/μ."""
        return self.arrival_rate / self.service_rate

    def _require_stable(self) -> None:
        if self.utilization >= 1.0:
            raise ValueError(
                f"unstable queue (rho={self.utilization:.3f} >= 1)"
            )

    def mean_queue_length(self) -> float:
        """L = ρ/(1−ρ), customers in system."""
        self._require_stable()
        rho = self.utilization
        return rho / (1 - rho)

    def mean_waiting_time(self) -> float:
        """W = 1/(μ−λ), sojourn time in system (Little's law)."""
        self._require_stable()
        return 1.0 / (self.service_rate - self.arrival_rate)

    def mean_queueing_delay(self) -> float:
        """Wq = W − 1/μ, time spent waiting before service."""
        return self.mean_waiting_time() - 1.0 / self.service_rate

    def prob_n(self, n: int) -> float:
        """P[N = n] = (1−ρ)ρⁿ."""
        if n < 0:
            raise ValueError("n must be non-negative")
        self._require_stable()
        rho = self.utilization
        return (1 - rho) * rho**n

    def prob_exceeds(self, n: int) -> float:
        """P[N > n] = ρ^(n+1) — exponential tail, the Markovian
        signature that self-similar input destroys (E2)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        self._require_stable()
        return self.utilization ** (n + 1)


@dataclass(frozen=True)
class MM1K:
    """The M/M/1/K queue: K total slots (waiting + in service).

    The analytical twin of :class:`repro.des.FiniteQueue` behind a
    single server — the paper's "finite-length queues".
    """

    arrival_rate: float
    service_rate: float
    capacity: int

    def __post_init__(self) -> None:
        if self.arrival_rate < 0 or self.service_rate <= 0:
            raise ValueError("rates must be positive")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")

    @property
    def utilization(self) -> float:
        """Offered load a = λ/μ (may exceed 1; the queue still works)."""
        return self.arrival_rate / self.service_rate

    def state_probabilities(self) -> np.ndarray:
        """P[N = n] for n = 0..K."""
        a = self.utilization
        k = self.capacity
        if abs(a - 1.0) < 1e-12:
            return np.full(k + 1, 1.0 / (k + 1))
        weights = a ** np.arange(k + 1)
        return weights * (1 - a) / (1 - a ** (k + 1))

    def blocking_probability(self) -> float:
        """P[N = K]: fraction of arrivals dropped."""
        return float(self.state_probabilities()[-1])

    def mean_queue_length(self) -> float:
        """E[N], customers in system."""
        probs = self.state_probabilities()
        return float(probs @ np.arange(self.capacity + 1))

    def throughput(self) -> float:
        """Accepted rate λ(1 − P_block)."""
        return self.arrival_rate * (1 - self.blocking_probability())

    def mean_waiting_time(self) -> float:
        """Mean sojourn of *accepted* customers (Little on the
        effective arrival rate)."""
        thr = self.throughput()
        if thr <= 0:
            return math.nan
        return self.mean_queue_length() / thr


@dataclass(frozen=True)
class MG1:
    """The M/G/1 queue via Pollaczek–Khinchine.

    Parameters
    ----------
    arrival_rate:
        λ.
    service_mean:
        E[S], seconds.
    service_scv:
        Squared coefficient of variation of service time
        (1 = exponential, 0 = deterministic).
    """

    arrival_rate: float
    service_mean: float
    service_scv: float = 1.0

    def __post_init__(self) -> None:
        if self.arrival_rate < 0 or self.service_mean <= 0:
            raise ValueError("rates must be positive")
        if self.service_scv < 0:
            raise ValueError("scv must be non-negative")

    @property
    def utilization(self) -> float:
        """ρ = λ E[S]."""
        return self.arrival_rate * self.service_mean

    def mean_waiting_time(self) -> float:
        """W = E[S] + λE[S²]/(2(1−ρ)) — grows linearly in the service
        SCV: burstier service, longer queues."""
        rho = self.utilization
        if rho >= 1.0:
            raise ValueError(f"unstable queue (rho={rho:.3f})")
        es2 = self.service_mean**2 * (1 + self.service_scv)
        return self.service_mean + self.arrival_rate * es2 / (
            2 * (1 - rho)
        )

    def mean_queue_length(self) -> float:
        """L = λW (Little)."""
        return self.arrival_rate * self.mean_waiting_time()


def erlang_b(offered_load: float, n_servers: int) -> float:
    """Erlang-B blocking for ``n_servers`` and offered load in erlangs.

    Computed with the numerically stable recurrence.
    """
    if offered_load < 0:
        raise ValueError("offered load must be non-negative")
    if n_servers < 0:
        raise ValueError("server count must be non-negative")
    b = 1.0
    for k in range(1, n_servers + 1):
        b = offered_load * b / (k + offered_load * b)
    return b
