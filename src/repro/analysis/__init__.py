"""Analytical engine (§2.2): Markov chains, queueing formulas and the
closed-form stream model, plus the sim-vs-analysis comparison harness."""

from repro.analysis.comparison import (
    ComparisonRow,
    MM1KSimResult,
    compare_mm1k,
    simulate_mm1k,
)
from repro.analysis.ctmc import CTMC, birth_death_rates
from repro.analysis.dtmc import DTMC
from repro.analysis.queueing import MG1, MM1, MM1K, erlang_b
from repro.analysis.stream_model import (
    AnalyticalStreamModel,
    StreamModelResult,
)
from repro.analysis.tandem import (
    TandemMetrics,
    TandemQueueModel,
    simulate_tandem,
    state_space_study,
)

__all__ = [
    "DTMC",
    "CTMC",
    "birth_death_rates",
    "MM1",
    "MM1K",
    "MG1",
    "erlang_b",
    "AnalyticalStreamModel",
    "StreamModelResult",
    "MM1KSimResult",
    "simulate_mm1k",
    "ComparisonRow",
    "compare_mm1k",
    "TandemMetrics",
    "TandemQueueModel",
    "simulate_tandem",
    "state_space_study",
]
