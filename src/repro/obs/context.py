"""Ambient instrumentation context.

Experiments build many :class:`~repro.des.Environment` instances deep
inside library calls; threading an explicit tracer/registry through
every constructor would contaminate every model signature.  Instead,
:func:`instrument` installs the triple — tracer, metric registry and
:class:`~repro.obs.timeseries.Probe` — as the *ambient default* (a
:mod:`contextvars` variable): any Environment — and any
registry-aware non-DES model — created inside the ``with`` block picks
them up automatically.

The lookup happens once per entity construction, never per event, so
the ambient mechanism adds nothing to kernel hot paths.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricRegistry
    from repro.obs.timeseries import Probe
    from repro.obs.trace import Tracer

__all__ = ["instrument", "active_tracer", "active_metrics",
           "active_probe"]

_ACTIVE: contextvars.ContextVar[tuple] = contextvars.ContextVar(
    "repro_obs_active", default=(None, None, None)
)


def active_tracer() -> "Tracer | None":
    """The ambient tracer, or ``None`` when tracing is off."""
    return _ACTIVE.get()[0]


def active_metrics() -> "MetricRegistry | None":
    """The ambient metric registry, or ``None`` when metrics are off."""
    return _ACTIVE.get()[1]


def active_probe() -> "Probe | None":
    """The ambient sim-time probe, or ``None`` when probing is off."""
    return _ACTIVE.get()[2]


@contextmanager
def instrument(tracer: "Tracer | None" = None,
               metrics: "MetricRegistry | None" = None,
               probe: "Probe | None" = None):
    """Make ``tracer``/``metrics``/``probe`` the ambient defaults for
    the block.

    Examples
    --------
    >>> from repro.obs import MetricRegistry, Tracer, instrument
    >>> from repro.des import Environment
    >>> tracer = Tracer()
    >>> with instrument(tracer=tracer):
    ...     env = Environment()
    ...     env.tracer is tracer
    True
    """
    token = _ACTIVE.set((tracer, metrics, probe))
    try:
        yield (tracer, metrics, probe)
    finally:
        _ACTIVE.reset(token)
