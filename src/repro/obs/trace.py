"""Structured event tracing for the DES kernel and the models above it.

A :class:`Tracer` collects :class:`TraceEvent` records — kernel
``schedule``/``step`` events, ``process-start``/``process-end``
markers, and any model-level events emitted through
:meth:`Tracer.emit`.  From the flat event stream it derives:

* per-process **spans** (:meth:`Tracer.spans`) — one
  :class:`Span` per process lifetime;
* per-entity **timelines** (:meth:`Tracer.timeline`) — events grouped
  by name;
* **JSONL export/import** (:meth:`Tracer.to_jsonl` /
  :meth:`Tracer.from_jsonl`) for offline analysis.

Tracing never feeds back into the simulation: the tracer only appends
to a list, so enabling it cannot change any seeded result.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Iterable, Iterator

__all__ = ["TraceEvent", "Span", "Tracer"]


@dataclass(slots=True)
class TraceEvent:
    """One structured happening at a point in simulated time."""

    time: float
    kind: str
    name: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "t": self.time, "kind": self.kind, "name": self.name,
        }
        if self.attrs:
            data["attrs"] = self.attrs
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceEvent":
        return cls(
            time=float(data["t"]),
            kind=str(data["kind"]),
            name=str(data["name"]),
            attrs=dict(data.get("attrs", {})),
        )


@dataclass(slots=True)
class Span:
    """A named interval of simulated time (e.g. a process lifetime)."""

    name: str
    start: float
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        """True while the span has not ended (process still alive)."""
        return self.end is None

    @property
    def duration(self) -> float:
        """Span length; ``nan`` while still open."""
        if self.end is None:
            return float("nan")
        return self.end - self.start


class Tracer:
    """Append-only collector of structured simulation events.

    Parameters
    ----------
    max_events:
        Optional hard cap; once reached, further events are counted
        (:attr:`n_dropped`) but not stored, bounding memory on long
        runs.

    Attributes
    ----------
    wants_schedule:
        Public subclass knob.  The kernel consults it before every
        (hot, per-event) ``schedule`` emit; a tracer that overrides
        it to ``False`` — like the wall-clock profiler, which
        attributes at step granularity — never receives ``schedule``
        events, while ``step``/``process`` emits are unaffected.
    """

    wants_schedule = True

    def __init__(self, max_events: int | None = None):
        self.events: list[TraceEvent] = []
        self.max_events = max_events
        self.n_dropped = 0
        self._ids = count()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def emit(self, time: float, kind: str, name: str,
             **attrs: Any) -> None:
        """Record one event at simulated ``time``."""
        if (self.max_events is not None
                and len(self.events) >= self.max_events):
            self.n_dropped += 1
            return
        self.events.append(TraceEvent(time, kind, name, attrs))

    def next_id(self) -> int:
        """A fresh id for correlating start/end event pairs."""
        return next(self._ids)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Number of recorded events per kind."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def timeline(self, kind: str | None = None
                 ) -> dict[str, list[TraceEvent]]:
        """Events grouped by ``name`` (optionally one ``kind`` only),
        each group in time order — the per-entity view of a run."""
        out: dict[str, list[TraceEvent]] = {}
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            out.setdefault(event.name, []).append(event)
        return out

    def spans(self, start_kind: str = "process-start",
              end_kind: str = "process-end") -> list[Span]:
        """Pair start/end events (by their ``id`` attribute) into
        :class:`Span` records; unmatched starts stay open."""
        open_spans: dict[Any, Span] = {}
        done: list[Span] = []
        for event in self.events:
            if event.kind == start_kind:
                span = Span(name=event.name, start=event.time,
                            attrs=dict(event.attrs))
                open_spans[event.attrs.get("id")] = span
            elif event.kind == end_kind:
                span = open_spans.pop(event.attrs.get("id"), None)
                if span is None:
                    span = Span(name=event.name, start=event.time)
                span.end = event.time
                span.attrs.update(event.attrs)
                done.append(span)
        done.extend(open_spans.values())
        return done

    def summary(self) -> dict[str, Any]:
        """Compact description of the trace (for reports and the CLI)."""
        times = [e.time for e in self.events]
        return {
            "n_events": len(self.events),
            "n_dropped": self.n_dropped,
            "by_kind": self.counts(),
            "t_first": min(times) if times else None,
            "t_last": max(times) if times else None,
        }

    # ------------------------------------------------------------------
    # JSONL round-trip
    # ------------------------------------------------------------------
    def to_jsonl(self, path) -> int:
        """Write one JSON object per event; returns the event count."""
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.events:
                fh.write(json.dumps(event.to_dict(),
                                    sort_keys=True) + "\n")
        return len(self.events)

    def dumps(self) -> str:
        """The JSONL document as a string (for tests and piping)."""
        return "".join(
            json.dumps(event.to_dict(), sort_keys=True) + "\n"
            for event in self.events
        )

    @classmethod
    def from_jsonl(cls, path) -> "Tracer":
        """Rebuild a tracer from a JSONL file written by
        :meth:`to_jsonl`."""
        tracer = cls()
        with open(path, "r", encoding="utf-8") as fh:
            tracer.events.extend(
                TraceEvent.from_dict(json.loads(line))
                for line in fh if line.strip()
            )
        return tracer

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "Tracer":
        tracer = cls()
        tracer.events.extend(events)
        return tracer

    def __repr__(self) -> str:
        return f"Tracer(n_events={len(self.events)})"
