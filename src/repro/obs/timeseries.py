"""KPI-over-sim-time series and the probe that feeds them.

Scalars tell you *where a run ended*; the paper's holistic design loop
needs *trajectories* — buffer levels, deadline misses and energy as
they evolve over simulated time.  :class:`TimeSeries` is the fourth
instrument kind of :class:`~repro.obs.metrics.MetricRegistry`: a
fixed-memory, deterministically downsampled sequence of ``(t, value)``
samples that merges across replicas like the other kinds.

Design: samples land in bins anchored at ``t = 0`` whose width walks a
power-of-two ladder above a fixed ``base_width``.  When the number of
occupied bins would exceed the budget, the width doubles and adjacent
bins pairwise-merge (an exact integer halving of bin indices — no
floating-point rebinning).  Because the occupied-bin count at any
width is a function of the sample *set* alone, the final width — and
therefore the serialized form — does not depend on the order samples
arrived or on how samples were split across replicas, which is what
keeps replicated merges byte-identical for any worker count.

:class:`Probe` snapshots selected registry instruments (and per-
environment kernel counters) into ``probe_*`` time series at a fixed
*sim-time* interval.  It is not a simulated process — it piggybacks on
:meth:`Environment.step <repro.des.Environment.step>` behind a single
float comparison, so it never schedules events, never perturbs the
event order, and costs nothing when absent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.metrics import Metric

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.des.environment import Environment
    from repro.obs.metrics import MetricRegistry

__all__ = ["TimeSeries", "Probe", "ProbeSpec", "as_probe_spec",
           "DEFAULT_MAX_BINS", "DEFAULT_BASE_WIDTH",
           "DEFAULT_PROBE_INTERVAL"]

#: Bin budget per series: the downsampling ladder keeps the number of
#: occupied bins at or below this, bounding memory and payload size.
DEFAULT_MAX_BINS = 512

#: Finest bin width (2**-20 simulated time units, ~1e-6).  Samples
#: closer together than this share a bin from the start.
DEFAULT_BASE_WIDTH = 2.0 ** -20

#: Sim-time seconds between probe snapshots.
DEFAULT_PROBE_INTERVAL = 1.0

# Bin aggregate slots: [count, total, minimum, maximum].
_COUNT, _TOTAL, _MIN, _MAX = 0, 1, 2, 3


class TimeSeries(Metric):
    """A downsampled ``value(t)`` trajectory with a fixed bin budget.

    Every bin keeps exact aggregates (count, total, min, max) of the
    samples that fell into it, so downsampling loses resolution but
    never loses mass.  ``add`` rejects non-finite times (the bin index
    would be meaningless); non-finite *values* are dropped silently so
    a probe can sample a never-set gauge without poisoning totals.
    """

    kind = "timeseries"

    def __init__(self, name: str, labels: dict[str, str],
                 max_bins: int = DEFAULT_MAX_BINS,
                 base_width: float = DEFAULT_BASE_WIDTH):
        super().__init__(name, labels)
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        if not (base_width > 0.0 and math.isfinite(base_width)):
            raise ValueError(f"base_width must be a positive finite "
                             f"number, got {base_width}")
        self.n_samples = 0
        self.max_bins = max_bins
        self.base_width = base_width
        self.level = 0
        self._bins: dict[int, list[float]] = {}

    @property
    def width(self) -> float:
        """Current bin width: ``base_width * 2**level``."""
        return self.base_width * (1 << self.level)

    def add(self, t: float, value: float) -> None:
        """Fold one ``(t, value)`` sample into the series."""
        t = float(t)
        if not math.isfinite(t):
            raise ValueError(f"sample time must be finite, got {t}")
        value = float(value)
        if not math.isfinite(value):
            return
        self.n_samples += 1
        # self.width, inlined (hot path: one call per sample).
        index = math.floor(t / (self.base_width * (1 << self.level)))
        bin_ = self._bins.get(index)
        if bin_ is None:
            self._bins[index] = [1.0, value, value, value]
            self._shrink_to_budget()
        else:
            bin_[_COUNT] += 1.0
            bin_[_TOTAL] += value
            if value < bin_[_MIN]:
                bin_[_MIN] = value
            if value > bin_[_MAX]:
                bin_[_MAX] = value

    def _shrink_to_budget(self) -> None:
        while len(self._bins) > self.max_bins:
            self._double()

    def _double(self) -> None:
        """Double the bin width, pairwise-merging adjacent bins.

        Rebinning halves integer indices (``floor(t / 2w) ==
        floor(floor(t / w) / 2)``), so no sample time is ever
        re-quantized through floating point.
        """
        merged: dict[int, list[float]] = {}
        for index, bin_ in self._bins.items():
            half = index // 2  # floor division: correct for t < 0 too
            into = merged.get(half)
            if into is None:
                merged[half] = list(bin_)
            else:
                into[_COUNT] += bin_[_COUNT]
                into[_TOTAL] += bin_[_TOTAL]
                if bin_[_MIN] < into[_MIN]:
                    into[_MIN] = bin_[_MIN]
                if bin_[_MAX] > into[_MAX]:
                    into[_MAX] = bin_[_MAX]
        self._bins = merged
        self.level += 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def points(self) -> list[tuple[float, int, float, float, float]]:
        """Sorted ``(t_start, count, mean, min, max)`` per bin."""
        width = self.width
        return [
            (index * width, int(bin_[_COUNT]),
             bin_[_TOTAL] / bin_[_COUNT], bin_[_MIN], bin_[_MAX])
            for index, bin_ in sorted(self._bins.items())
        ]

    @property
    def last(self) -> float:
        """Mean of the latest bin (NaN when empty)."""
        if not self._bins:
            return math.nan
        bin_ = self._bins[max(self._bins)]
        return bin_[_TOTAL] / bin_[_COUNT]

    @property
    def span(self) -> tuple[float, float]:
        """``(t_first, t_last)`` bin-start bounds (NaN when empty)."""
        if not self._bins:
            return (math.nan, math.nan)
        width = self.width
        return (min(self._bins) * width, max(self._bins) * width)

    # ------------------------------------------------------------------
    # Merge / serialization
    # ------------------------------------------------------------------
    def merge_from(self, other: "Metric") -> None:
        """Fold another series in; equivalent to adding its samples.

        An empty series adopts the other's geometry outright, so a
        registry merge that creates a fresh default-parameter adoptee
        preserves custom budgets.  Non-empty operands must share
        ``base_width`` (bins of unrelated ladders cannot align).
        """
        if not isinstance(other, TimeSeries):  # pragma: no cover
            raise TypeError(f"cannot merge {other.kind} into "
                            f"timeseries {self.key}")
        if not self._bins:
            self.max_bins = other.max_bins
            self.base_width = other.base_width
            self.level = other.level
            self.n_samples += other.n_samples
            self._bins = {i: list(b) for i, b in other._bins.items()}
            self._shrink_to_budget()
            return
        if other.base_width != self.base_width:
            raise ValueError(
                f"cannot merge timeseries {self.key}: base_width "
                f"{other.base_width} != {self.base_width}")
        level = max(self.level, other.level)
        while self.level < level:
            self._double()
        shift = level - other.level
        for index, bin_ in other._bins.items():
            coarse = index // (1 << shift) if shift else index
            into = self._bins.get(coarse)
            if into is None:
                self._bins[coarse] = list(bin_)
            else:
                into[_COUNT] += bin_[_COUNT]
                into[_TOTAL] += bin_[_TOTAL]
                if bin_[_MIN] < into[_MIN]:
                    into[_MIN] = bin_[_MIN]
                if bin_[_MAX] > into[_MAX]:
                    into[_MAX] = bin_[_MAX]
        self.n_samples += other.n_samples
        self._shrink_to_budget()

    def to_dict(self) -> dict[str, Any]:
        """Serialized form; bin starts are exact ``index * width``.

        ``points`` rows are ``[t_start, count, total, min, max]``.
        Everything here derives from sample (t, value) pairs alone —
        no wall-clock fields — so embedded series survive
        ``strip_timings()`` untouched and must stay byte-identical
        across worker counts.
        """
        width = self.width
        return {
            "kind": self.kind,
            "n_samples": self.n_samples,
            "bin_width": width,
            "points": [
                [index * width, bin_[_COUNT], bin_[_TOTAL],
                 bin_[_MIN], bin_[_MAX]]
                for index, bin_ in sorted(self._bins.items())
            ],
        }


@dataclass(frozen=True)
class ProbeSpec:
    """Declarative, picklable probe configuration.

    ``interval`` is *simulated* seconds between snapshots.  ``metrics``
    selects which registry instruments to sample: ``True`` for every
    counter and gauge, or a tuple of metric names.  ``kernel`` adds
    per-environment kernel counter series (events executed/scheduled,
    pending queue depth).  Sampled series are registered under
    ``prefix + name`` with the source instrument's labels.
    """

    interval: float = DEFAULT_PROBE_INTERVAL
    metrics: bool | tuple[str, ...] = True
    kernel: bool = True
    prefix: str = "probe_"

    def __post_init__(self) -> None:
        if not (self.interval > 0.0 and math.isfinite(self.interval)):
            raise ValueError(f"probe interval must be a positive "
                             f"finite number, got {self.interval}")

    def to_dict(self) -> dict[str, Any]:
        metrics: Any = self.metrics
        if isinstance(metrics, tuple):
            metrics = list(metrics)
        return {"interval": self.interval, "metrics": metrics,
                "kernel": self.kernel, "prefix": self.prefix}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ProbeSpec":
        metrics = data.get("metrics", True)
        if isinstance(metrics, list):
            metrics = tuple(metrics)
        return cls(interval=float(data.get("interval",
                                           DEFAULT_PROBE_INTERVAL)),
                   metrics=metrics,
                   kernel=bool(data.get("kernel", True)),
                   prefix=str(data.get("prefix", "probe_")))


def as_probe_spec(value: Any) -> ProbeSpec | None:
    """Coerce the user-facing ``probe=`` argument to a spec.

    ``None``/``False`` disable probing; ``True`` means the default
    spec; a number is an interval in simulated seconds; a
    :class:`ProbeSpec` (or a live :class:`Probe`, whose spec is
    taken) passes through.
    """
    if value is None or value is False:
        return None
    if value is True:
        return ProbeSpec()
    if isinstance(value, ProbeSpec):
        return value
    if isinstance(value, Probe):
        return value.spec
    if isinstance(value, (int, float)):
        return ProbeSpec(interval=float(value))
    raise TypeError(f"probe must be a bool, number, ProbeSpec or "
                    f"Probe, got {type(value).__name__}")


class Probe:
    """Samples registry metrics into time series at sim-time ticks.

    Installed as the third ambient slot by
    :func:`repro.obs.instrument`; every
    :class:`~repro.des.Environment` constructed under it checks its
    clock against the next due tick on each step (a single float
    comparison — see the perf guard's probe bounds).  Environments get
    stable indices in construction order, which is deterministic for a
    seeded run, so kernel series labels match across worker counts.
    """

    def __init__(self, registry: "MetricRegistry",
                 spec: ProbeSpec | None = None):
        self.registry = registry
        self.spec = spec or ProbeSpec()
        #: Optional :class:`repro.obs.slo.SLOWatcher` evaluated after
        #: every snapshot (in-flight breach detection).
        self.watcher: Any = None
        self.samples = 0
        self._env_seq = 0

    def attach(self, env: "Environment") -> float:
        """Register a new environment; returns its first due time."""
        env._probe_index = self._env_seq
        self._env_seq += 1
        return self.spec.interval

    def sample(self, env: "Environment", now: float) -> float:
        """Take one snapshot at sim-time ``now``; returns next due."""
        spec = self.spec
        registry = self.registry
        self.samples += 1
        if spec.kernel:
            env_label = str(getattr(env, "_probe_index", 0))
            stats = env.perf_stats()
            for field in ("events_executed", "events_scheduled",
                          "pending"):
                series = registry._get_or_create(
                    TimeSeries, f"{spec.prefix}kernel_{field}",
                    {"env": env_label})
                series.add(now, float(stats[field]))
        if spec.metrics:
            selected = spec.metrics
            for metric in list(registry):
                if metric.kind not in ("counter", "gauge"):
                    continue
                if metric.name.startswith(spec.prefix):
                    continue
                if (selected is not True
                        and metric.name not in selected):
                    continue
                series = registry._get_or_create(
                    TimeSeries, spec.prefix + metric.name,
                    metric.labels)
                series.add(now, metric.value)
        if self.watcher is not None:
            self.watcher.check(now)
        interval = spec.interval
        return (math.floor(now / interval) + 1.0) * interval
