"""Observability: tracing, metrics and run reports for every subsystem.

The paper's holistic thesis is that co-design decisions must be judged
by *measured* end-to-end behaviour.  This package is the measurement
substrate the rest of :mod:`repro` reports through:

* :mod:`repro.obs.trace` — a :class:`Tracer` that records kernel
  schedule/step/process events as structured events and spans, with
  JSONL export and per-process timelines;
* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments collected in a shared
  :class:`MetricRegistry`;
* :mod:`repro.obs.timeseries` — the :class:`TimeSeries` instrument
  (fixed-memory KPI-over-sim-time series) and the :class:`Probe`
  that snapshots registry metrics and kernel counters at a
  configurable sim-time interval;
* :mod:`repro.obs.slo` — declarative :class:`SLOSpec` objectives over
  time series, evaluated in-flight by an :class:`SLOWatcher` and
  recorded in the run report;
* :mod:`repro.obs.dashboard` — :func:`render_html`, a self-contained
  HTML dashboard (SVG sparklines, KPI tables, SLO breach timeline)
  for any run report or bench document;
* :mod:`repro.obs.report` — the :class:`RunReport` summary (scalar
  KPIs plus aggregate statistics with confidence intervals)
  serializable to JSON;
* :mod:`repro.obs.context` — :func:`instrument`, a context manager
  that makes a tracer/registry the ambient default so deeply nested
  models (every :class:`~repro.des.Environment` created inside an
  experiment) pick them up without explicit plumbing;
* :mod:`repro.obs.perf` — performance observability on top of the
  above: the :class:`~repro.obs.perf.Profiler` (cProfile hotspots +
  wall-clock attribution to simulated processes + flamegraph export),
  the ``repro bench`` harness producing the versioned
  ``BENCH_perf.json`` trajectory artifact, and regression gates
  (:func:`~repro.obs.perf.compare_documents`).

Instrumentation is strictly opt-in: with no tracer or registry
attached, every hook in the kernel and the subsystem models reduces to
a single ``is None`` check.
"""

from repro.obs.context import (
    active_metrics,
    active_probe,
    active_tracer,
    instrument,
)
from repro.obs.dashboard import render_html
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from repro.obs.perf import Profiler
from repro.obs.report import RunReport, sanitize_json
from repro.obs.slo import SLOSpec, SLOWatcher, as_slo_specs
from repro.obs.timeseries import (
    Probe,
    ProbeSpec,
    TimeSeries,
    as_probe_spec,
)
from repro.obs.trace import Span, TraceEvent, Tracer

__all__ = [
    "sanitize_json",
    "Profiler",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Probe",
    "ProbeSpec",
    "RunReport",
    "SLOSpec",
    "SLOWatcher",
    "Span",
    "TimeSeries",
    "TraceEvent",
    "Tracer",
    "active_metrics",
    "active_probe",
    "active_tracer",
    "as_probe_spec",
    "as_slo_specs",
    "instrument",
    "render_html",
]
