"""Declarative service-level objectives over time series.

An :class:`SLOSpec` names one time-series instrument, an aggregation
over an optional trailing window, a comparison operator and a
threshold — "the drop fraction, averaged over the last 5 simulated
seconds, stays at or below 0.1".  An :class:`SLOWatcher` evaluates a
set of specs against a live registry: in-flight after every probe
snapshot (recording *breach events* the first sim-time an objective
goes out of bounds) and once more at end of run (the *final* verdict,
which also covers runs that emit series directly without a probe).

Breach times and values derive from simulated time only, so the SLO
record survives ``strip_timings()`` and is byte-identical across
worker counts; a replicated run concatenates per-replica breaches in
replica order (see :func:`repro.parallel.merge_replicas`).

Spec strings use a compact grammar accepted by :meth:`SLOSpec.parse`::

    [name=]SERIES[:AGG[:WINDOW]] OP THRESHOLD

    drop_frac=probe_stream_dropped:rate:5 <= 2.0
    probe_session_buffer:mean >= 0.25
    deadline_misses > 10

``SERIES`` is a metric key (``name{label=value,...}``); ``AGG`` is one
of ``last`` (default), ``mean``, ``min``, ``max``, ``sum``, ``count``
or ``rate`` (per-sim-second delta of bin means — the right shape for
cumulative counters); ``WINDOW`` restricts evaluation to the trailing
window of simulated seconds; ``OP`` is ``<=``, ``<``, ``>=`` or ``>``.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.obs.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricRegistry

__all__ = ["SLOSpec", "SLOWatcher", "as_slo_specs",
           "SLO_AGGREGATIONS"]

SLO_AGGREGATIONS = ("last", "mean", "min", "max", "sum", "count",
                    "rate")

_OPS = {
    "<=": lambda v, t: v <= t,
    "<": lambda v, t: v < t,
    ">=": lambda v, t: v >= t,
    ">": lambda v, t: v > t,
}

_OP_RE = re.compile(r"(<=|>=|<|>)")
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.-]*$")


@dataclass(frozen=True)
class SLOSpec:
    """One objective: ``agg(series[window]) op threshold``."""

    name: str
    series: str
    op: str
    threshold: float
    agg: str = "last"
    window: float | None = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown SLO operator {self.op!r}; "
                             f"use one of {sorted(_OPS)}")
        if self.agg not in SLO_AGGREGATIONS:
            raise ValueError(f"unknown SLO aggregation {self.agg!r}; "
                             f"use one of {SLO_AGGREGATIONS}")
        if self.window is not None and not self.window > 0.0:
            raise ValueError(f"SLO window must be positive, "
                             f"got {self.window}")

    @classmethod
    def parse(cls, text: str) -> "SLOSpec":
        """Parse the ``[name=]series[:agg[:window]] op threshold``
        grammar (whitespace around the operator optional)."""
        spec = text.strip()
        match = _OP_RE.search(spec)
        if match is None:
            raise ValueError(f"SLO spec {text!r} has no comparison "
                             f"operator (<=, <, >=, >)")
        op = match.group(1)
        left, right = spec[:match.start()], spec[match.end():]
        try:
            threshold = float(right.strip())
        except ValueError:
            raise ValueError(f"SLO spec {text!r}: threshold "
                             f"{right.strip()!r} is not a number")
        left = left.strip()
        name = None
        brace = left.find("{")
        eq = left.find("=")
        if eq != -1 and (brace == -1 or eq < brace):
            candidate = left[:eq].strip()
            if _NAME_RE.match(candidate):
                name = candidate
                left = left[eq + 1:].strip()
        # Split trailing :agg[:window] — colons never appear inside a
        # metric key, so rightmost-split is unambiguous.
        series, agg, window = left, "last", None
        head, _, tail = left.partition(":")
        if tail:
            series = head
            agg, _, window_text = tail.partition(":")
            if window_text:
                try:
                    window = float(window_text)
                except ValueError:
                    raise ValueError(
                        f"SLO spec {text!r}: window "
                        f"{window_text!r} is not a number")
        if not series:
            raise ValueError(f"SLO spec {text!r} names no series")
        return cls(name=name or spec, series=series, op=op,
                   threshold=threshold, agg=agg, window=window)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "name": self.name, "series": self.series, "op": self.op,
            "threshold": self.threshold, "agg": self.agg,
        }
        if self.window is not None:
            data["window"] = self.window
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SLOSpec":
        return cls(name=data["name"], series=data["series"],
                   op=data["op"], threshold=float(data["threshold"]),
                   agg=data.get("agg", "last"),
                   window=data.get("window"))

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, registry: "MetricRegistry",
                 now: float | None = None) -> float | None:
        """Current aggregated value, or ``None`` when the series does
        not exist yet / holds no bins in the window."""
        series = _resolve(registry, self.series)
        if series is None:
            return None
        points = series.points()
        if now is None and points:
            now = points[-1][0]
        if self.window is not None and now is not None:
            cutoff = now - self.window
            points = [p for p in points if p[0] >= cutoff]
        if not points:
            return None
        return _aggregate(self.agg, points)

    def ok(self, value: float | None) -> bool:
        """Whether ``value`` satisfies the objective (vacuously true
        while the series has no data)."""
        if value is None or math.isnan(value):
            return True
        return _OPS[self.op](value, self.threshold)


def as_slo_specs(value: Any) -> tuple[SLOSpec, ...]:
    """Coerce the user-facing ``slo=`` argument to a spec tuple.

    Accepts ``None`` (no objectives), one spec or spec string, or an
    iterable mixing both.
    """
    if value is None:
        return ()
    if isinstance(value, (SLOSpec, str)):
        value = (value,)
    specs = []
    for item in value:
        if isinstance(item, SLOSpec):
            specs.append(item)
        elif isinstance(item, str):
            specs.append(SLOSpec.parse(item))
        else:
            raise TypeError(f"slo items must be SLOSpec or spec "
                            f"strings, got {type(item).__name__}")
    return tuple(specs)


def _resolve(registry: "MetricRegistry",
             key: str) -> TimeSeries | None:
    for metric in registry:
        if metric.key == key and isinstance(metric, TimeSeries):
            return metric
    return None


def _aggregate(agg: str,
               points: list[tuple[float, int, float, float, float]]
               ) -> float | None:
    # points rows: (t_start, count, mean, min, max)
    if agg == "last":
        return points[-1][2]
    if agg == "mean":
        count = sum(p[1] for p in points)
        return sum(p[2] * p[1] for p in points) / count
    if agg == "min":
        return min(p[3] for p in points)
    if agg == "max":
        return max(p[4] for p in points)
    if agg == "sum":
        return sum(p[2] * p[1] for p in points)
    if agg == "count":
        return float(sum(p[1] for p in points))
    if agg == "rate":
        if len(points) < 2:
            return None
        span = points[-1][0] - points[0][0]
        if span <= 0.0:
            return None
        return (points[-1][2] - points[0][2]) / span
    raise ValueError(f"unknown aggregation {agg!r}")  # pragma: no cover


class SLOWatcher:
    """Evaluates a set of specs against a live registry.

    :meth:`check` runs after every probe snapshot and records a breach
    *event* each sim-time an objective transitions from in-bounds to
    out-of-bounds (re-entering bounds re-arms it).  :meth:`finalize`
    evaluates each spec once over the completed series — the verdict
    that gates ``--slo-strict``.
    """

    def __init__(self, registry: "MetricRegistry",
                 specs: list[SLOSpec]):
        self.registry = registry
        self.specs = list(specs)
        self.breaches: list[dict[str, Any]] = []
        self.final: dict[str, dict[str, Any]] = {}
        self._in_breach: set[str] = set()

    def check(self, now: float) -> None:
        """In-flight evaluation at sim-time ``now``."""
        for spec in self.specs:
            value = spec.evaluate(self.registry, now)
            if spec.ok(value):
                self._in_breach.discard(spec.name)
            elif spec.name not in self._in_breach:
                self._in_breach.add(spec.name)
                self.breaches.append({
                    "slo": spec.name, "t": now, "value": value,
                    "series": spec.series, "agg": spec.agg,
                    "op": spec.op, "threshold": spec.threshold,
                })

    def finalize(self) -> None:
        """End-of-run evaluation over each spec's full series."""
        for spec in self.specs:
            value = spec.evaluate(self.registry)
            self.final[spec.name] = {
                "value": value, "ok": spec.ok(value),
            }

    @property
    def ok(self) -> bool:
        return not self.breaches and all(
            entry["ok"] for entry in self.final.values())

    def summary(self) -> dict[str, Any]:
        """The ``report.slo`` payload (sim-time fields only)."""
        return {
            "specs": [spec.to_dict() for spec in self.specs],
            "breaches": list(self.breaches),
            "final": dict(self.final),
            "ok": self.ok,
        }
