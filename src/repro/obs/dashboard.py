"""Self-contained HTML run dashboards.

:func:`render_html` turns a run record — a :class:`~repro.obs.report.
RunReport` (object or dict), a full :class:`~repro.experiments.result.
ExperimentResult` dict, or a ``BENCH_perf.json`` document — into one
static HTML page: KPI tables, inline SVG sparklines for every
:class:`~repro.obs.timeseries.TimeSeries` instrument (mean line over a
min–max band), the SLO verdicts with a breach timeline, and the
replication view for pooled runs.

The page embeds everything (styles, SVG, data) inline: no scripts, no
network fetches, no external assets — it renders identically from a CI
artifact store, an email attachment, or ``file://``.  Colors follow
the validated default dataviz palette as CSS custom properties with a
``prefers-color-scheme`` dark mode; per-bin hover detail uses native
SVG ``<title>`` tooltips so the page stays script-free.
"""

from __future__ import annotations

import html
import json
import math
from typing import Any, Sequence

__all__ = ["render_html"]

# Validated default palette (light / dark), exposed as custom
# properties so the dark mode is *selected* steps, not an inverted
# light theme.  Status colors are reserved for SLO verdicts and the
# determinism chip — never reused as series hues.
_CSS = """
:root {
  --surface: #fcfcfb;
  --text: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --gridline: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --series-1-soft: rgba(42, 120, 214, 0.16);
  --good: #0ca30c;
  --critical: #d03b3b;
  --chip-good-bg: rgba(12, 163, 12, 0.12);
  --chip-bad-bg: rgba(208, 59, 59, 0.12);
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19;
    --text: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --gridline: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --series-1-soft: rgba(57, 135, 229, 0.22);
  }
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 24px 28px 48px; max-width: 980px;
  background: var(--surface); color: var(--text);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 2px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.sub { color: var(--text-secondary); margin: 0 0 4px; }
.muted { color: var(--text-muted); }
table { border-collapse: collapse; margin: 8px 0; width: 100%; }
th, td {
  text-align: left; padding: 4px 14px 4px 0;
  border-bottom: 1px solid var(--gridline);
}
th { color: var(--text-secondary); font-weight: 600; }
td.num, th.num {
  text-align: right; font-variant-numeric: tabular-nums;
}
.chip {
  display: inline-block; padding: 0 8px; border-radius: 8px;
  font-size: 12px; font-weight: 600;
}
.chip.ok { color: var(--good); background: var(--chip-good-bg); }
.chip.bad { color: var(--critical); background: var(--chip-bad-bg); }
.series { margin: 14px 0 18px; }
.series .name { font-weight: 600; }
.series .stats { color: var(--text-muted); font-size: 12px; }
svg { display: block; }
svg .band { fill: var(--series-1-soft); stroke: none; }
svg .line {
  fill: none; stroke: var(--series-1); stroke-width: 2;
  stroke-linejoin: round; stroke-linecap: round;
}
svg .baseline { stroke: var(--baseline); stroke-width: 1; }
svg .grid { stroke: var(--gridline); stroke-width: 1; }
svg .dot { fill: var(--series-1); }
svg .breach { fill: var(--critical); }
svg .hover { fill: transparent; }
svg .hover:hover { fill: var(--series-1-soft); }
svg text {
  font: 11px system-ui, sans-serif; fill: var(--text-muted);
}
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any) -> str:
    """Compact numeric formatting for table cells and labels."""
    if value is None:
        return "n/a"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if not math.isfinite(value):
            return "n/a"
        return f"{value:,.6g}"
    return str(value)


def _chip(ok: bool, label_ok: str = "OK",
          label_bad: str = "BREACHED") -> str:
    cls = "ok" if ok else "bad"
    # Never color-alone: the chip carries an explicit glyph + label.
    glyph = "✓" if ok else "✕"
    return (f'<span class="chip {cls}">{glyph} '
            f'{label_ok if ok else label_bad}</span>')


# ----------------------------------------------------------------------
# SVG sparklines
# ----------------------------------------------------------------------

def _scale(points: Sequence[Sequence[float]]
           ) -> tuple[float, float, float, float]:
    """(t_min, t_max, v_min, v_max) over mean/min/max columns."""
    t_min = min(p[0] for p in points)
    t_max = max(p[0] for p in points)
    v_min = min(p[3] for p in points)
    v_max = max(p[4] for p in points)
    if t_max <= t_min:
        t_max = t_min + 1.0
    if v_max <= v_min:
        pad = abs(v_min) * 0.1 or 1.0
        v_min, v_max = v_min - pad, v_max + pad
    return t_min, t_max, v_min, v_max


def _sparkline(points: Sequence[Sequence[float]],
               breaches: Sequence[float] = (),
               width: int = 620, height: int = 96) -> str:
    """Inline SVG: mean polyline over a min–max band.

    ``points`` rows are ``(t_start, count, mean, min, max)`` as
    produced by :meth:`TimeSeries.points`; ``breaches`` marks breach
    sim-times on the time axis.  Hover detail comes from native SVG
    ``<title>`` tooltips on per-bin hit rectangles (wider than the
    marks they describe), keeping the page script-free.
    """
    pad_l, pad_r, pad_t, pad_b = 8, 8, 8, 20
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    t_min, t_max, v_min, v_max = _scale(points)

    def x(t: float) -> float:
        return pad_l + (t - t_min) / (t_max - t_min) * plot_w

    def y(v: float) -> float:
        return pad_t + (v_max - v) / (v_max - v_min) * plot_h

    band_top = " ".join(f"{x(p[0]):.1f},{y(p[4]):.1f}"
                        for p in points)
    band_bot = " ".join(f"{x(p[0]):.1f},{y(p[3]):.1f}"
                        for p in reversed(points))
    line = " ".join(f"{x(p[0]):.1f},{y(p[2]):.1f}" for p in points)
    last = points[-1]
    parts = [
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">',
        f'<line class="grid" x1="{pad_l}" y1="{pad_t}" '
        f'x2="{width - pad_r}" y2="{pad_t}"/>',
        f'<line class="baseline" x1="{pad_l}" '
        f'y1="{pad_t + plot_h}" x2="{width - pad_r}" '
        f'y2="{pad_t + plot_h}"/>',
    ]
    if len(points) > 1:
        parts.append(f'<polygon class="band" '
                     f'points="{band_top} {band_bot}"/>')
        parts.append(f'<polyline class="line" points="{line}"/>')
    parts.append(f'<circle class="dot" cx="{x(last[0]):.1f}" '
                 f'cy="{y(last[2]):.1f}" r="4"/>')
    for t in breaches:
        if t_min <= t <= t_max:
            parts.append(
                f'<circle class="breach" cx="{x(t):.1f}" '
                f'cy="{pad_t + plot_h}" r="4">'
                f'<title>SLO breach at t={t:g}</title></circle>')
    # Per-bin hover targets (native tooltips, larger than the marks).
    for i, p in enumerate(points):
        left = x(points[i - 1][0]) if i else x(p[0]) - 4
        right = (x(points[i + 1][0]) if i + 1 < len(points)
                 else x(p[0]) + 4)
        mid_l, mid_r = (left + x(p[0])) / 2, (x(p[0]) + right) / 2
        parts.append(
            f'<rect class="hover" x="{mid_l:.1f}" y="{pad_t}" '
            f'width="{max(mid_r - mid_l, 2):.1f}" '
            f'height="{plot_h}">'
            f'<title>t={p[0]:g}  mean={p[2]:.6g}  '
            f'min={p[3]:.6g}  max={p[4]:.6g}  n={p[1]}</title>'
            f'</rect>')
    parts.append(f'<text x="{pad_l}" y="{height - 5}">'
                 f't={t_min:g}</text>')
    parts.append(f'<text x="{width - pad_r}" y="{height - 5}" '
                 f'text-anchor="end">t={t_max:g}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _series_points(entry: dict[str, Any]
                   ) -> list[tuple[float, int, float, float, float]]:
    """(t_start, count, mean, min, max) rows from a serialized
    TimeSeries stats entry (raw rows store the *total*, not the
    mean)."""
    rows = []
    for t_start, count, total, lo, hi in entry.get("points", []):
        count = int(count)
        rows.append((float(t_start), count,
                     float(total) / count if count else 0.0,
                     float(lo), float(hi)))
    return rows


# ----------------------------------------------------------------------
# Report sections
# ----------------------------------------------------------------------

def _kpi_section(metrics: dict[str, Any]) -> str:
    if not metrics:
        return ""
    rows = "".join(
        f"<tr><td>{_esc(name)}</td>"
        f'<td class="num">{_fmt(metrics[name])}</td></tr>'
        for name in sorted(metrics))
    return (f"<h2>KPIs</h2><table><thead><tr><th>metric</th>"
            f'<th class="num">value</th></tr></thead>'
            f"<tbody>{rows}</tbody></table>")


def _timeseries_section(stats: dict[str, Any],
                        slo: dict[str, Any] | None) -> str:
    series = {key: entry for key, entry in sorted(stats.items())
              if isinstance(entry, dict)
              and entry.get("kind") == "timeseries"
              and entry.get("points")}
    if not series:
        return ""
    breaches_by_series: dict[str, list[float]] = {}
    for breach in (slo or {}).get("breaches", []):
        breaches_by_series.setdefault(
            breach["series"], []).append(float(breach["t"]))
    blocks = ["<h2>Time series</h2>"]
    for key, entry in series.items():
        points = _series_points(entry)
        last = points[-1]
        blocks.append(
            f'<div class="series"><div><span class="name">'
            f"{_esc(key)}</span> "
            f'<span class="stats">last={last[2]:.6g} · '
            f'{entry.get("n_samples", 0):,} samples · '
            f'bin={entry.get("bin_width", 0):g}s</span></div>'
            f"{_sparkline(points, breaches_by_series.get(key, ()))}"
            f"</div>")
    return "".join(blocks)


def _slo_section(slo: dict[str, Any] | None) -> str:
    if not slo:
        return ""
    specs = slo.get("specs", [])
    final = slo.get("final", {})
    breaches = slo.get("breaches", [])
    head = (f"<h2>Service-level objectives "
            f"{_chip(bool(slo.get('ok')))}</h2>")
    rows = []
    for spec in specs:
        name = spec.get("name", "?")
        entry = final.get(name, {})
        window = spec.get("window")
        expr = (f"{spec.get('series')}:{spec.get('agg', 'last')}"
                + (f":{window:g}" if window is not None else "")
                + f" {spec.get('op')} {spec.get('threshold')}")
        rows.append(
            f"<tr><td>{_esc(name)}</td><td>{_esc(expr)}</td>"
            f'<td class="num">{_fmt(entry.get("value"))}</td>'
            f"<td>{_chip(bool(entry.get('ok', True)))}</td></tr>")
    table = (f"<table><thead><tr><th>objective</th><th>rule</th>"
             f'<th class="num">final</th><th>verdict</th></tr>'
             f"</thead><tbody>{''.join(rows)}</tbody></table>")
    if not breaches:
        return head + table
    brows = []
    for breach in breaches:
        replica = breach.get("replica")
        brows.append(
            f'<tr><td class="num">{breach.get("t"):g}</td>'
            f"<td>{_esc(breach.get('slo'))}</td>"
            f'<td class="num">{_fmt(breach.get("value"))}</td>'
            f"<td>{_esc(breach.get('op'))} "
            f"{_fmt(breach.get('threshold'))}</td>"
            f'<td class="num">'
            f"{'—' if replica is None else replica}</td></tr>")
    timeline = (
        f"<h2>Breach timeline</h2><table><thead><tr>"
        f'<th class="num">sim t</th><th>objective</th>'
        f'<th class="num">value</th><th>rule</th>'
        f'<th class="num">replica</th></tr></thead>'
        f"<tbody>{''.join(brows)}</tbody></table>")
    return head + table + timeline


def _replication_section(replication: dict[str, Any] | None) -> str:
    if not replication:
        return ""
    seeds = replication.get("seeds", [])
    walls = replication.get("wall_seconds", [])
    attempts = replication.get("attempts", [])
    rows = []
    for i, seed in enumerate(seeds):
        rows.append(
            f'<tr><td class="num">{i}</td>'
            f'<td class="num">{seed}</td>'
            f'<td class="num">'
            f"{_fmt(walls[i]) if i < len(walls) else 'n/a'}</td>"
            f'<td class="num">'
            f"{attempts[i] if i < len(attempts) else 1}</td></tr>")
    failed = replication.get("failed_replicas") or []
    note = (f'<p class="sub">{len(failed)} replica(s) failed every '
            f"attempt</p>" if failed else "")
    return (
        f"<h2>Replication</h2>"
        f'<p class="sub">{replication.get("replicas")} replicas × '
        f"{replication.get('workers')} worker(s)</p>{note}"
        f'<table><thead><tr><th class="num">replica</th>'
        f'<th class="num">seed</th><th class="num">wall s</th>'
        f'<th class="num">attempts</th></tr></thead>'
        f"<tbody>{''.join(rows)}</tbody></table>")


def _instruments_section(stats: dict[str, Any]) -> str:
    other = {key: entry for key, entry in sorted(stats.items())
             if isinstance(entry, dict)
             and entry.get("kind") != "timeseries"}
    if not other:
        return ""
    rows = []
    for key, entry in other.items():
        kind = entry.get("kind", "?")
        if kind == "counter":
            detail = f"value={_fmt(entry.get('value'))}"
        elif kind == "gauge":
            detail = (f"last={_fmt(entry.get('value'))} "
                      f"time_mean={_fmt(entry.get('time_mean'))}")
        else:
            detail = (f"n={_fmt(entry.get('count'))} "
                      f"mean={_fmt(entry.get('mean'))} "
                      f"p95={_fmt(entry.get('p95'))}")
        rows.append(f"<tr><td>{_esc(key)}</td><td>{_esc(kind)}</td>"
                    f"<td>{_esc(detail)}</td></tr>")
    return (f"<h2>Instruments</h2><table><thead><tr><th>key</th>"
            f"<th>kind</th><th>aggregates</th></tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>")


def _report_body(report: dict[str, Any],
                 claim: str | None = None) -> str:
    slo = report.get("slo")
    parts = [
        f"<h1>{_esc(report.get('experiment', 'run'))}</h1>",
    ]
    if claim:
        parts.append(f'<p class="sub">{_esc(claim)}</p>')
    parts.append(
        f'<p class="muted">seed={_esc(report.get("seed"))} · '
        f'wall={_fmt(report.get("wall_seconds", 0.0))}s</p>')
    parts.append(_kpi_section(report.get("metrics", {})))
    parts.append(_slo_section(slo))
    parts.append(_timeseries_section(report.get("stats", {}), slo))
    parts.append(_replication_section(report.get("replication")))
    parts.append(_instruments_section(report.get("stats", {})))
    return "".join(parts)


# ----------------------------------------------------------------------
# Bench documents
# ----------------------------------------------------------------------

def _bench_body(document: dict[str, Any]) -> str:
    meta = document.get("meta", {})
    rows = []
    sparks = []
    for record in document.get("experiments", []):
        wall = record.get("wall_seconds", {}) or {}
        rate = record.get("events_per_sec") or {}
        rows.append(
            f"<tr><td>{_esc(record.get('id'))}</td>"
            f'<td class="num">{_fmt(wall.get("median"))}</td>'
            f'<td class="num">{_fmt(wall.get("min"))}</td>'
            f'<td class="num">{_fmt(wall.get("max"))}</td>'
            f'<td class="num">{_fmt(rate.get("median"))}</td>'
            f'<td class="num">'
            f"{_fmt(record.get('events_executed'))}</td>"
            f"<td>{_chip(bool(record.get('deterministic')), 'DET', 'NONDET')}"
            f"</td></tr>")
        samples = wall.get("samples") or []
        if len(samples) > 1:
            points = [(float(i), 1, float(v), float(v), float(v))
                      for i, v in enumerate(samples)]
            sparks.append(
                f'<div class="series"><div><span class="name">'
                f"{_esc(record.get('id'))}</span> "
                f'<span class="stats">wall seconds per repetition'
                f"</span></div>{_sparkline(points, width=620, height=72)}"
                f"</div>")
    table = (
        f"<h2>Experiments</h2><table><thead><tr><th>id</th>"
        f'<th class="num">median s</th><th class="num">min s</th>'
        f'<th class="num">max s</th><th class="num">ev/s</th>'
        f'<th class="num">events</th><th>determinism</th></tr>'
        f"</thead><tbody>{''.join(rows)}</tbody></table>")
    spark_html = ("<h2>Wall-clock per repetition</h2>"
                  + "".join(sparks) if sparks else "")
    return (
        f"<h1>Bench document</h1>"
        f'<p class="sub">{_esc(document.get("schema"))} '
        f'v{_esc(document.get("schema_version"))}</p>'
        f'<p class="muted">python {_esc(meta.get("python"))} · '
        f'{_esc(meta.get("platform"))} · repeat='
        f'{_esc(meta.get("repeat"))} seed={_esc(meta.get("seed"))}'
        f"</p>" + table + spark_html)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def render_html(data: Any, *, title: str | None = None) -> str:
    """Render a run record to a self-contained HTML dashboard.

    ``data`` may be a :class:`~repro.obs.report.RunReport`, its
    ``to_dict()`` payload, a full ``ExperimentResult`` dict (the
    ``repro run --json`` / ``repro replicate --json`` output), a
    ``BENCH_perf.json`` document, or a JSON string of any of those.
    """
    if hasattr(data, "to_dict"):
        data = data.to_dict()
    if isinstance(data, str):
        data = json.loads(data)
    if not isinstance(data, dict):
        raise TypeError(
            f"render_html expects a report/result/bench mapping, "
            f"got {type(data).__name__}")

    if data.get("schema") == "repro.bench_perf":
        body = _bench_body(data)
        default_title = "repro bench"
    elif "report" in data and isinstance(data["report"], dict):
        body = _report_body(data["report"], claim=data.get("claim"))
        default_title = f"repro run: {data.get('id', '?')}"
    elif "experiment" in data:
        body = _report_body(data)
        default_title = f"repro run: {data['experiment']}"
    else:
        raise ValueError(
            "unrecognized dashboard input: expected a RunReport "
            "dict, an ExperimentResult dict, or a repro.bench_perf "
            "document")

    page_title = title or default_title
    return ("<!DOCTYPE html>\n"
            '<html lang="en"><head><meta charset="utf-8">\n'
            '<meta name="viewport" '
            'content="width=device-width, initial-scale=1">\n'
            f"<title>{_esc(page_title)}</title>\n"
            f"<style>{_CSS}</style></head>\n"
            f"<body>{body}</body></html>\n")
