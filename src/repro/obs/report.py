"""Machine-readable run reports.

A :class:`RunReport` is the durable record of one experiment run: the
scalar KPIs the experiment chose to headline, aggregate statistics for
every instrument in the run's :class:`~repro.obs.metrics.MetricRegistry`
(histograms get 95% confidence intervals via
:func:`repro.utils.stats.confidence_interval`), a summary of the trace
when one was recorded, and the wall-clock cost.  Reports serialize to
plain JSON so perf trajectories can be diffed across commits.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.utils.stats import batch_means, confidence_interval

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricRegistry
    from repro.obs.trace import Tracer

__all__ = ["RunReport", "sanitize_json"]

#: Use the method of batch means once a histogram holds this many
#: (typically autocorrelated) observations.
_BATCH_THRESHOLD = 200


def _histogram_ci(values: list[float],
                  confidence: float = 0.95) -> tuple[float, float]:
    if len(values) >= _BATCH_THRESHOLD:
        values = batch_means(values, n_batches=20)
    return confidence_interval(values, confidence=confidence)


@dataclass
class RunReport:
    """Summary statistics and provenance of one experiment run."""

    experiment: str
    seed: int | None = None
    wall_seconds: float = 0.0
    #: Scalar KPIs recorded by the experiment itself.
    metrics: dict[str, float] = field(default_factory=dict)
    #: Aggregates per instrument key (see ``MetricRegistry.snapshot``);
    #: histogram entries carry ``ci_mean``/``ci_half`` at 95%.
    stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: ``Tracer.summary()`` when the run was traced, else ``None``.
    trace: dict[str, Any] | None = None
    trace_path: str | None = None
    #: Replication metadata when the report pools several replicas
    #: (:func:`repro.parallel.run_replicated`): replica count, worker
    #: count, per-replica seeds and across-replica KPI statistics.
    #: ``None`` for ordinary single runs.
    replication: dict[str, Any] | None = None
    #: ``SLOWatcher.summary()`` when the run evaluated objectives:
    #: specs, in-flight breach events (sim-time only — survives
    #: ``strip_timings()``) and the final per-objective verdict.
    slo: dict[str, Any] | None = None

    @classmethod
    def from_run(
        cls,
        experiment: str,
        *,
        seed: int | None = None,
        wall_seconds: float = 0.0,
        metrics: dict[str, float] | None = None,
        registry: "MetricRegistry | None" = None,
        tracer: "Tracer | None" = None,
        trace_path: str | None = None,
        slo: dict[str, Any] | None = None,
    ) -> "RunReport":
        """Assemble a report from the run's live instruments."""
        stats: dict[str, dict[str, Any]] = {}
        if registry is not None:
            stats = registry.snapshot()
            for metric in registry:
                if metric.kind == "histogram" and metric.values:
                    mean, half = _histogram_ci(metric.values)
                    stats[metric.key]["ci_mean"] = mean
                    stats[metric.key]["ci_half"] = half
        return cls(
            experiment=experiment,
            seed=seed,
            wall_seconds=wall_seconds,
            metrics=dict(metrics or {}),
            stats=stats,
            trace=tracer.summary() if tracer is not None else None,
            trace_path=trace_path,
            slo=slo,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "experiment": self.experiment,
            "seed": self.seed,
            "wall_seconds": self.wall_seconds,
            "metrics": dict(self.metrics),
            "stats": self.stats,
        }
        if self.trace is not None:
            data["trace"] = self.trace
        if self.trace_path is not None:
            data["trace_path"] = self.trace_path
        if self.replication is not None:
            data["replication"] = self.replication
        if self.slo is not None:
            data["slo"] = self.slo
        return data

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(sanitize_json(self.to_dict()), indent=indent,
                          sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunReport":
        return cls(
            experiment=data["experiment"],
            seed=data.get("seed"),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            metrics=dict(data.get("metrics", {})),
            stats=dict(data.get("stats", {})),
            trace=data.get("trace"),
            trace_path=data.get("trace_path"),
            replication=data.get("replication"),
            slo=data.get("slo"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def summary_lines(self) -> list[str]:
        """Human-readable digest (the CLI ``report`` view)."""
        lines = [f"run report: {self.experiment} "
                 f"(seed={self.seed}, {self.wall_seconds:.3f}s wall)"]
        if self.replication is not None:
            lines.append(
                f"  replication: {self.replication.get('replicas')} "
                f"replicas x {self.replication.get('workers')} "
                f"worker(s)")
            failed = self.replication.get("failed_replicas") or []
            if failed:
                indices = ", ".join(str(f["index"]) for f in failed)
                lines.append(
                    f"  PARTIAL: {len(failed)} replica(s) failed "
                    f"every attempt (indices {indices})")
            resumed = self.replication.get("resumed") or 0
            if resumed:
                lines.append(
                    f"  resumed: {resumed} replica(s) loaded from "
                    f"checkpoint journal")
        for key in sorted(self.metrics):
            lines.append(f"  {key} = {self.metrics[key]:.6g}")
        if self.trace is not None:
            lines.append(f"  trace: {self.trace['n_events']} events "
                         f"{self.trace['by_kind']}")
        if self.slo is not None:
            verdict = "OK" if self.slo.get("ok") else "BREACHED"
            lines.append(
                f"  slo: {verdict} ({len(self.slo.get('specs', []))} "
                f"objective(s), "
                f"{len(self.slo.get('breaches', []))} breach(es))")
            for breach in self.slo.get("breaches", []):
                lines.append(
                    f"    breach {breach['slo']} at t={breach['t']:g}:"
                    f" {breach['value']:.6g} {breach['op']} "
                    f"{breach['threshold']:g} violated")
        if self.stats:
            lines.append(f"  instruments: {len(self.stats)}")
        return lines


def _sanitize_key(key: Any) -> str:
    """Dictionary keys must be strings; non-finite and numpy keys get
    the same treatment as values before stringification."""
    if isinstance(key, str):
        return key
    return str(sanitize_json(key))


def sanitize_json(value: Any) -> Any:
    """Recursively make a payload strict-JSON safe.

    The guarantee holds at **every nesting depth**, not just the top
    level: NaN/±inf become ``None`` (strict JSON has no spelling for
    them) wherever they appear — including inside nested KPI dicts,
    lists, tuples and numpy containers; numpy scalars (including the
    float32/float16 flavours that are *not* ``isinstance(..., float)``)
    collapse to Python numbers; numpy arrays become (sanitized)
    lists; dictionary keys become strings; and unknown objects fall
    back to ``str``.  The result round-trips through
    ``json.dumps(..., allow_nan=False)``.
    """
    if isinstance(value, dict):
        return {_sanitize_key(k): sanitize_json(v)
                for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_json(v) for v in value]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, str):
        return value
    # numpy: arrays and scalars both expose tolist(), which maps to
    # (nested) Python builtins; recurse so NaN/inf inside are caught.
    if hasattr(value, "tolist"):
        return sanitize_json(value.tolist())
    if hasattr(value, "item"):  # non-numpy scalar wrappers
        return sanitize_json(value.item())
    return str(value)
