"""Regression gates over two ``BENCH_perf.json`` documents.

:func:`compare_documents` matches experiments by id and judges each on
its **median wall time**: a positive delta beyond the threshold is a
regression, a negative one an improvement.  When the executed-event
counts differ between the documents the workload itself changed (new
code simulates more or less), so the row is flagged
``workload_changed`` and judged on the throughput change (events/sec)
instead; if either side reports no event rate (``events_per_sec`` is
null for experiments that never touch the DES kernel) the wall-time
verdict still applies — a row is never left ungated.

``repro bench --compare OLD.json`` prints the delta table and exits
non-zero when any regression exceeds the threshold, which is what the
CI soft gate runs against ``benchmarks/baseline/BENCH_perf.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.utils.tables import Table

__all__ = ["Delta", "CompareReport", "compare_documents"]

#: Default regression threshold in percent of median wall time.
DEFAULT_THRESHOLD_PCT = 10.0


@dataclass(frozen=True)
class Delta:
    """Per-experiment comparison of old vs new measurements."""

    id: str
    old_median: float
    new_median: float
    delta_pct: float
    old_events: int
    new_events: int
    workload_changed: bool
    regressed: bool
    improved: bool
    rate_delta_pct: float | None = None


@dataclass
class CompareReport:
    """Outcome of comparing two bench documents."""

    threshold_pct: float
    deltas: list[Delta] = field(default_factory=list)
    #: Ids present in only one of the documents (not gated, reported).
    missing_in_new: list[str] = field(default_factory=list)
    missing_in_old: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Delta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def any_regression(self) -> bool:
        return bool(self.regressions)

    def table(self) -> Table:
        table = Table(
            ["id", "old_s", "new_s", "delta", "verdict"],
            title=f"perf delta (threshold ±{self.threshold_pct:g}%)",
        )
        for delta in self.deltas:
            if delta.regressed:
                verdict = "REGRESSED"
            elif delta.improved:
                verdict = "improved"
            else:
                verdict = "ok"
            if delta.workload_changed:
                verdict += " (workload changed)"
            table.add_row([
                delta.id,
                round(delta.old_median, 4),
                round(delta.new_median, 4),
                f"{delta.delta_pct:+.1f}%",
                verdict,
            ])
        for exp_id in self.missing_in_new:
            table.add_row([exp_id, "-", "-", "-", "missing in new"])
        for exp_id in self.missing_in_old:
            table.add_row([exp_id, "-", "-", "-", "missing in old"])
        return table

    def to_dict(self) -> dict[str, Any]:
        return {
            "threshold_pct": self.threshold_pct,
            "any_regression": self.any_regression,
            "deltas": [
                {
                    "id": d.id,
                    "old_median": d.old_median,
                    "new_median": d.new_median,
                    "delta_pct": d.delta_pct,
                    "workload_changed": d.workload_changed,
                    "regressed": d.regressed,
                    "improved": d.improved,
                }
                for d in self.deltas
            ],
            "missing_in_new": list(self.missing_in_new),
            "missing_in_old": list(self.missing_in_old),
        }


def _rate_median(record: dict[str, Any]) -> float | None:
    rate = record.get("events_per_sec")
    if isinstance(rate, dict):
        return rate.get("median")
    return None


def compare_documents(old: dict[str, Any], new: dict[str, Any], *,
                      threshold_pct: float = DEFAULT_THRESHOLD_PCT
                      ) -> CompareReport:
    """Compare two bench documents experiment by experiment."""
    old_by_id = {r["id"]: r for r in old.get("experiments", [])}
    new_by_id = {r["id"]: r for r in new.get("experiments", [])}
    report = CompareReport(threshold_pct=float(threshold_pct))
    for exp_id, new_record in new_by_id.items():
        old_record = old_by_id.get(exp_id)
        if old_record is None:
            report.missing_in_old.append(exp_id)
            continue
        old_median = float(old_record["wall_seconds"]["median"])
        new_median = float(new_record["wall_seconds"]["median"])
        delta_pct = (
            (new_median - old_median) / old_median * 100.0
            if old_median > 0.0 else 0.0
        )
        old_events = int(old_record.get("events_executed", 0))
        new_events = int(new_record.get("events_executed", 0))
        workload_changed = old_events != new_events
        old_rate = _rate_median(old_record)
        new_rate = _rate_median(new_record)
        rate_delta = (
            (new_rate - old_rate) / old_rate * 100.0
            if old_rate and new_rate else None
        )
        # A changed workload makes raw wall time incomparable; gate on
        # throughput when both sides report it.  When either side has
        # no event rate (``events_per_sec`` is null for kernel-less
        # experiments), fall back to the wall-time verdict — leaving
        # the row ungated would let any regression through silently.
        if workload_changed and rate_delta is not None:
            regressed = -rate_delta > threshold_pct
            improved = rate_delta > threshold_pct
        else:
            regressed = delta_pct > threshold_pct
            improved = -delta_pct > threshold_pct
        report.deltas.append(Delta(
            id=exp_id,
            old_median=old_median,
            new_median=new_median,
            delta_pct=delta_pct,
            old_events=old_events,
            new_events=new_events,
            workload_changed=workload_changed,
            regressed=regressed,
            improved=improved,
            rate_delta_pct=rate_delta,
        ))
    report.missing_in_new = sorted(set(old_by_id) - set(new_by_id))
    return report
