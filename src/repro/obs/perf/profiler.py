"""Wall-clock profiler for simulation runs.

Three coordinated instruments:

* **Simulated-process attribution** — a :class:`WallAttributionTracer`
  (a :class:`~repro.obs.trace.Tracer` subclass) timestamps every
  kernel ``step`` hook with ``time.perf_counter`` and charges the gap
  between consecutive steps to the process the earlier step resumed
  (the ``proc`` attribute the kernel attaches to step events).  The
  result is ``wall_by_owner``: host seconds per simulated process,
  with kernel-internal events grouped under ``event:<EventClass>``.
* **Statistical stacks** (default mode, ``mode="sample"``) — a
  SIGPROF/``setitimer`` sampler captures the full Python stack every
  few milliseconds of CPU time.  Full stacks make the collapsed-stack
  (folded) export exact, and the overhead is a few percent — the
  mode ``repro bench --profile`` uses.
* **Deterministic counts** (``mode="cprofile"``) — a :mod:`cProfile`
  session records exact call counts and per-function times.  Precise,
  but 3–5× slower on this kernel's many tiny calls; collapsed stacks
  are reconstructed from the caller/callee graph (flameprof-style
  expansion), so they are an approximation.

Either mode emits a ranked hotspot table and a folded-stack text file
that standard flamegraph tools (``flamegraph.pl``, speedscope,
inferno) consume directly.  Profiling is observational: a profiled
run computes exactly the same seeded result as an unprofiled one
(asserted in ``tests/obs/test_perf.py``; overhead is measured in
``benchmarks/bench_perf_guard.py`` and documented in
``docs/profiling.md``).
"""

from __future__ import annotations

import cProfile
import pstats
import signal
import sys
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Callable

from repro.obs.context import instrument
from repro.obs.trace import Tracer
from repro.utils.tables import Table

__all__ = ["WallAttributionTracer", "Hotspot", "ProfileReport",
           "Profiler", "collapse_stats"]

#: Default CPU-time sampling period of the statistical mode (seconds).
DEFAULT_SAMPLE_INTERVAL = 0.004


class WallAttributionTracer(Tracer):
    """Tracer that charges host wall-clock time to simulated owners.

    Every ``step`` emit timestamps the call with ``perf_counter`` and
    adds the interval since the previous step to the current *owner*:
    the resumed process (``proc`` attribute) when the kernel knows it,
    otherwise ``event:<EventClass>``.  All other emits (schedule
    calls, model events) happen inside a step's callbacks, so
    charging at step granularity is exact.

    By default no events are stored (``max_events=0``): attribution
    needs none, and skipping storage keeps the profiled run close to
    the plain one.  Pass a larger ``max_events`` to also keep the
    trace (spans, timelines) alongside the attribution.
    """

    #: Attribution happens at step granularity; asking the kernel to
    #: skip per-event schedule emits keeps profiled runs cheap.
    wants_schedule = False

    def __init__(self, max_events: int | None = 0):
        super().__init__(max_events=max_events)
        self.wall_by_owner: dict[str, float] = {}
        self._last_wall: float | None = None
        self._owners: tuple[str, ...] = ()
        self._store = max_events is None or max_events > 0

    def emit(self, time: float, kind: str, name: str,
             **attrs: Any) -> None:
        if kind == "step":
            now = perf_counter()
            if self._owners:
                # A fan-in step resumes several processes at once
                # (the kernel's `procs` attribute); the host time of
                # that step is split evenly between them rather than
                # charged wholesale to the first.
                bucket = self.wall_by_owner
                share = (now - self._last_wall) / len(self._owners)
                for owner in self._owners:
                    bucket[owner] = bucket.get(owner, 0.0) + share
            owners = attrs.get("procs")
            if owners is None:
                single = attrs.get("proc")
                owners = ((single,) if single is not None
                          else (f"event:{name}",))
            self._owners = tuple(owners)
            self._last_wall = now
        if self._store:
            super().emit(time, kind, name, **attrs)


class _StackSampler:
    """SIGPROF-driven statistical sampler (stdlib only, POSIX).

    ``setitimer(ITIMER_PROF, ...)`` fires every ``interval`` seconds
    of consumed CPU time; the handler walks the interrupted frame and
    counts the full stack.  Only the main thread is sampled — which
    is where every simulation in this repository runs.
    """

    def __init__(self, interval: float):
        self.interval = float(interval)
        self.counts: dict[tuple, int] = {}
        self.n_samples = 0
        self._previous_handler: Any = None

    @staticmethod
    def available() -> bool:
        return hasattr(signal, "setitimer") and hasattr(signal,
                                                        "SIGPROF")

    def _handler(self, signum, frame) -> None:
        stack = []
        while frame is not None:
            code = frame.f_code
            stack.append((code.co_filename, code.co_firstlineno,
                          code.co_name))
            frame = frame.f_back
        key = tuple(reversed(stack))
        self.counts[key] = self.counts.get(key, 0) + 1
        self.n_samples += 1

    def start(self) -> None:
        self._previous_handler = signal.signal(signal.SIGPROF,
                                               self._handler)
        signal.setitimer(signal.ITIMER_PROF, self.interval,
                         self.interval)

    def stop(self) -> None:
        signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
        if self._previous_handler is not None:
            signal.signal(signal.SIGPROF, self._previous_handler)
            self._previous_handler = None


def _frame_label(func: tuple) -> str:
    """``file:line:name`` label for one (file, line, name) key."""
    filename, line, name = func
    if filename == "~":  # C-level / builtin frame (cProfile)
        return name.strip("<>")
    return f"{Path(filename).name}:{line}:{name}"


def collapse_stats(stats: dict, *, min_fraction: float = 5e-4,
                   max_depth: int = 48) -> dict[str, float]:
    """Expand a pstats table into collapsed (folded) stacks.

    ``stats`` is the raw ``pstats.Stats(...).stats`` mapping
    ``func -> (cc, nc, tt, ct, callers)``.  cProfile records only the
    caller/callee graph, not full stacks, so — like ``flameprof`` —
    the expansion walks the graph from the roots and distributes each
    function's time over its call paths proportionally to the
    cumulative time of each caller edge.  Cycles are cut at the first
    repeated frame and paths contributing less than ``min_fraction``
    of total runtime are dropped.

    Returns ``{"root;child;...;leaf": seconds_of_own_time}``.
    """
    callees: dict[tuple, list[tuple[tuple, float]]] = {}
    roots: list[tuple] = []
    total = 0.0
    for func, (_cc, _nc, tt, _ct, callers) in stats.items():
        total += tt
        for caller, (_ccc, _cnc, _ctt, cct) in callers.items():
            callees.setdefault(caller, []).append((func, cct))
        # Roots: never called, or only by themselves (self-recursion).
        if all(caller is func for caller in callers):
            roots.append(func)
    folded: dict[str, float] = {}
    if total <= 0.0:
        return folded
    threshold = total * min_fraction

    def walk(func: tuple, fraction: float, stack: tuple,
             depth: int) -> None:
        _cc, _nc, tt, ct, _callers = stats[func]
        if ct * fraction < threshold or depth >= max_depth:
            return
        path = stack + (_frame_label(func),)
        own = tt * fraction
        if own >= threshold:
            key = ";".join(path)
            folded[key] = folded.get(key, 0.0) + own
        for child, edge_ct in callees.get(func, ()):
            if child is func or _frame_label(child) in path:
                continue  # cut recursion/cycles
            child_total = stats[child][3]
            if child_total <= 0.0:
                continue
            walk(child, fraction * edge_ct / child_total, path,
                 depth + 1)

    for root in sorted(roots, key=_frame_label):
        walk(root, 1.0, (), 0)
    return folded


@dataclass(frozen=True)
class Hotspot:
    """One ranked row of the function-level profile.

    ``calls`` is the exact call count in ``cprofile`` mode and
    ``None`` in ``sample`` mode (a sampler sees stacks, not calls);
    times in ``sample`` mode are estimates (samples × interval).
    """

    function: str
    tottime: float
    cumtime: float
    calls: int | None = None


class ProfileReport:
    """Everything one :class:`Profiler` session measured."""

    def __init__(self, *, mode: str, wall_seconds: float,
                 hotspots: list[Hotspot],
                 folded: dict[str, float],
                 wall_by_owner: dict[str, float],
                 n_samples: int = 0,
                 tracer: Tracer | None = None):
        self.mode = mode
        self.wall_seconds = wall_seconds
        self.hotspots = hotspots
        self.folded = folded
        self.wall_by_owner = dict(wall_by_owner)
        self.n_samples = n_samples
        self.tracer = tracer
        #: Return value of the profiled callable (set by
        #: :meth:`Profiler.profile`).
        self.result: Any = None

    # -- function-level view -------------------------------------------
    def hotspot_table(self, n: int = 15) -> Table:
        """Top-``n`` functions by own (tot) time, as a Table."""
        suffix = (f", {self.n_samples} samples"
                  if self.mode == "sample" else "")
        table = Table(
            ["function", "calls", "tottime_s", "cumtime_s", "tot_pct"],
            title=f"hotspots [{self.mode}] (top {n} of "
                  f"{len(self.hotspots)} functions, "
                  f"{self.wall_seconds:.3f}s wall{suffix})",
        )
        wall = self.wall_seconds or float("inf")
        for spot in self.hotspots[:n]:
            table.add_row([
                spot.function,
                spot.calls if spot.calls is not None else "-",
                round(spot.tottime, 6), round(spot.cumtime, 6),
                round(100.0 * spot.tottime / wall, 1),
            ])
        return table

    # -- process-level view --------------------------------------------
    def owner_table(self, n: int = 15) -> Table:
        """Top-``n`` simulated processes by attributed wall time."""
        table = Table(
            ["process", "wall_s", "wall_pct"],
            title=f"wall time by simulated process (top {n})",
        )
        wall = self.wall_seconds or float("inf")
        ranked = sorted(self.wall_by_owner.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        for owner, seconds in ranked[:n]:
            table.add_row([owner, round(seconds, 6),
                           round(100.0 * seconds / wall, 1)])
        return table

    # -- flamegraph export ---------------------------------------------
    def collapsed_stacks(self) -> str:
        """The folded-stack document (``stack count`` per line).

        Counts are integer microseconds of own time, directly
        consumable by ``flamegraph.pl`` / speedscope / inferno.  In
        ``sample`` mode the stacks are exact (captured whole); in
        ``cprofile`` mode they are reconstructed from the call graph.
        """
        lines = []
        for stack in sorted(self.folded):
            micros = int(round(self.folded[stack] * 1e6))
            if micros > 0:
                lines.append(f"{stack} {micros}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path) -> int:
        """Write :meth:`collapsed_stacks` to ``path``; returns #lines."""
        text = self.collapsed_stacks()
        Path(path).write_text(text, encoding="utf-8")
        return text.count("\n")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready digest (hotspots and owner attribution)."""
        return {
            "mode": self.mode,
            "wall_seconds": self.wall_seconds,
            "n_samples": self.n_samples,
            "hotspots": [
                {"function": s.function, "calls": s.calls,
                 "tottime": s.tottime, "cumtime": s.cumtime}
                for s in self.hotspots
            ],
            "wall_by_process": dict(self.wall_by_owner),
        }


class Profiler:
    """Profile one simulation run (or any callable) end to end.

    Combines per-process wall attribution (through the kernel's
    tracer hooks) with a function-level engine:

    * ``mode="sample"`` (default) — SIGPROF statistical sampling.
      Full stacks, exact flamegraphs, a few percent overhead.
    * ``mode="cprofile"`` — deterministic :mod:`cProfile`.  Exact
      call counts, 3–5× overhead on kernel-bound runs, graph-derived
      stacks.

    On platforms without ``setitimer`` (Windows), ``sample`` falls
    back to ``cprofile``.  Two usage patterns::

        # a) profile an experiment, feeding it the profiler's tracer
        profiler = Profiler()
        with profiler:
            result = experiments.run("e3", trace=profiler.tracer)
        profiler.report.hotspot_table().show()

        # b) profile any callable with ambient instrumentation
        report = Profiler().profile(my_simulation)

    ``trace=False`` skips the attribution tracer (engine only) for
    workloads that never touch the DES kernel.
    """

    def __init__(self, *, mode: str = "sample", trace: bool = True,
                 sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
                 max_events: int | None = 0):
        if mode not in ("sample", "cprofile"):
            raise ValueError(f"unknown profiler mode {mode!r}; "
                             f"use 'sample' or 'cprofile'")
        if mode == "sample" and not _StackSampler.available():
            mode = "cprofile"  # pragma: no cover - non-POSIX hosts
        self.mode = mode
        self.tracer: WallAttributionTracer | None = (
            WallAttributionTracer(max_events=max_events) if trace
            else None
        )
        self.report: ProfileReport | None = None
        self._sampler = (_StackSampler(sample_interval)
                         if mode == "sample" else None)
        self._profile = (cProfile.Profile()
                         if mode == "cprofile" else None)
        self._t0 = 0.0

    def __enter__(self) -> "Profiler":
        self._t0 = perf_counter()
        if self._sampler is not None:
            self._sampler.start()
        if self._profile is not None:
            self._profile.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._profile is not None:
            self._profile.disable()
        if self._sampler is not None:
            self._sampler.stop()
        wall = perf_counter() - self._t0
        if exc_type is None:
            self.report = self._build_report(wall)

    def profile(self, func: Callable[..., Any], *args: Any,
                **kwargs: Any) -> ProfileReport:
        """Run ``func`` fully instrumented and return the report.

        The profiler's tracer is installed as the ambient default, so
        every :class:`~repro.des.Environment` the callable creates is
        attributed.  The callable's return value is available as
        ``report.result``.
        """
        with instrument(tracer=self.tracer):
            with self:
                value = func(*args, **kwargs)
        assert self.report is not None
        self.report.result = value
        return self.report

    # ------------------------------------------------------------------
    def _build_report(self, wall: float) -> ProfileReport:
        if self._profile is not None:
            hotspots, folded, n_samples = self._from_cprofile()
        else:
            hotspots, folded, n_samples = self._from_samples()
        wall_by_owner = (dict(self.tracer.wall_by_owner)
                         if self.tracer is not None else {})
        return ProfileReport(
            mode=self.mode, wall_seconds=wall, hotspots=hotspots,
            folded=folded, wall_by_owner=wall_by_owner,
            n_samples=n_samples, tracer=self.tracer,
        )

    def _from_cprofile(self):
        stats = pstats.Stats(self._profile).stats
        hotspots = [
            Hotspot(function=_frame_label(func), calls=nc,
                    tottime=tt, cumtime=ct)
            for func, (_cc, nc, tt, ct, _callers) in stats.items()
        ]
        hotspots.sort(key=lambda s: (-s.tottime, s.function))
        return hotspots, collapse_stats(stats), 0

    def _from_samples(self):
        sampler = self._sampler
        assert sampler is not None
        interval = sampler.interval
        own: dict[str, int] = {}
        cum: dict[str, int] = {}
        folded: dict[str, float] = {}
        for stack, hits in sampler.counts.items():
            labels = [_frame_label(frame) for frame in stack]
            if labels:
                leaf = labels[-1]
                own[leaf] = own.get(leaf, 0) + hits
                for label in set(labels):
                    cum[label] = cum.get(label, 0) + hits
                key = ";".join(labels)
                folded[key] = folded.get(key, 0.0) + hits * interval
        hotspots = [
            Hotspot(function=label, calls=None,
                    tottime=own.get(label, 0) * interval,
                    cumtime=hits * interval)
            for label, hits in cum.items()
        ]
        hotspots.sort(key=lambda s: (-s.tottime, -s.cumtime,
                                     s.function))
        return hotspots, folded, sampler.n_samples


# Windows has neither SIGPROF nor setitimer; make the fallback check
# explicit for readers on that platform.
if sys.platform == "win32":  # pragma: no cover
    _StackSampler.available = staticmethod(lambda: False)
