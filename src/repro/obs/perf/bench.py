"""The ``repro bench`` harness: measured performance trajectories.

Runs registered experiments through :func:`repro.experiments.run`
``repeat`` times each (same seed every repetition, so the simulated
workload is bit-identical and wall-time variance is pure host noise)
and collects, per experiment:

* wall-clock seconds (all samples plus median/mean/min/max and a
  Student-t confidence interval — batch means kick in automatically
  for large sample counts, matching the run-report convention);
* the always-on kernel counters (:func:`repro.des.kernel_counters`):
  events scheduled/executed, peak heap depth, environments built;
* throughput in executed kernel events per second (``None`` for the
  purely analytical experiments that never touch the DES kernel);
* peak RSS of the process (``ru_maxrss``), and the experiment's
  deterministic headline KPIs.

The result serializes as ``BENCH_perf.json`` — a versioned document
(:data:`SCHEMA_NAME`/:data:`SCHEMA_VERSION`) that is byte-stable
across runs modulo the timing fields, so perf trajectories can be
committed, diffed and gated (see :mod:`repro.obs.perf.compare`).
"""

from __future__ import annotations

import gc
import json
import platform
import statistics
import sys
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Sequence

from repro.obs.report import sanitize_json
from repro.utils.stats import batch_means, confidence_interval
from repro.utils.tables import Table

__all__ = ["SCHEMA_NAME", "SCHEMA_VERSION", "TIMING_FIELDS",
           "measure_experiment", "run_bench", "write_document",
           "load_document", "validate_document", "strip_timings",
           "summary_table"]

SCHEMA_NAME = "repro.bench_perf"
SCHEMA_VERSION = 1

#: Per-experiment fields whose values legitimately differ between two
#: runs of the same code on the same machine.  Everything else in the
#: document is byte-stable for a fixed (ids, repeat, seed) invocation.
TIMING_FIELDS = ("wall_seconds", "events_per_sec", "peak_rss_kb")

#: Same convention as run reports: fall back to batch means once a
#: sample list is large enough to be treated as autocorrelated.
_BATCH_THRESHOLD = 200


def _peak_rss_kb() -> int | None:
    """Process peak RSS in KiB (``None`` where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX hosts
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - reported in bytes
        peak //= 1024
    return int(peak)


def _timing_stats(samples: Sequence[float]) -> dict[str, Any]:
    values = list(samples)
    ci_values = (batch_means(values, n_batches=20)
                 if len(values) >= _BATCH_THRESHOLD else values)
    _mean, half = confidence_interval(ci_values)
    return {
        "samples": values,
        "median": statistics.median(values),
        "mean": statistics.fmean(values),
        "min": min(values),
        "max": max(values),
        "ci_half": half if len(values) > 1 else None,
    }


def _timed_run(payload: tuple) -> tuple:
    """One timed repetition (also the process-pool worker body).

    Resets the (process-local) kernel counters, runs the experiment,
    and returns ``(wall, counter_snapshot, kpis)`` — everything the
    parent needs, since a worker's counters are invisible to it.
    """
    from repro import experiments
    from repro.des import kernel_counters

    exp_id, seed = payload
    # Finalize leftovers from earlier runs in this process before the
    # reset: suspended simulation generators schedule cleanup events
    # when the cycle collector frees them, and those increments would
    # otherwise land in this repetition's snapshot (same hygiene as
    # the replica worker in repro.parallel.engine).
    gc.collect()
    counters = kernel_counters()
    counters.reset()
    start = perf_counter()
    result = experiments.run(exp_id, seed=seed)
    wall = perf_counter() - start
    return wall, counters.snapshot(), dict(result.metrics)


def measure_experiment(exp_id: str, *, repeat: int = 3,
                       seed: int = 0,
                       warmup: bool = True,
                       workers: int = 1,
                       replicas: int = 1,
                       live: bool = False) -> dict[str, Any]:
    """Measure one experiment; returns its per-experiment record.

    ``warmup`` runs the experiment once untimed first, so lazy imports
    and allocator/caching warm-up never pollute the first sample.

    ``replicas > 1`` measures *replicated* runs: each repetition is
    one :func:`repro.parallel.run_replicated` call fanning ``replicas``
    seeds over ``workers`` processes — what the scaling gate times.
    With ``replicas == 1`` and ``workers > 1``, the repetitions
    themselves spread over the pool (each in a fresh process, via
    :func:`repro.parallel.parallel_map`); kernel counters and KPIs
    ship back in the worker's return value.
    """
    from repro import experiments

    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    experiment = experiments.get(exp_id)
    if warmup:
        experiments.run(exp_id, seed=seed)
    walls: list[float] = []
    rates: list[float] = []
    kernel: dict[str, int] = {}
    deterministic = True
    kpis: dict[str, float] = {}
    if replicas > 1:
        from repro.des import kernel_counters
        from repro.parallel import run_replicated

        counters = kernel_counters()
        samples = []
        for _ in range(repeat):
            # Same pre-reset finalization as _timed_run: keep earlier
            # repetitions' GC side effects out of this snapshot.
            gc.collect()
            counters.reset()
            start = perf_counter()
            result = run_replicated(exp_id, replicas=replicas,
                                    workers=workers, seed=seed,
                                    live=live)
            wall = perf_counter() - start
            # run_replicated merged the workers' counter snapshots
            # into this process's counters, so the usual snapshot
            # sees the cross-process kernel activity.
            samples.append((wall, counters.snapshot(),
                            dict(result.metrics)))
    else:
        from repro.parallel import parallel_map

        samples = parallel_map(
            _timed_run, [(exp_id, seed)] * repeat, workers=workers)
    for rep, (wall, snap, rep_kpis) in enumerate(samples):
        walls.append(wall)
        if snap["events_executed"]:
            rates.append(snap["events_executed"] / wall)
        if rep == 0:
            kernel = snap
            kpis = rep_kpis
        elif snap != kernel or rep_kpis != kpis:
            deterministic = False
    record: dict[str, Any] = {
        "id": experiment.id,
        "claim": experiment.claim,
        "repeat": repeat,
        "seed": seed,
        "deterministic": deterministic,
        "wall_seconds": _timing_stats(walls),
        "events_scheduled": kernel["events_scheduled"],
        "events_executed": kernel["events_executed"],
        "peak_heap_depth": kernel["peak_heap_depth"],
        "environments": kernel["environments"],
        "events_per_sec": (_timing_stats(rates) if rates else None),
        "peak_rss_kb": _peak_rss_kb(),
        "kpis": sanitize_json(kpis),
    }
    # Replica count is part of the measured workload; worker count is
    # execution geometry (stripped by :func:`strip_timings`).  Neither
    # appears at its default, so single-run documents keep their
    # pre-replication byte layout.
    if replicas > 1:
        record["replicas"] = replicas
    if workers > 1:
        record["workers"] = workers
    return record


def run_bench(ids: Sequence[str], *, repeat: int = 3, seed: int = 0,
              workers: int = 1, replicas: int = 1,
              live: bool = False, scheduler: str | None = None,
              progress: Callable[[str], None] | None = None
              ) -> dict[str, Any]:
    """Measure ``ids`` and assemble the full bench document.

    ``live`` streams per-replica progress to stderr while each
    replicated repetition runs (display only; ignored when
    ``replicas == 1`` since plain repetitions have no sweep to
    watch).  ``scheduler`` names the DES backend the measurements ran
    under; recorded in ``meta`` when it is not the default so
    per-backend documents are distinguishable (stripped for payload
    comparison — backends are byte-equivalent by contract).
    """
    records = []
    for exp_id in ids:
        if progress is not None:
            progress(exp_id)
        records.append(
            measure_experiment(exp_id, repeat=repeat, seed=seed,
                               workers=workers, replicas=replicas,
                               live=live))
    meta: dict[str, Any] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "repeat": repeat,
        "seed": seed,
        "ids": [r["id"] for r in records],
    }
    if replicas > 1:
        meta["replicas"] = replicas
    if workers > 1:
        meta["workers"] = workers
    if scheduler is not None and scheduler != "heap":
        meta["scheduler"] = scheduler
    return {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "meta": meta,
        "experiments": records,
    }


def write_document(document: dict[str, Any], path) -> Path:
    """Serialize a bench document (sorted keys, trailing newline)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(sanitize_json(document), indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return out


def load_document(path) -> dict[str, Any]:
    """Load and validate a bench document; raises ``ValueError`` on a
    malformed or wrong-schema file."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    errors = validate_document(document)
    if errors:
        raise ValueError(
            f"{path} is not a valid {SCHEMA_NAME} document: "
            + "; ".join(errors)
        )
    return document


def validate_document(document: Any) -> list[str]:
    """Validate against the published schema; returns error strings
    (empty list == valid)."""
    errors: list[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    if document.get("schema") != SCHEMA_NAME:
        errors.append(f"schema must be {SCHEMA_NAME!r}, "
                      f"got {document.get('schema')!r}")
    if document.get("schema_version") != SCHEMA_VERSION:
        errors.append(f"schema_version must be {SCHEMA_VERSION}, "
                      f"got {document.get('schema_version')!r}")
    meta = document.get("meta")
    if not isinstance(meta, dict):
        errors.append("meta missing or not an object")
    else:
        for field in ("python", "platform", "repeat", "seed", "ids"):
            if field not in meta:
                errors.append(f"meta.{field} missing")
    experiments = document.get("experiments")
    if not isinstance(experiments, list) or not experiments:
        errors.append("experiments missing or empty")
        return errors
    for index, record in enumerate(experiments):
        where = f"experiments[{index}]"
        if not isinstance(record, dict):
            errors.append(f"{where} is not an object")
            continue
        for field in ("id", "repeat", "seed", "wall_seconds",
                      "events_executed", "events_scheduled",
                      "peak_heap_depth", "kpis"):
            if field not in record:
                errors.append(f"{where}.{field} missing")
        timing = record.get("wall_seconds")
        if isinstance(timing, dict):
            for field in ("samples", "median", "mean", "min", "max"):
                if field not in timing:
                    errors.append(
                        f"{where}.wall_seconds.{field} missing")
            samples = timing.get("samples")
            if (isinstance(samples, list)
                    and isinstance(record.get("repeat"), int)
                    and len(samples) != record["repeat"]):
                errors.append(
                    f"{where}.wall_seconds.samples has "
                    f"{len(samples)} entries for repeat="
                    f"{record['repeat']}")
        elif "wall_seconds" in record:
            errors.append(f"{where}.wall_seconds is not an object")
    seen = [r.get("id") for r in experiments if isinstance(r, dict)]
    if len(seen) != len(set(seen)):
        errors.append("duplicate experiment ids")
    return errors


def strip_timings(document: dict[str, Any]) -> dict[str, Any]:
    """Copy of the document with every timing field removed — the
    byte-stable remainder two runs of the same code must agree on."""
    stripped = json.loads(json.dumps(sanitize_json(document)))
    # Worker count is execution geometry, not workload: documents
    # measured with different pool sizes must agree byte-for-byte
    # after stripping (``replicas`` stays — it changes the measured
    # workload).
    meta = stripped.get("meta")
    if isinstance(meta, dict):
        meta.pop("workers", None)
        # Scheduler backends are byte-equivalent by contract, so the
        # backend is execution geometry too.
        meta.pop("scheduler", None)
    for record in stripped.get("experiments", []):
        for field in TIMING_FIELDS:
            record.pop(field, None)
        record.pop("workers", None)
    return stripped


def summary_table(document: dict[str, Any]) -> Table:
    """Human-readable one-line-per-experiment digest."""
    meta = document.get("meta", {})
    table = Table(
        ["id", "median_s", "mean_s", "ci_half_s", "events", "events/s",
         "peak_heap"],
        title=f"bench: repeat={meta.get('repeat')} "
              f"seed={meta.get('seed')} (py{meta.get('python')})",
    )
    for record in document.get("experiments", []):
        timing = record["wall_seconds"]
        rate = record.get("events_per_sec")
        table.add_row([
            record["id"],
            round(timing["median"], 4),
            round(timing["mean"], 4),
            (round(timing["ci_half"], 4)
             if timing.get("ci_half") is not None else "-"),
            record["events_executed"],
            (format(int(rate["median"]), ",")
             if isinstance(rate, dict) else "-"),
            record["peak_heap_depth"],
        ])
    return table
