"""Performance observability: profiler, bench harness, regression gates.

The feedback loop the ROADMAP's "as fast as the hardware allows" goal
needs, built on the :mod:`repro.obs` substrate:

* :mod:`repro.obs.perf.profiler` — :class:`Profiler`: cProfile
  hotspots plus wall-clock attribution to simulated processes (via
  the kernel's tracer hooks) and collapsed-stack (flamegraph) export;
* :mod:`repro.obs.perf.bench` — the ``repro bench`` harness: measured
  wall time, kernel counters and throughput per experiment, written
  as the versioned, byte-stable ``BENCH_perf.json`` schema;
* :mod:`repro.obs.perf.compare` — delta reports and regression gates
  between two bench documents (the CI soft gate).

See ``docs/profiling.md`` for usage and the schema reference.
"""

from repro.obs.perf.bench import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    TIMING_FIELDS,
    load_document,
    measure_experiment,
    run_bench,
    strip_timings,
    summary_table,
    validate_document,
    write_document,
)
from repro.obs.perf.compare import (
    CompareReport,
    Delta,
    compare_documents,
)
from repro.obs.perf.profiler import (
    Hotspot,
    ProfileReport,
    Profiler,
    WallAttributionTracer,
    collapse_stats,
)

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "TIMING_FIELDS",
    "CompareReport",
    "Delta",
    "Hotspot",
    "ProfileReport",
    "Profiler",
    "WallAttributionTracer",
    "collapse_stats",
    "compare_documents",
    "load_document",
    "measure_experiment",
    "run_bench",
    "strip_timings",
    "summary_table",
    "validate_document",
    "write_document",
]
