"""Counters, gauges and histograms behind a shared registry.

Entities across the stack (stores, resources, channels, NoC links,
MANET sessions) emit through a :class:`MetricRegistry`; a run report
then snapshots the registry into plain dictionaries.  Instruments are
deliberately simple — everything is in-process and single-threaded,
like the simulations they observe.

Naming convention: metric names are ``snake_case`` with the measured
unit implied by the subsystem (simulated seconds, bits, joules);
labels distinguish entities (``registry.counter("channel_sent",
channel="primary")``).
"""

from __future__ import annotations

import math
from typing import Any, Iterator

from repro.utils.stats import SummaryStats

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry"]

#: Histograms stop *storing* individual observations beyond this many
#: samples (aggregates keep folding everything in); bounds memory on
#: packet-scale workloads.
DEFAULT_MAX_SAMPLES = 65_536


class Metric:
    """Common identity of every instrument: a name plus labels."""

    kind = "metric"

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = dict(labels)

    @property
    def key(self) -> str:
        """Canonical ``name{k=v,...}`` identity string."""
        if not self.labels:
            return self.name
        inner = ",".join(
            f"{k}={v}" for k, v in sorted(self.labels.items())
        )
        return f"{self.name}{{{inner}}}"

    def to_dict(self) -> dict[str, Any]:
        raise NotImplementedError

    def merge_from(self, other: "Metric") -> None:
        """Fold ``other`` (same kind, e.g. from a replica) into this
        instrument in place.  Subclasses define the fold."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.key}>"


class Counter(Metric):
    """A monotonically increasing total (events, bits, joules)."""

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str]):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, "
                             f"got {amount}")
        self.value += amount

    def merge_from(self, other: "Metric") -> None:
        """Totals from independent runs sum."""
        self.value += other.value

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge(Metric):
    """An instantaneous level (queue length, alive nodes, link load).

    Passing the current simulation time to :meth:`set` additionally
    accumulates a time-weighted average of the signal, the right
    summary for piecewise-constant quantities such as buffer levels.
    A time *earlier* than the previous sample starts a new segment
    (one run can create several environments, each with its own clock
    starting at zero) — the accumulated average spans all segments.
    """

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str]):
        super().__init__(name, labels)
        self.value = math.nan
        self.minimum = math.inf
        self.maximum = -math.inf
        self._last_t: float | None = None
        self._weight = 0.0
        self._weighted_sum = 0.0

    def set(self, value: float, t: float | None = None) -> None:
        """Record the signal taking ``value`` (from time ``t`` on)."""
        previous = self.value
        value = float(value)
        self.value = value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if t is None:
            return
        if self._last_t is not None and t > self._last_t:
            # Strictly positive spans only: a zero-width segment
            # contributes no weight, and skipping it keeps
            # ``0 * inf`` (previous level ±inf at an instantaneous
            # re-set) from poisoning the accumulator with NaN.
            span = t - self._last_t
            self._weight += span
            self._weighted_sum += span * previous
        self._last_t = t

    @property
    def time_mean(self) -> float:
        """Time-weighted mean (NaN when never set with a time)."""
        if self._weight == 0.0:
            return math.nan
        return self._weighted_sum / self._weight

    def merge_from(self, other: "Metric") -> None:
        """Fold an independent run's gauge into this one.

        Extremes combine; the time-weighted accumulators add (the
        merged ``time_mean`` weights each run by its own observed
        span, exactly the across-replica pooling a replicated
        experiment wants).  ``value`` — the *last* level seen — takes
        the other gauge's when it was ever set: replicas fold in
        replica order, so the merged last-value is deterministic.
        """
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        self._weight += other._weight
        self._weighted_sum += other._weighted_sum
        if not math.isnan(other.value):
            self.value = other.value

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "kind": self.kind,
            "value": self.value,
            "min": self.minimum,
            "max": self.maximum,
        }
        if self._weight > 0.0:
            data["time_mean"] = self.time_mean
        return data


class Histogram(Metric):
    """Distribution of observations (wait times, latencies, sizes).

    Aggregates fold in every observation via
    :class:`~repro.utils.stats.SummaryStats`; the raw values are also
    retained up to ``max_samples`` so a report can attach confidence
    intervals.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: dict[str, str],
                 max_samples: int = DEFAULT_MAX_SAMPLES):
        super().__init__(name, labels)
        self.stats = SummaryStats(name=self.key)
        self.values: list[float] = []
        self._max_samples = max_samples

    def observe(self, value: float) -> None:
        """Fold one observation into the distribution."""
        self.stats.add(value)
        if len(self.values) < self._max_samples:
            self.values.append(float(value))

    @property
    def count(self) -> int:
        return self.stats.count

    @property
    def mean(self) -> float:
        return self.stats.mean

    @property
    def capped(self) -> bool:
        """True once observations were folded but no longer stored."""
        return self.stats.count > len(self.values)

    def percentile(self, q: float) -> float:
        """Linear-interpolated ``q``-th percentile of the *retained*
        samples (``q`` in [0, 100]; NaN when empty).

        Notes
        -----
        **Capping bias.**  A histogram stops *storing* samples after
        ``max_samples`` observations (aggregates keep folding
        everything in), so once :attr:`capped` is true the percentile
        describes only the earliest ``max_samples`` observations of
        the run and is biased toward its early, possibly transient,
        phase.  :meth:`merge` concatenates retained samples and
        re-caps, which compounds the effect: the merged percentile
        over-weights the first operand's early samples.  Compare
        ``count`` with ``len(values)`` (or check :attr:`capped`) to
        detect the bias; aggregate statistics (``mean``, ``std``,
        ``min``, ``max``) remain exact over all observations.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], "
                             f"got {q}")
        if not self.values:
            return math.nan
        data = sorted(self.values)
        if len(data) == 1:
            return data[0]
        position = (len(data) - 1) * q / 100.0
        lower = int(position)
        fraction = position - lower
        if fraction == 0.0:
            return data[lower]
        return data[lower] + fraction * (data[lower + 1] - data[lower])

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram equivalent to both inputs combined.

        Aggregates merge exactly (Welford accumulators fold without
        loss); retained samples are concatenated, self first, and
        re-capped at this histogram's ``max_samples`` — see the
        capping-bias note on :meth:`percentile`.  The result keeps
        this histogram's name and labels.
        """
        merged = Histogram(self.name, self.labels,
                           max_samples=self._max_samples)
        merged.stats = self.stats.merge(other.stats)
        merged.values = (self.values
                         + other.values)[:self._max_samples]
        return merged

    def merge_from(self, other: "Metric") -> None:
        """In-place :meth:`merge` (same aggregates-exact, samples
        re-capped contract)."""
        self.stats = self.stats.merge(other.stats)
        room = self._max_samples - len(self.values)
        if room > 0:
            self.values.extend(other.values[:room])

    def to_dict(self) -> dict[str, Any]:
        s = self.stats
        return {
            "kind": self.kind,
            "count": s.count,
            "total": s.total,
            "mean": s.mean,
            "std": s.std,
            "min": s.minimum if s.count else math.nan,
            "max": s.maximum if s.count else math.nan,
        }


class MetricRegistry:
    """Shared collection of instruments, keyed by name and labels.

    ``counter``/``gauge``/``histogram``/``timeseries`` are
    get-or-create: asking twice
    for the same name and labels returns the same instrument, so
    entities can resolve their handles eagerly at construction and emit
    through plain attribute access afterwards.

    Examples
    --------
    >>> registry = MetricRegistry()
    >>> sent = registry.counter("channel_sent", channel="uplink")
    >>> sent.inc()
    >>> registry.counter("channel_sent", channel="uplink").value
    1.0
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, Metric] = {}

    def _get_or_create(self, cls, name: str,
                       labels: dict[str, str]) -> Metric:
        labels = {k: str(v) for k, v in labels.items()}
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"{metric.key} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the :class:`Counter` ``name{labels}``."""
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the :class:`Gauge` ``name{labels}``."""
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        """Get or create the :class:`Histogram` ``name{labels}``."""
        return self._get_or_create(Histogram, name, labels)

    def timeseries(self, name: str, **labels: str):
        """Get or create the
        :class:`~repro.obs.timeseries.TimeSeries` ``name{labels}``."""
        from repro.obs.timeseries import TimeSeries

        return self._get_or_create(TimeSeries, name, labels)

    def get(self, name: str, **labels: str) -> Metric | None:
        """Return the instrument if it exists, else ``None``."""
        labels = {k: str(v) for k, v in labels.items()}
        key = (name, tuple(sorted(labels.items())))
        return self._metrics.get(key)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def merge(self, other: "MetricRegistry") -> "MetricRegistry":
        """Fold every instrument of ``other`` into this registry.

        Instruments are matched by (name, labels); a key present only
        in ``other`` is adopted as a fresh instrument of the same
        kind.  Counters sum, gauges pool extremes and time-weighted
        accumulators, histograms merge exactly in the aggregates and
        re-cap retained samples (:meth:`Histogram.merge`).  Folding
        replicas in a fixed order makes the merged snapshot
        deterministic regardless of which worker finished first.
        Returns ``self`` so folds chain.
        """
        for key, metric in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                mine = type(metric)(metric.name, metric.labels)
                self._metrics[key] = mine
            elif type(mine) is not type(metric):
                raise TypeError(
                    f"cannot merge {metric.kind} {metric.key} into "
                    f"{mine.kind} of the same key"
                )
            mine.merge_from(metric)
        return self

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Serialize every instrument: ``{key: {kind, aggregates}}``."""
        return {
            metric.key: metric.to_dict()
            for metric in self._metrics.values()
        }
