"""Network-lifetime simulation (E9).

"network lifetime ... may be defined as the duration of time after
which a fixed percentage of multimedia hosts in the network 'die' as a
result of energy exhaustion."  Sessions between random pairs are routed
by the protocol under test and their energy drained along the route;
the simulation tracks when nodes die, when the death-fraction threshold
is crossed, and how many sessions were ever delivered.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.manet.network import ManetNetwork, random_network
from repro.manet.routing import RoutingProtocol
from repro.obs.context import active_metrics
from repro.utils.rng import spawn_rng

__all__ = ["LifetimeResult", "simulate_lifetime", "compare_protocols"]


@dataclass
class LifetimeResult:
    """Outcome of one lifetime simulation."""

    protocol: str
    lifetime_sessions: int          # sessions until death threshold
    first_death_session: int | None
    delivered: int
    failed: int
    total_energy: float
    alive_fraction_end: float
    deaths_timeline: list[int] = field(default_factory=list)
    #: Fault-injection accounting: events applied from the plan and
    #: sessions lost to transmitting over a stale (broken) route.
    n_fault_events: int = 0
    stale_route_failures: int = 0

    @property
    def delivery_ratio(self) -> float:
        """Delivered sessions over attempted."""
        attempted = self.delivered + self.failed
        return self.delivered / attempted if attempted else math.nan


def simulate_lifetime(
    protocol: RoutingProtocol,
    network: ManetNetwork,
    n_sessions: int = 20_000,
    bits_per_session: float = 80_000.0,
    death_fraction: float = 0.2,
    seed: int = 0,
    reroute_every: int = 1,
    fault_plan: dict[int, list[tuple[int, str]]] | None = None,
    route_repair: bool = True,
    traffic_pairs: int | None = None,
    track_drain: bool = True,
) -> LifetimeResult:
    """Drive random sessions until the death threshold or session cap.

    Parameters
    ----------
    protocol:
        Routing protocol under test.
    network:
        The (mutable) network; batteries drain in place.
    n_sessions:
        Upper bound on attempted sessions.
    bits_per_session:
        Data volume per session.
    death_fraction:
        Network is "dead" when this fraction of nodes has died.
    reroute_every:
        Sessions between route recomputations for a pair (1 = every
        session, modeling perfectly fresh routing state).
    fault_plan:
        ``{session: [(node_id, "fail" | "repair"), ...]}`` — mid-run
        node crashes and recoveries applied at the top of each session
        (see :func:`repro.resilience.faults.session_fault_plan`).
    route_repair:
        When True (default), a cached route containing a dead node is
        re-discovered before use; when False, the stale route is used
        as-is and the session burns energy up to the break — the
        non-resilient baseline against injected node faults.
    traffic_pairs:
        When given, sessions run between this many fixed endpoint
        pairs (hotspot traffic, e.g. a handful of media flows) instead
        of uniformly random pairs; fixed pairs exercise the route
        cache heavily, which is what makes stale routes hurt.
    track_drain:
        When True (default), close each node's session window into
        its EWMA drain-rate estimate after every session — the state
        :class:`~repro.manet.routing.LifetimePredictionRouting`
        reads.  Protocols that never consult drain predictions
        (min-power, battery-cost) can pass False to skip the
        per-session fold; routing decisions, energy accounting and
        results are unchanged, only ``drain_rate``/``window_energy``
        on the nodes are left unmaintained.
    """
    if not 0.0 < death_fraction <= 1.0:
        raise ValueError("death_fraction must lie in (0, 1]")
    if n_sessions < 1 or bits_per_session <= 0:
        raise ValueError("invalid session parameters")
    rng = spawn_rng(seed, "manet-sessions")
    node_ids = list(network.nodes)
    n_nodes = len(node_ids)
    threshold = math.ceil(death_fraction * n_nodes)

    pairs: list[tuple[int, int]] | None = None
    pair_indices = None
    if traffic_pairs is not None:
        if traffic_pairs < 1:
            raise ValueError("traffic_pairs must be >= 1")
        pairs = []
        for _ in range(traffic_pairs):
            a, b = rng.choice(node_ids, size=2, replace=False)
            pairs.append((int(a), int(b)))
        # Pre-draw every session's pair index in one vectorized call:
        # numpy's bounded-integer sampling consumes the bit stream one
        # value at a time, so this sequence is bit-identical to a
        # scalar draw per session — and after pair setup nothing else
        # reads this rng, so drawing past an early break is
        # unobservable.  ``.tolist()`` yields plain ints (faster list
        # indices than numpy scalars).
        pair_indices = rng.integers(len(pairs), size=n_sessions).tolist()

    delivered = 0
    failed = 0
    total_energy = 0.0
    deaths: list[int] = []
    first_death: int | None = None
    lifetime = n_sessions
    n_fault_events = 0
    stale_failures = 0
    route_cache: dict[tuple[int, int], tuple[list[int], int]] = {}
    nodes = network.nodes
    # The lifetime definition counts deaths "as a result of energy
    # exhaustion" — a transiently faulted node with charge left is out
    # of service, not dead.  Batteries only ever drain (repair does not
    # recharge), so the energy-dead set grows monotonically and is
    # maintained incrementally: seeded here, extended with each
    # session's newly dead instead of rescanned per session.
    energy_dead: set[int] = {
        node_id for node_id in node_ids
        if nodes[node_id].battery <= 0.0
    }

    # Session index of the most recent aliveness change (fault event
    # or energy death); cached routes validated after it need no
    # member-aliveness rescan.
    last_aliveness_change = 0
    # Only route members are ever charged energy (forwarding, RX and
    # control overhead), so only they can accumulate window energy or
    # a drain-rate estimate; the per-session EWMA fold walks this set
    # instead of every node (folding an untouched node is an exact
    # no-op).  Insertion-ordered, but fold order is immaterial: each
    # fold touches one node.
    touched: dict[int, object] = {}
    # Per-route forwarding plans (hop nodes + energies), keyed on the
    # route list's identity: positions are constant for the duration
    # of this call and cached routes are reused by object, so the
    # per-hop distance/radio work happens once per discovered route.
    # The route is kept in the value to pin its id against reuse.
    hop_plans: dict[int, tuple[list[int], list]] = {}

    for session in range(1, n_sessions + 1):
        if fault_plan:
            for node_id, action in fault_plan.get(session) or ():
                node = nodes[node_id]
                if action == "fail":
                    node.fail()
                elif action == "repair":
                    node.repair()
                else:
                    raise ValueError(f"unknown fault action {action!r}")
                n_fault_events += 1
                last_aliveness_change = session
        if len(energy_dead) >= threshold:
            lifetime = session - 1
            break
        if pairs is not None:
            src, dst = pairs[pair_indices[session - 1]]
        else:
            src, dst = rng.choice(node_ids, size=2, replace=False)
            src, dst = int(src), int(dst)
        endpoint = nodes[src]
        if endpoint.battery <= 0.0 or endpoint.failed:
            failed += 1
            continue
        endpoint = nodes[dst]
        if endpoint.battery <= 0.0 or endpoint.failed:
            failed += 1
            continue

        cached = route_cache.get((src, dst))
        if cached is not None and session - cached[1] < reroute_every:
            route = cached[0]
            # All members were alive when the route was found; a
            # rescan (inlined ManetNode.alive) is only needed if
            # aliveness changed anywhere since then.
            if route_repair and cached[1] <= last_aliveness_change:
                for node_id in route:
                    node = nodes[node_id]
                    if node.battery <= 0.0 or node.failed:
                        route = None
                        break
        else:
            route = None
        if route is None:
            route = protocol.find_route(network, src, dst)
            if route is not None:
                route_cache[(src, dst)] = (route, session)
        if route is None:
            failed += 1
            continue
        for node_id in route:
            if node_id not in touched:
                touched[node_id] = nodes[node_id]

        entry = hop_plans.get(id(route))
        if entry is None or entry[0] is not route:
            entry = (route, network.hop_plan(route, bits_per_session))
            hop_plans[id(route)] = entry
        energy, ok = network.forward_plan(entry[1])
        total_energy += energy
        if not ok:
            # The route broke mid-transfer (stale cache over a dead
            # node): the energy is spent, the session is lost.
            failed += 1
            stale_failures += 1
            route_cache.pop((src, dst), None)
        else:
            if protocol.control_overhead > 0:
                overhead = energy * protocol.control_overhead
                per_node = overhead / len(route)
                for node_id in route:
                    network.node(node_id).consume(per_node)
                total_energy += overhead
            delivered += 1

        if track_drain:
            for node in touched.values():
                # Inlined ManetNode.alive / end_window — the same EWMA
                # fold, minus ~2 method calls per node per session.
                if node.battery > 0.0 and not node.failed:
                    node.drain_rate = (
                        node._ewma_alpha * node.window_energy
                        + (1 - node._ewma_alpha) * node.drain_rate
                    )
                    node.window_energy = 0.0

        # Only nodes on this session's route spent energy (forwarding,
        # RX and control overhead all charge route members), so the
        # death scan is confined to them.
        newly_dead = [
            node_id for node_id in route
            if node_id not in energy_dead
            and nodes[node_id].battery <= 0.0
        ]
        if newly_dead:
            last_aliveness_change = session
            energy_dead.update(newly_dead)
            deaths.extend([session] * len(newly_dead))
            if first_death is None:
                first_death = session
    else:
        lifetime = n_sessions

    result = LifetimeResult(
        protocol=protocol.name,
        lifetime_sessions=lifetime,
        first_death_session=first_death,
        delivered=delivered,
        failed=failed,
        total_energy=total_energy,
        alive_fraction_end=network.alive_fraction(),
        deaths_timeline=deaths,
        n_fault_events=n_fault_events,
        stale_route_failures=stale_failures,
    )
    registry = active_metrics()
    if registry is not None:
        label = protocol.name
        registry.counter(
            "manet_delivered", protocol=label).inc(delivered)
        registry.counter(
            "manet_failed", protocol=label).inc(failed)
        registry.counter(
            "manet_deaths", protocol=label).inc(len(deaths))
        registry.counter(
            "manet_energy_j", protocol=label).inc(total_energy)
        registry.gauge(
            "manet_lifetime_sessions", protocol=label).set(lifetime)
    return result


def compare_protocols(
    protocols,
    n_nodes: int = 40,
    seed: int = 0,
    **sim_kwargs,
) -> dict[str, LifetimeResult]:
    """Run each protocol on an identical fresh network copy."""
    results: dict[str, LifetimeResult] = {}
    for protocol_cls in protocols:
        network = random_network(n_nodes=n_nodes, seed=seed)
        protocol = protocol_cls()
        results[protocol.name] = simulate_lifetime(
            protocol, network, seed=seed + 1, **sim_kwargs
        )
    return results
