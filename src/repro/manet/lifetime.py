"""Network-lifetime simulation (E9).

"network lifetime ... may be defined as the duration of time after
which a fixed percentage of multimedia hosts in the network 'die' as a
result of energy exhaustion."  Sessions between random pairs are routed
by the protocol under test and their energy drained along the route;
the simulation tracks when nodes die, when the death-fraction threshold
is crossed, and how many sessions were ever delivered.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.manet.network import ManetNetwork, random_network
from repro.manet.routing import RoutingProtocol
from repro.utils.rng import spawn_rng

__all__ = ["LifetimeResult", "simulate_lifetime", "compare_protocols"]


@dataclass
class LifetimeResult:
    """Outcome of one lifetime simulation."""

    protocol: str
    lifetime_sessions: int          # sessions until death threshold
    first_death_session: int | None
    delivered: int
    failed: int
    total_energy: float
    alive_fraction_end: float
    deaths_timeline: list[int] = field(default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        """Delivered sessions over attempted."""
        attempted = self.delivered + self.failed
        return self.delivered / attempted if attempted else math.nan


def simulate_lifetime(
    protocol: RoutingProtocol,
    network: ManetNetwork,
    n_sessions: int = 20_000,
    bits_per_session: float = 80_000.0,
    death_fraction: float = 0.2,
    seed: int = 0,
    reroute_every: int = 1,
) -> LifetimeResult:
    """Drive random sessions until the death threshold or session cap.

    Parameters
    ----------
    protocol:
        Routing protocol under test.
    network:
        The (mutable) network; batteries drain in place.
    n_sessions:
        Upper bound on attempted sessions.
    bits_per_session:
        Data volume per session.
    death_fraction:
        Network is "dead" when this fraction of nodes has died.
    reroute_every:
        Sessions between route recomputations for a pair (1 = every
        session, modeling perfectly fresh routing state).
    """
    if not 0.0 < death_fraction <= 1.0:
        raise ValueError("death_fraction must lie in (0, 1]")
    if n_sessions < 1 or bits_per_session <= 0:
        raise ValueError("invalid session parameters")
    rng = spawn_rng(seed, "manet-sessions")
    node_ids = list(network.nodes)
    n_nodes = len(node_ids)
    threshold = math.ceil(death_fraction * n_nodes)

    delivered = 0
    failed = 0
    total_energy = 0.0
    deaths: list[int] = []
    first_death: int | None = None
    lifetime = n_sessions
    route_cache: dict[tuple[int, int], tuple[list[int], int]] = {}

    for session in range(1, n_sessions + 1):
        alive_before = {
            n.node_id for n in network.alive_nodes()
        }
        if len(node_ids) - len(alive_before) >= threshold:
            lifetime = session - 1
            break
        src, dst = rng.choice(node_ids, size=2, replace=False)
        src, dst = int(src), int(dst)
        if src not in alive_before or dst not in alive_before:
            failed += 1
            continue

        cached = route_cache.get((src, dst))
        if cached is not None and session - cached[1] < reroute_every \
                and all(network.node(n).alive for n in cached[0]):
            route = cached[0]
        else:
            route = protocol.find_route(network, src, dst)
            if route is not None:
                route_cache[(src, dst)] = (route, session)
        if route is None:
            failed += 1
            continue

        energy = network.forward(route, bits_per_session)
        if protocol.control_overhead > 0:
            overhead = energy * protocol.control_overhead
            per_node = overhead / len(route)
            for node_id in route:
                network.node(node_id).consume(per_node)
            energy += overhead
        total_energy += energy
        delivered += 1

        for node in network.alive_nodes():
            node.end_window()

        newly_dead = [
            node_id for node_id in alive_before
            if not network.node(node_id).alive
        ]
        if newly_dead:
            deaths.extend([session] * len(newly_dead))
            if first_death is None:
                first_death = session
    else:
        lifetime = n_sessions

    return LifetimeResult(
        protocol=protocol.name,
        lifetime_sessions=lifetime,
        first_death_session=first_death,
        delivered=delivered,
        failed=failed,
        total_energy=total_energy,
        alive_fraction_end=network.alive_fraction(),
        deaths_timeline=deaths,
    )


def compare_protocols(
    protocols,
    n_nodes: int = 40,
    seed: int = 0,
    **sim_kwargs,
) -> dict[str, LifetimeResult]:
    """Run each protocol on an identical fresh network copy."""
    results: dict[str, LifetimeResult] = {}
    for protocol_cls in protocols:
        network = random_network(n_nodes=n_nodes, seed=seed)
        protocol = protocol_cls()
        results[protocol.name] = simulate_lifetime(
            protocol, network, seed=seed + 1, **sim_kwargs
        )
    return results
