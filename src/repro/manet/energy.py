"""First-order radio energy model for ad-hoc nodes (§4.2).

The classical sensor/MANET abstraction: transmitting k bits over
distance d costs electronics energy plus amplifier energy growing as a
power of distance; receiving costs electronics only.  Minimum-power
routing protocols "traditionally ignore the power dissipated on the
receiver side", so the model exposes TX and RX separately and lets the
routing experiments choose what to count.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RadioModel"]


@dataclass(frozen=True)
class RadioModel:
    """Energy figures of a short-range radio.

    Parameters
    ----------
    elec_energy_per_bit:
        TX/RX electronics, joules per bit.
    amp_energy_per_bit_m2:
        Amplifier coefficient ε, joules per bit per meter^exponent.
    path_loss_exponent:
        Distance exponent n (2 free-space, up to 4 indoors).
    """

    elec_energy_per_bit: float = 50e-9
    amp_energy_per_bit_m2: float = 100e-12
    path_loss_exponent: float = 2.0

    def __post_init__(self) -> None:
        if self.elec_energy_per_bit < 0 or self.amp_energy_per_bit_m2 < 0:
            raise ValueError("energies must be non-negative")
        if self.path_loss_exponent < 1.0:
            raise ValueError("exponent must be >= 1")

    def tx_energy(self, bits: float, distance: float) -> float:
        """Transmit energy for ``bits`` over ``distance`` meters."""
        if bits < 0 or distance < 0:
            raise ValueError("bits and distance must be non-negative")
        return bits * (
            self.elec_energy_per_bit
            + self.amp_energy_per_bit_m2
            * distance**self.path_loss_exponent
        )

    def rx_energy(self, bits: float) -> float:
        """Receive energy for ``bits``."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return bits * self.elec_energy_per_bit

    def hop_energy(self, bits: float, distance: float) -> float:
        """TX plus RX for one hop — the true per-hop network cost."""
        return self.tx_energy(bits, distance) + self.rx_energy(bits)
