"""Mobile ad-hoc networks of multimedia hosts (§4.2, E9): radio energy,
battery-aware nodes, connectivity, three routing protocols and the
network-lifetime harness."""

from repro.manet.energy import RadioModel
from repro.manet.lifetime import (
    LifetimeResult,
    compare_protocols,
    simulate_lifetime,
)
from repro.manet.mobility import RandomWalkMobility
from repro.manet.network import ManetNetwork, random_network
from repro.manet.node import ManetNode
from repro.manet.routing import (
    BatteryCostRouting,
    LifetimePredictionRouting,
    MinimumPowerRouting,
    PROTOCOLS,
    RoutingProtocol,
)

__all__ = [
    "RadioModel",
    "ManetNode",
    "ManetNetwork",
    "RandomWalkMobility",
    "random_network",
    "RoutingProtocol",
    "MinimumPowerRouting",
    "BatteryCostRouting",
    "LifetimePredictionRouting",
    "PROTOCOLS",
    "LifetimeResult",
    "simulate_lifetime",
    "compare_protocols",
]
