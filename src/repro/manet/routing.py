"""Energy-aware MANET routing protocols (E9, [30–32]).

Three protocols over the same connectivity graph:

* :class:`MinimumPowerRouting` (after [30]) — "Each link cost is set to
  the energy required for transmitting one packet of data across that
  link and Dijkstra's shortest path algorithm is used"; it repeatedly
  selects the same least-power routes and burns out the nodes on them.
* :class:`BatteryCostRouting` (after [31], MBCR-style) — link costs are
  inflated by the transmitter's depleted-battery cost 1/residual, so
  traffic routes around tired nodes.
* :class:`LifetimePredictionRouting` (after [32]) — picks the route
  whose bottleneck node has the largest *predicted* lifetime
  (residual / EWMA drain rate), a max-min criterion.

The battery/lifetime protocols "create additional control traffic",
modeled as a per-discovery energy surcharge on the route's nodes.
"""

from __future__ import annotations

import networkx as nx

from repro.manet.network import ManetNetwork

__all__ = [
    "RoutingProtocol",
    "MinimumPowerRouting",
    "BatteryCostRouting",
    "LifetimePredictionRouting",
    "PROTOCOLS",
]


class RoutingProtocol:
    """Base class: find a route for one session.

    Parameters
    ----------
    control_overhead:
        Extra energy per route discovery, as a fraction of the data
        energy, charged to every node on the chosen route.
    """

    name = "base"
    control_overhead = 0.0

    def find_route(self, network: ManetNetwork, src: int,
                   dst: int) -> list[int] | None:
        """Route from ``src`` to ``dst`` or ``None`` if unreachable."""
        raise NotImplementedError

    def _graph(self, network: ManetNetwork) -> nx.Graph:
        return network.connectivity_graph()


class MinimumPowerRouting(RoutingProtocol):
    """Least-transmit-energy path (Dijkstra on TX energy), per [30]."""

    name = "min-power"
    control_overhead = 0.0

    def find_route(self, network: ManetNetwork, src: int,
                   dst: int) -> list[int] | None:
        graph = self._graph(network)
        if src not in graph or dst not in graph:
            return None
        # Min-power link costs depend only on the topology, so for a
        # given connectivity graph the (src, dst) route is a pure
        # function — memoize it on the graph itself (graph-level attr
        # dict), which the network rebuilds on every topology change.
        memo = graph.graph.setdefault("_min_power_routes", {})
        route = memo.get((src, dst), False)
        if route is not False:
            return route
        # tx_energy_unit is precomputed per edge at graph build (the
        # same radio.tx_energy(1.0, distance) value this protocol used
        # to evaluate per relaxation).
        try:
            route = nx.dijkstra_path(graph, src, dst,
                                     weight="tx_energy_unit")
        except nx.NetworkXNoPath:
            route = None
        memo[(src, dst)] = route
        return route


class BatteryCostRouting(RoutingProtocol):
    """Battery-cost-aware routing (after [31]).

    Link cost = TX energy × f(residual) with f(r) = 1/r: a nearly-empty
    forwarder makes its links expensive, spreading load.
    """

    name = "battery-cost"
    control_overhead = 0.02

    def find_route(self, network: ManetNetwork, src: int,
                   dst: int) -> list[int] | None:
        graph = self._graph(network)
        if src not in graph or dst not in graph:
            return None

        def weight(u, v, data):
            residual = max(network.node(u).residual_fraction, 1e-6)
            return data["tx_energy_unit"] / residual

        try:
            return nx.dijkstra_path(graph, src, dst, weight=weight)
        except nx.NetworkXNoPath:
            return None


class LifetimePredictionRouting(RoutingProtocol):
    """Max-min predicted-lifetime routing (after [32]).

    LPR runs on top of a DSR-style on-demand discovery: the source
    learns a handful of (near-shortest) candidate routes and picks the
    one whose bottleneck node has the largest predicted lifetime
    (residual energy / EWMA drain rate).  Restricting the choice to
    discovered routes is what keeps the selected paths energy-sane —
    a pure max-min over the whole graph would happily take arbitrarily
    long detours through fresh nodes.

    Parameters
    ----------
    n_candidates:
        How many discovered routes the selection considers.
    """

    name = "lifetime-prediction"
    control_overhead = 0.02

    def __init__(self, n_candidates: int = 6):
        if n_candidates < 1:
            raise ValueError("n_candidates must be >= 1")
        self.n_candidates = n_candidates

    def find_route(self, network: ManetNetwork, src: int,
                   dst: int) -> list[int] | None:
        graph = self._graph(network)
        if src not in graph or dst not in graph:
            return None

        def bottleneck_lifetime(route: list[int]) -> float:
            # All forwarding nodes (and the receiver) must stay alive.
            return min(
                network.node(node_id).predicted_lifetime()
                for node_id in route[1:]
            )

        # Discovery metric: transmit energy inflated by the sender's
        # battery depletion (the route-request flooding of LPR reaches
        # the destination along paths that avoid tired forwarders), so
        # candidates are both energy-competitive and diverse; the
        # lifetime criterion then arbitrates among them.
        for u, v, data in graph.edges(data=True):
            residual = max(network.node(u).residual_fraction, 1e-6)
            data["tx_energy"] = data["tx_energy_unit"] / residual
        try:
            candidates = []
            for path in nx.shortest_simple_paths(
                    graph, src, dst, weight="tx_energy"):
                candidates.append(path)
                if len(candidates) >= self.n_candidates:
                    break
        except nx.NetworkXNoPath:
            return None
        if not candidates:
            return None
        return max(candidates, key=bottleneck_lifetime)


#: The protocol lineup of the E9 bench.
PROTOCOLS = (
    MinimumPowerRouting,
    BatteryCostRouting,
    LifetimePredictionRouting,
)
