"""MANET nodes: position, battery and drain-rate bookkeeping.

"In MANETs, every multimedia host has to perform the functions of a
router.  So if some hosts die early due to lack of energy ... it may
not be possible for other hosts in the network to communicate" (§4.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["ManetNode"]


@dataclass
class ManetNode:
    """A multimedia host acting as a router.

    Parameters
    ----------
    node_id:
        Unique identifier.
    x, y:
        Position in meters.
    battery:
        Remaining energy in joules.
    """

    node_id: int
    x: float
    y: float
    battery: float
    initial_battery: float = field(default=0.0)
    #: Exponentially-weighted drain-rate estimate (J per session
    #: window), the quantity Lifetime Prediction Routing tracks.
    drain_rate: float = field(default=0.0)
    #: Energy consumed in the current session window (reset by
    #: :meth:`end_window`).
    window_energy: float = field(default=0.0)
    #: True while an injected fault (crash, capture, hardware death —
    #: anything other than energy exhaustion) holds the node down.
    failed: bool = field(default=False)
    _ewma_alpha: float = field(default=0.3, repr=False)

    def __post_init__(self) -> None:
        if self.battery <= 0:
            raise ValueError("battery must start positive")
        if self.initial_battery <= 0:
            self.initial_battery = self.battery

    @property
    def alive(self) -> bool:
        """True while the battery holds charge and no fault is
        active."""
        return self.battery > 0.0 and not self.failed

    def fail(self, cause: object = None) -> None:
        """Take the node down for a non-energy reason."""
        self.failed = True

    def repair(self) -> None:
        """Clear an injected fault; the node revives if its battery
        still holds charge."""
        self.failed = False

    @property
    def residual_fraction(self) -> float:
        """Remaining battery as a fraction of the initial charge."""
        return max(self.battery, 0.0) / self.initial_battery

    def distance_to(self, other: "ManetNode") -> float:
        """Euclidean distance in meters."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def consume(self, energy: float) -> None:
        """Drain ``energy`` joules within the current window."""
        if energy < 0:
            raise ValueError("energy must be non-negative")
        self.battery -= energy
        self.window_energy += energy

    def end_window(self) -> None:
        """Close a session window: fold its energy into the EWMA drain
        rate.  Idle windows decay the estimate, so a node that stopped
        forwarding regains an optimistic prediction over time."""
        self.drain_rate = (
            self._ewma_alpha * self.window_energy
            + (1 - self._ewma_alpha) * self.drain_rate
        )
        self.window_energy = 0.0

    def predicted_lifetime(self) -> float:
        """Sessions until death at the current drain rate (LPR's
        prediction); infinite when the node has seen no traffic."""
        if not self.alive:
            return 0.0
        if self.drain_rate <= 0:
            return math.inf
        return self.battery / self.drain_rate
