"""The ad-hoc network: nodes, connectivity and session forwarding."""

from __future__ import annotations

import networkx as nx

from repro.manet.energy import RadioModel
from repro.manet.node import ManetNode
from repro.utils.rng import spawn_rng

__all__ = ["ManetNetwork", "random_network"]

# Module-level caches shared across ManetNetwork instances.  A fault
# sweep runs many simulations over identically-seeded (same positions,
# same radio) networks, so keys carry everything a value depends on —
# radio model (frozen dataclass, hashable), tx_range, node ids and
# positions — and hits are exact across instances.
#
# _FULL_EDGES: all-pairs in-range edge list for a node layout,
# regardless of aliveness: (a_id, b_id, distance, tx_energy_unit).
# _GRAPHS: built connectivity graphs per alive subset.  Graph-level
# annotations the routing protocols attach (e.g. min-power route
# memos) are pure functions of topology + radio, so sharing them is
# exact too.
_FULL_EDGES: dict[tuple, list[tuple[int, int, float, float]]] = {}
_GRAPHS: dict[tuple, nx.Graph] = {}


class ManetNetwork:
    """A set of nodes within radio range of each other.

    Parameters
    ----------
    nodes:
        The hosts.
    radio:
        Shared radio energy model.
    tx_range:
        Maximum link distance in meters.
    """

    def __init__(self, nodes: list[ManetNode],
                 radio: RadioModel | None = None,
                 tx_range: float = 250.0):
        if not nodes:
            raise ValueError("network needs at least one node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids")
        if tx_range <= 0:
            raise ValueError("tx_range must be positive")
        self.nodes = {n.node_id: n for n in nodes}
        self.radio = radio or RadioModel()
        self.tx_range = tx_range
        # Pure-function memos over the radio model: TX energy keyed on
        # (bits, distance), RX energy keyed on bits.  Distances repeat
        # exactly while positions are static, and the values are
        # recomputed (not guessed) on any new distance, so the caches
        # stay exact under mobility too.
        self._tx_energy_cache: dict[tuple[float, float], float] = {}
        self._rx_energy_cache: dict[float, float] = {}

    def node(self, node_id: int) -> ManetNode:
        """Look up a node."""
        return self.nodes[node_id]

    def alive_nodes(self) -> list[ManetNode]:
        """Nodes with remaining battery."""
        return [n for n in self.nodes.values() if n.alive]

    def alive_fraction(self) -> float:
        """Fraction of nodes still alive."""
        return len(self.alive_nodes()) / len(self.nodes)

    def connectivity_graph(self) -> nx.Graph:
        """Undirected graph of links between alive nodes in range.

        Each edge carries ``distance`` and ``tx_energy_unit`` (the TX
        energy for one bit across it, precomputed so routing metrics
        never re-evaluate the radio model per Dijkstra relaxation).

        Graphs are cached (module-wide, keyed on radio, range, alive
        nodes and positions — the only inputs), so battery drain
        between topology changes, fail→repair cycles that restore an
        earlier topology, and identically-seeded sibling networks in a
        sweep all reuse a built graph instead of an O(n^2) rebuild.
        Callers share the cached instance: annotating extra edge/graph
        attributes is fine (the routing protocols do), mutating its
        structure is not.
        """
        radio = self.radio
        tx_range = self.tx_range
        alive_key = tuple(
            (n.node_id, n.x, n.y)
            for n in self.nodes.values()
            if n.battery > 0.0 and not n.failed
        )
        key = (radio, tx_range, alive_key)
        graph = _GRAPHS.get(key)
        if graph is not None:
            return graph
        # All-pairs edge precompute for this layout: pairs are walked
        # in node order here and filtered by aliveness below, the same
        # relative (and therefore adjacency-insertion) order the naive
        # alive×alive loop produced — Dijkstra tie-breaks are
        # insertion-order-sensitive, so this must not change.
        full_key = (radio, tx_range,
                    tuple((n.node_id, n.x, n.y)
                          for n in self.nodes.values()))
        edges = _FULL_EDGES.get(full_key)
        if edges is None:
            everyone = list(self.nodes.values())
            tx_energy = radio.tx_energy
            edges = []
            for i, a in enumerate(everyone):
                for b in everyone[i + 1:]:
                    distance = a.distance_to(b)
                    if distance <= tx_range:
                        edges.append((a.node_id, b.node_id, distance,
                                      tx_energy(1.0, distance)))
            if len(_FULL_EDGES) >= 64:
                # Mobility workloads never repeat a layout; bound the
                # cache instead of holding every historic one.
                _FULL_EDGES.clear()
            _FULL_EDGES[full_key] = edges
        alive_ids = {node_id for node_id, _, _ in alive_key}
        graph = nx.Graph()
        graph.add_nodes_from(node_id for node_id, _, _ in alive_key)
        add_edge = graph.add_edge
        for a_id, b_id, distance, unit in edges:
            if a_id in alive_ids and b_id in alive_ids:
                add_edge(a_id, b_id, distance=distance,
                         tx_energy_unit=unit)
        if len(_GRAPHS) >= 2048:
            _GRAPHS.clear()
        _GRAPHS[key] = graph
        return graph

    def is_connected(self) -> bool:
        """True when alive nodes form one component."""
        graph = self.connectivity_graph()
        if graph.number_of_nodes() <= 1:
            return False
        return nx.is_connected(graph)

    def forward(self, route: list[int], bits: float,
                count_rx: bool = True) -> float:
        """Push ``bits`` along ``route``, draining batteries.

        Returns the total energy spent.  Every hop charges the sender
        the TX energy and (optionally) the receiver the RX energy.
        """
        if len(route) < 2:
            raise ValueError("route needs at least two nodes")
        nodes = self.nodes
        tx_cache = self._tx_energy_cache
        radio = self.radio
        rx = 0.0
        if count_rx:
            rx = self._rx_energy_cache.get(bits, -1.0)
            if rx < 0.0:
                rx = self._rx_energy_cache[bits] = radio.rx_energy(bits)
        total = 0.0
        for src_id, dst_id in zip(route, route[1:]):
            src = nodes[src_id]
            dst = nodes[dst_id]
            distance = src.distance_to(dst)
            tx = tx_cache.get((bits, distance), -1.0)
            if tx < 0.0:
                tx = tx_cache[(bits, distance)] = radio.tx_energy(
                    bits, distance)
            # Inlined ManetNode.consume (plain attribute math).
            src.battery -= tx
            src.window_energy += tx
            total += tx
            if count_rx:
                dst.battery -= rx
                dst.window_energy += rx
                total += rx
        return total

    def forward_partial(self, route: list[int], bits: float,
                        count_rx: bool = True) -> tuple[float, bool]:
        """Push ``bits`` along ``route`` until a dead hop breaks it.

        Models transmission over a *stale* route: each live sender
        spends TX energy into the void, but the session dies at the
        first dead relay.  Returns ``(energy_spent, delivered)``.
        """
        if len(route) < 2:
            raise ValueError("route needs at least two nodes")
        nodes = self.nodes
        tx_cache = self._tx_energy_cache
        radio = self.radio
        rx = 0.0
        if count_rx:
            rx = self._rx_energy_cache.get(bits, -1.0)
            if rx < 0.0:
                rx = self._rx_energy_cache[bits] = radio.rx_energy(bits)
        total = 0.0
        for src_id, dst_id in zip(route, route[1:]):
            src = nodes[src_id]
            dst = nodes[dst_id]
            # Inlined ManetNode.alive / consume (hot path: one check
            # and two attribute updates per hop).
            if src.battery <= 0.0 or src.failed:
                return total, False
            distance = src.distance_to(dst)
            tx = tx_cache.get((bits, distance), -1.0)
            if tx < 0.0:
                tx = tx_cache[(bits, distance)] = radio.tx_energy(
                    bits, distance)
            src.battery -= tx
            src.window_energy += tx
            total += tx
            if dst.battery <= 0.0 or dst.failed:
                return total, False
            if count_rx:
                dst.battery -= rx
                dst.window_energy += rx
                total += rx
        return total, True

    def hop_plan(self, route: list[int], bits: float,
                 count_rx: bool = True
                 ) -> list[tuple[ManetNode, ManetNode, float, float]]:
        """Precompute per-hop ``(src, dst, tx_energy, rx_energy)`` for
        forwarding ``bits`` along ``route``.

        A plan is valid while node positions are unchanged (energies
        are pure functions of distance); aliveness and batteries are
        read live at execution time by :meth:`forward_plan`, so a plan
        may be executed many times — the point: session drivers that
        reuse cached routes skip the per-hop distance/radio work.
        """
        if len(route) < 2:
            raise ValueError("route needs at least two nodes")
        nodes = self.nodes
        tx_cache = self._tx_energy_cache
        radio = self.radio
        rx = 0.0
        if count_rx:
            rx = self._rx_energy_cache.get(bits, -1.0)
            if rx < 0.0:
                rx = self._rx_energy_cache[bits] = radio.rx_energy(bits)
        plan = []
        for src_id, dst_id in zip(route, route[1:]):
            src = nodes[src_id]
            dst = nodes[dst_id]
            distance = src.distance_to(dst)
            tx = tx_cache.get((bits, distance), -1.0)
            if tx < 0.0:
                tx = tx_cache[(bits, distance)] = radio.tx_energy(
                    bits, distance)
            plan.append((src, dst, tx, rx))
        return plan

    def forward_plan(self, plan, count_rx: bool = True
                     ) -> tuple[float, bool]:
        """Execute a :meth:`hop_plan`: same semantics (and float-level
        arithmetic) as :meth:`forward_partial` over the plan's route.
        """
        total = 0.0
        for src, dst, tx, rx in plan:
            if src.battery <= 0.0 or src.failed:
                return total, False
            src.battery -= tx
            src.window_energy += tx
            total += tx
            if dst.battery <= 0.0 or dst.failed:
                return total, False
            if count_rx:
                dst.battery -= rx
                dst.window_energy += rx
                total += rx
        return total, True

    def __len__(self) -> int:
        return len(self.nodes)


def random_network(
    n_nodes: int = 40,
    area: float = 1_000.0,
    battery: float = 2.0,
    tx_range: float = 250.0,
    radio: RadioModel | None = None,
    seed: int = 0,
) -> ManetNetwork:
    """Uniformly scattered nodes over an ``area`` × ``area`` square."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    rng = spawn_rng(seed, "manet-topology")
    nodes = [
        ManetNode(
            node_id=i,
            x=float(rng.random() * area),
            y=float(rng.random() * area),
            battery=battery,
        )
        for i in range(n_nodes)
    ]
    return ManetNetwork(nodes, radio=radio, tx_range=tx_range)
