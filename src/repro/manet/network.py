"""The ad-hoc network: nodes, connectivity and session forwarding."""

from __future__ import annotations

import networkx as nx

from repro.manet.energy import RadioModel
from repro.manet.node import ManetNode
from repro.utils.rng import spawn_rng

__all__ = ["ManetNetwork", "random_network"]


class ManetNetwork:
    """A set of nodes within radio range of each other.

    Parameters
    ----------
    nodes:
        The hosts.
    radio:
        Shared radio energy model.
    tx_range:
        Maximum link distance in meters.
    """

    def __init__(self, nodes: list[ManetNode],
                 radio: RadioModel | None = None,
                 tx_range: float = 250.0):
        if not nodes:
            raise ValueError("network needs at least one node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate node ids")
        if tx_range <= 0:
            raise ValueError("tx_range must be positive")
        self.nodes = {n.node_id: n for n in nodes}
        self.radio = radio or RadioModel()
        self.tx_range = tx_range

    def node(self, node_id: int) -> ManetNode:
        """Look up a node."""
        return self.nodes[node_id]

    def alive_nodes(self) -> list[ManetNode]:
        """Nodes with remaining battery."""
        return [n for n in self.nodes.values() if n.alive]

    def alive_fraction(self) -> float:
        """Fraction of nodes still alive."""
        return len(self.alive_nodes()) / len(self.nodes)

    def connectivity_graph(self) -> nx.Graph:
        """Undirected graph of links between alive nodes in range."""
        graph = nx.Graph()
        alive = self.alive_nodes()
        graph.add_nodes_from(n.node_id for n in alive)
        for i, a in enumerate(alive):
            for b in alive[i + 1:]:
                distance = a.distance_to(b)
                if distance <= self.tx_range:
                    graph.add_edge(a.node_id, b.node_id,
                                   distance=distance)
        return graph

    def is_connected(self) -> bool:
        """True when alive nodes form one component."""
        graph = self.connectivity_graph()
        if graph.number_of_nodes() <= 1:
            return False
        return nx.is_connected(graph)

    def forward(self, route: list[int], bits: float,
                count_rx: bool = True) -> float:
        """Push ``bits`` along ``route``, draining batteries.

        Returns the total energy spent.  Every hop charges the sender
        the TX energy and (optionally) the receiver the RX energy.
        """
        if len(route) < 2:
            raise ValueError("route needs at least two nodes")
        total = 0.0
        for src_id, dst_id in zip(route, route[1:]):
            src = self.nodes[src_id]
            dst = self.nodes[dst_id]
            distance = src.distance_to(dst)
            tx = self.radio.tx_energy(bits, distance)
            src.consume(tx)
            total += tx
            if count_rx:
                rx = self.radio.rx_energy(bits)
                dst.consume(rx)
                total += rx
        return total

    def forward_partial(self, route: list[int], bits: float,
                        count_rx: bool = True) -> tuple[float, bool]:
        """Push ``bits`` along ``route`` until a dead hop breaks it.

        Models transmission over a *stale* route: each live sender
        spends TX energy into the void, but the session dies at the
        first dead relay.  Returns ``(energy_spent, delivered)``.
        """
        if len(route) < 2:
            raise ValueError("route needs at least two nodes")
        total = 0.0
        for src_id, dst_id in zip(route, route[1:]):
            src = self.nodes[src_id]
            dst = self.nodes[dst_id]
            if not src.alive:
                return total, False
            tx = self.radio.tx_energy(bits, src.distance_to(dst))
            src.consume(tx)
            total += tx
            if not dst.alive:
                return total, False
            if count_rx:
                rx = self.radio.rx_energy(bits)
                dst.consume(rx)
                total += rx
        return total, True

    def __len__(self) -> int:
        return len(self.nodes)


def random_network(
    n_nodes: int = 40,
    area: float = 1_000.0,
    battery: float = 2.0,
    tx_range: float = 250.0,
    radio: RadioModel | None = None,
    seed: int = 0,
) -> ManetNetwork:
    """Uniformly scattered nodes over an ``area`` × ``area`` square."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    rng = spawn_rng(seed, "manet-topology")
    nodes = [
        ManetNode(
            node_id=i,
            x=float(rng.random() * area),
            y=float(rng.random() * area),
            battery=battery,
        )
        for i in range(n_nodes)
    ]
    return ManetNetwork(nodes, radio=radio, tx_range=tx_range)
