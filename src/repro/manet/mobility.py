"""Lightweight node mobility for MANET studies.

Session-granular random-walk mobility: between sessions every alive
node takes a bounded random step inside the deployment area.  Enough to
exercise route re-discovery under churn without a full waypoint model.
"""

from __future__ import annotations

import numpy as np

from repro.manet.network import ManetNetwork

__all__ = ["RandomWalkMobility"]


class RandomWalkMobility:
    """Bounded random-walk mobility inside a square area.

    Parameters
    ----------
    area:
        Side length of the deployment square, meters.
    max_step:
        Maximum per-axis displacement per step, meters.
    """

    def __init__(self, area: float = 1_000.0, max_step: float = 20.0):
        if area <= 0 or max_step < 0:
            raise ValueError("area must be positive, step non-negative")
        self.area = area
        self.max_step = max_step

    def step(self, network: ManetNetwork,
             rng: np.random.Generator) -> None:
        """Move every alive node one step, clamped to the area."""
        for node in network.alive_nodes():
            node.x = float(np.clip(
                node.x + rng.uniform(-self.max_step, self.max_step),
                0.0, self.area,
            ))
            node.y = float(np.clip(
                node.y + rng.uniform(-self.max_step, self.max_step),
                0.0, self.area,
            ))
