"""The Fig.2 extensible-processor design flow, end to end.

Application → Profiling → Identify (extensible instructions, blocks,
parameters) → Define → Retargetable tool generation → Generate processor
→ Verify constraints → iterate.  :class:`ExtensibleProcessorFlow.run`
drives that loop until the performance target and silicon budget are
both met (or the candidate space is exhausted), recording one
:class:`FlowIteration` per trip around the loop — the artifact the F2
benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asip.extensions import (
    SelectionResult,
    select_extensions_optimal,
)
from repro.asip.isa import ExtensibleProcessor, IsaRestrictions
from repro.asip.profiler import IssProfiler, Profile
from repro.asip.workloads import Workload

__all__ = ["FlowIteration", "FlowReport", "ExtensibleProcessorFlow"]


@dataclass
class FlowIteration:
    """One pass around the Fig.2 loop."""

    index: int
    max_instructions_tried: int
    n_selected: int
    speedup: float
    gate_count: float
    meets_speedup: bool
    meets_gates: bool


@dataclass
class FlowReport:
    """Final outcome of the design flow."""

    processor: ExtensibleProcessor
    baseline_profile: Profile
    final_profile: Profile
    selection: SelectionResult
    iterations: list[FlowIteration] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        """Achieved workload speedup over the base core."""
        return (self.baseline_profile.total_cycles
                / self.final_profile.total_cycles)

    @property
    def gate_count(self) -> float:
        """Total gates of the customized processor."""
        return self.processor.gate_count()

    @property
    def succeeded(self) -> bool:
        """True when the last iteration met every constraint."""
        return bool(self.iterations) and (
            self.iterations[-1].meets_speedup
            and self.iterations[-1].meets_gates
        )


class ExtensibleProcessorFlow:
    """Customize a base core for one workload under constraints.

    Parameters
    ----------
    base:
        The uncustomized processor (its restrictions carry the gate
        budget and pipeline limits).
    workload:
        Target application.
    target_speedup:
        Verification threshold ("verify that the various customization
        levels ... meet the given constraints").
    """

    def __init__(
        self,
        base: ExtensibleProcessor,
        workload: Workload,
        target_speedup: float = 5.0,
    ):
        if base.extensions:
            raise ValueError("flow must start from the bare base core")
        if target_speedup < 1.0:
            raise ValueError("target speedup must be >= 1")
        self.base = base
        self.workload = workload
        self.target_speedup = target_speedup

    def run(self) -> FlowReport:
        """Drive the loop, widening the instruction allowance each
        iteration until the targets are met."""
        profiler = IssProfiler(self.base)
        baseline_profile = profiler.run(self.workload)
        candidates = self.workload.candidates()
        extension_budget = (
            self.base.restrictions.gate_budget - self.base.base_gates
        )

        iterations: list[FlowIteration] = []
        best_selection: SelectionResult | None = None
        best_processor = self.base

        cap = self.base.restrictions.max_instructions
        for allowed in range(1, cap + 1):
            restrictions = IsaRestrictions(
                max_instructions=allowed,
                max_latency_cycles=(
                    self.base.restrictions.max_latency_cycles
                ),
                gate_budget=self.base.restrictions.gate_budget,
            )
            selection = select_extensions_optimal(
                baseline_profile, candidates, restrictions,
                extension_budget=extension_budget,
            )
            processor = self.base.with_extensions(selection.selected)
            meets_gates = (
                processor.gate_count()
                <= self.base.restrictions.gate_budget
            )
            meets_speedup = selection.speedup >= self.target_speedup
            iterations.append(FlowIteration(
                index=len(iterations),
                max_instructions_tried=allowed,
                n_selected=len(selection.selected),
                speedup=selection.speedup,
                gate_count=processor.gate_count(),
                meets_speedup=meets_speedup,
                meets_gates=meets_gates,
            ))
            best_selection = selection
            best_processor = processor
            if meets_speedup and meets_gates:
                break

        assert best_selection is not None
        final_profile = IssProfiler(best_processor).run(self.workload)
        return FlowReport(
            processor=best_processor,
            baseline_profile=baseline_profile,
            final_profile=final_profile,
            selection=best_selection,
            iterations=iterations,
        )
