"""Multimedia workloads for the ASIP experiments.

The §3.1 case study: "a complete voice recognition system has been
implemented using a base processor core enhanced with less than 10
low-complexity custom instructions ... speed-up factors between 5x-10x
... at a total gate count less than 200k".

:func:`voice_recognition_workload` models that system at kernel
granularity: a speech front-end (pre-emphasis, windowing, FFT, mel
filterbank, MFCC) feeding an HMM/Viterbi search — with the cycle
distribution heavily concentrated in a handful of loops, which is what
makes instruction extension pay.  Each kernel carries the parameters of
its natural custom instruction (attainable speedup, datapath gates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asip.isa import CustomInstruction

__all__ = ["Kernel", "Workload", "voice_recognition_workload",
           "mpeg2_encoder_workload"]


@dataclass(frozen=True)
class Kernel:
    """One profiled kernel of an application.

    Parameters
    ----------
    name:
        Kernel label.
    invocations:
        How many times the kernel runs per workload execution.
    cycles_per_invocation:
        Base-ISA cycles per run.
    ext_speedup:
        Speedup the kernel's natural custom instruction achieves
        (1.0 = not a candidate).
    ext_gates:
        Datapath cost of that instruction.
    ext_latency:
        Latency in cycles of the custom instruction.
    """

    name: str
    invocations: float
    cycles_per_invocation: float
    ext_speedup: float = 1.0
    ext_gates: float = 0.0
    ext_latency: int = 1

    def __post_init__(self) -> None:
        if self.invocations < 0 or self.cycles_per_invocation < 0:
            raise ValueError(f"{self.name}: negative profile values")
        if self.ext_speedup < 1.0:
            raise ValueError(f"{self.name}: speedup below 1")

    @property
    def total_cycles(self) -> float:
        """Base-ISA cycles this kernel contributes per execution."""
        return self.invocations * self.cycles_per_invocation

    def candidate(self) -> CustomInstruction | None:
        """The kernel's custom-instruction candidate, if any."""
        if self.ext_speedup <= 1.0:
            return None
        return CustomInstruction(
            name=f"xt_{self.name}",
            kernel=self.name,
            speedup=self.ext_speedup,
            gates=self.ext_gates,
            latency_cycles=self.ext_latency,
        )


class Workload:
    """A named bag of kernels ("the application ... available in a
    C/C++-like specification", Fig.2)."""

    def __init__(self, name: str, kernels: list[Kernel]):
        if not kernels:
            raise ValueError("workload needs at least one kernel")
        names = [k.name for k in kernels]
        if len(set(names)) != len(names):
            raise ValueError("duplicate kernel names")
        self.name = name
        self.kernels = list(kernels)

    def kernel(self, name: str) -> Kernel:
        """Look up a kernel by name."""
        for kernel in self.kernels:
            if kernel.name == name:
                return kernel
        raise KeyError(name)

    def total_cycles(self) -> float:
        """Base-ISA cycles for one full execution."""
        return sum(k.total_cycles for k in self.kernels)

    def candidates(self) -> list[CustomInstruction]:
        """All custom-instruction candidates in the workload."""
        return [
            c for c in (k.candidate() for k in self.kernels)
            if c is not None
        ]

    def __repr__(self) -> str:
        return f"Workload({self.name!r}, kernels={len(self.kernels)})"


def voice_recognition_workload() -> Workload:
    """The §3.1 voice-recognition system, kernel-granular.

    Cycle budget per utterance (~1 s of speech): front-end DSP loops
    dominate; bookkeeping code is the Amdahl remainder that no
    instruction can touch.
    """
    kernels = [
        # name, invocations, cycles/invocation, speedup, gates, latency
        Kernel("pre_emphasis", 100, 8_000.0, 8.0, 6_000.0, 2),
        Kernel("hamming_window", 100, 10_000.0, 10.0, 8_000.0, 2),
        Kernel("fft_butterfly", 100, 90_000.0, 14.0, 24_000.0, 4),
        Kernel("mel_filterbank", 100, 35_000.0, 12.0, 14_000.0, 3),
        Kernel("log_energy", 100, 12_000.0, 6.0, 7_000.0, 3),
        Kernel("dct_mfcc", 100, 30_000.0, 12.0, 16_000.0, 4),
        Kernel("gaussian_eval", 100, 120_000.0, 11.0, 28_000.0, 4),
        Kernel("viterbi_update", 100, 80_000.0, 9.0, 20_000.0, 3),
        Kernel("beam_prune", 100, 9_000.0, 4.0, 9_000.0, 2),
        # Control / IO remainder: not accelerable.
        Kernel("control_glue", 1, 1_800_000.0),
    ]
    return Workload("voice-recognition", kernels)


def mpeg2_encoder_workload() -> Workload:
    """An MPEG-2 encoder as a second customization target.

    Motion estimation dominates (the classical SAD loop), making this a
    one-hot-kernel contrast to the flatter voice-recognition profile.
    """
    kernels = [
        Kernel("sad_16x16", 396, 180_000.0, 16.0, 30_000.0, 4),
        Kernel("dct_8x8", 2376, 4_200.0, 12.0, 22_000.0, 4),
        Kernel("quantize", 2376, 1_500.0, 8.0, 10_000.0, 2),
        Kernel("zigzag_rle", 2376, 900.0, 5.0, 7_000.0, 2),
        Kernel("huffman_enc", 2376, 1_100.0, 3.0, 12_000.0, 2),
        Kernel("rate_control", 30, 40_000.0),
        Kernel("control_glue", 1, 5_000_000.0),
    ]
    return Workload("mpeg2-encoder", kernels)
