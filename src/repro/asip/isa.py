"""Instruction-set models for extensible processors (§3.1).

An :class:`ExtensibleProcessor` is "a base processor core enhanced with
... custom instructions": the base ISA executes every kernel at its
profiled cycle cost; each :class:`CustomInstruction` collapses one
kernel's inner loop into a datapath, dividing its cycle cost by the
instruction's speedup factor at the price of gates and (possibly)
multi-cycle execution.

Platform restrictions from the paper are enforced: an instruction's
cycle latency is bounded (to fit the base pipeline) and the processor
caps how many extensible instructions can be defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.asip.blocks import PredefinedBlock
    from repro.asip.parameters import ProcessorParameters

__all__ = ["IsaRestrictions", "CustomInstruction", "ExtensibleProcessor"]


@dataclass(frozen=True)
class IsaRestrictions:
    """Platform limits on instruction extension (§3.1a).

    Parameters
    ----------
    max_instructions:
        "the total number of extensible instructions that can be defined
        and integrated per processor" — hard cap.
    max_latency_cycles:
        "the complexity of an instruction (in terms of number of cycles
        for execution) may be limited in order to integrate the
        resulting data path into the existing pipeline".
    gate_budget:
        Total silicon budget (base core + extensions), in gates.
    """

    max_instructions: int = 16
    max_latency_cycles: int = 8
    gate_budget: float = 200_000.0

    def __post_init__(self) -> None:
        if self.max_instructions < 0 or self.max_latency_cycles < 1:
            raise ValueError("invalid restriction values")
        if self.gate_budget <= 0:
            raise ValueError("gate budget must be positive")


@dataclass(frozen=True)
class CustomInstruction:
    """A candidate (or selected) multimedia instruction.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"mac4"`` or ``"fft_butterfly"``.
    kernel:
        The workload kernel it accelerates.
    speedup:
        Factor by which the kernel's cycle count shrinks.
    gates:
        Datapath + decoder cost in gates.
    latency_cycles:
        Execution latency of one instruction instance (multi-cycling).
    """

    name: str
    kernel: str
    speedup: float
    gates: float
    latency_cycles: int = 1

    def __post_init__(self) -> None:
        if self.speedup <= 1.0:
            raise ValueError(f"{self.name}: speedup must exceed 1")
        if self.gates <= 0:
            raise ValueError(f"{self.name}: gates must be positive")
        if self.latency_cycles < 1:
            raise ValueError(f"{self.name}: latency must be >= 1 cycle")

    def admissible(self, restrictions: IsaRestrictions) -> bool:
        """True when the instruction fits the pipeline restrictions."""
        return self.latency_cycles <= restrictions.max_latency_cycles


@dataclass
class ExtensibleProcessor:
    """A base core plus a set of selected custom instructions.

    Parameters
    ----------
    name:
        Configuration label.
    base_gates:
        Gate count of the unmodified base core.
    frequency:
        Clock frequency in hertz.
    restrictions:
        Platform limits; selection must respect them.
    extensions:
        Chosen custom instructions (at most one per kernel) —
        customization level (a) of §3.1.
    blocks:
        Included predefined blocks (MAC, SFRs, ...) — level (b).
    parameters:
        Structural parameterization (caches, registers, endianness) —
        level (c); ``None`` keeps the base core's implicit memory
        system (multiplier 1, no extra gates).
    """

    name: str = "asip0"
    base_gates: float = 60_000.0
    frequency: float = 200e6
    restrictions: IsaRestrictions = field(default_factory=IsaRestrictions)
    extensions: list[CustomInstruction] = field(default_factory=list)
    blocks: list["PredefinedBlock"] = field(default_factory=list)
    parameters: "ProcessorParameters | None" = None

    def __post_init__(self) -> None:
        if self.base_gates <= 0 or self.frequency <= 0:
            raise ValueError("base gates and frequency must be positive")
        self._check_extensions()

    def _check_extensions(self) -> None:
        if len(self.extensions) > self.restrictions.max_instructions:
            raise ValueError("too many custom instructions")
        kernels = [e.kernel for e in self.extensions]
        if len(set(kernels)) != len(kernels):
            raise ValueError("two instructions accelerate one kernel")
        for ext in self.extensions:
            if not ext.admissible(self.restrictions):
                raise ValueError(
                    f"{ext.name} exceeds the pipeline latency limit"
                )
        if self.gate_count() > self.restrictions.gate_budget:
            raise ValueError("gate budget exceeded")

    def gate_count(self) -> float:
        """Total gates: base core, extension datapaths, included blocks
        and parameterized structures."""
        total = self.base_gates + sum(e.gates for e in self.extensions)
        total += sum(b.gates for b in self.blocks)
        if self.parameters is not None:
            total += self.parameters.gates()
        return total

    def speedup_for(self, kernel: str) -> float:
        """Cycle-count divisor this processor applies to ``kernel``.

        The strongest applicable accelerator wins: a custom-instruction
        datapath subsumes a predefined block for the kernel it covers.
        """
        best = 1.0
        for ext in self.extensions:
            if ext.kernel == kernel:
                best = max(best, ext.speedup)
        for block in self.blocks:
            best = max(best, block.speedup_for(kernel))
        return best

    def cycle_multiplier(self) -> float:
        """Global CPI factor from the parameterization (level c).

        Normalized to the default parameterization: the bare base core
        implicitly carries default caches/registers, so ``None`` and
        the default :class:`ProcessorParameters` both give 1.0; larger
        caches give a factor below 1 (speedup), smaller above 1.
        """
        if self.parameters is None:
            return 1.0
        from repro.asip.parameters import ProcessorParameters

        reference = ProcessorParameters().cycle_multiplier()
        return self.parameters.cycle_multiplier() / reference

    def with_extensions(
        self, extensions: list[CustomInstruction]
    ) -> "ExtensibleProcessor":
        """A copy of this processor with a different extension set."""
        return ExtensibleProcessor(
            name=self.name,
            base_gates=self.base_gates,
            frequency=self.frequency,
            restrictions=self.restrictions,
            extensions=list(extensions),
            blocks=list(self.blocks),
            parameters=self.parameters,
        )

    def with_customization(
        self,
        extensions: list[CustomInstruction] | None = None,
        blocks: "list[PredefinedBlock] | None" = None,
        parameters: "ProcessorParameters | None" = None,
    ) -> "ExtensibleProcessor":
        """A copy with any of the three customization levels replaced."""
        return ExtensibleProcessor(
            name=self.name,
            base_gates=self.base_gates,
            frequency=self.frequency,
            restrictions=self.restrictions,
            extensions=(list(extensions) if extensions is not None
                        else list(self.extensions)),
            blocks=(list(blocks) if blocks is not None
                    else list(self.blocks)),
            parameters=(parameters if parameters is not None
                        else self.parameters),
        )
