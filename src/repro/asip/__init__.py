"""Extensible processors / ASIPs (§3.1): ISA model, workloads, the
ISS-style profiler, custom-instruction selection and the Fig.2 design
flow."""

from repro.asip.blocks import (
    PredefinedBlock,
    STANDARD_BLOCKS,
    select_blocks,
)
from repro.asip.extensions import (
    SelectionResult,
    select_extensions_greedy,
    select_extensions_optimal,
)
from repro.asip.flow import (
    ExtensibleProcessorFlow,
    FlowIteration,
    FlowReport,
)
from repro.asip.isa import (
    CustomInstruction,
    ExtensibleProcessor,
    IsaRestrictions,
)
from repro.asip.parameters import ProcessorParameters, parameter_sweep
from repro.asip.retarget import RetargetableToolchain, effective_speedup
from repro.asip.profiler import IssProfiler, KernelCycles, Profile
from repro.asip.workloads import (
    Kernel,
    Workload,
    mpeg2_encoder_workload,
    voice_recognition_workload,
)

__all__ = [
    "IsaRestrictions",
    "CustomInstruction",
    "ExtensibleProcessor",
    "Kernel",
    "Workload",
    "voice_recognition_workload",
    "mpeg2_encoder_workload",
    "IssProfiler",
    "Profile",
    "KernelCycles",
    "SelectionResult",
    "select_extensions_greedy",
    "select_extensions_optimal",
    "ExtensibleProcessorFlow",
    "FlowReport",
    "FlowIteration",
    "PredefinedBlock",
    "STANDARD_BLOCKS",
    "select_blocks",
    "ProcessorParameters",
    "parameter_sweep",
    "RetargetableToolchain",
    "effective_speedup",
]
