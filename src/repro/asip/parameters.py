"""Processor parameterization (§3.1, customization level c).

"the designer may have the choice to parameterize the extensible
processor for a specific multimedia application.  Examples include
setting the size of instruction/data caches in order to accommodate for
the characteristics of the multimedia application, choosing the
endianness (little or big endian), choosing the number of general
purpose registers, etc."

The model: cache sizes set miss rates through the classical
power-law (√2 rule) curve, misses inflate every kernel's CPI; a small
register file adds spill overhead; endianness is functional (must match
the stream format — mismatches cost a byte-swap per access).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ProcessorParameters", "parameter_sweep"]


@dataclass(frozen=True)
class ProcessorParameters:
    """Tunable structural parameters of the extensible core.

    Parameters
    ----------
    icache_kb, dcache_kb:
        Cache sizes in KiB (powers of two expected but not enforced).
    n_registers:
        General-purpose register count.
    little_endian:
        Core byte order.
    """

    icache_kb: float = 8.0
    dcache_kb: float = 8.0
    n_registers: int = 32
    little_endian: bool = True

    #: Model constants — per-access miss penalties and baseline rates.
    _MISS_PENALTY_CYCLES = 20.0
    _IMISS_AT_1KB = 0.08
    _DMISS_AT_1KB = 0.12
    _IACCESS_PER_CYCLE = 1.0
    _DACCESS_PER_CYCLE = 0.35

    def __post_init__(self) -> None:
        if self.icache_kb <= 0 or self.dcache_kb <= 0:
            raise ValueError("cache sizes must be positive")
        if self.n_registers < 8:
            raise ValueError("need at least 8 registers")

    def icache_miss_rate(self) -> float:
        """Instruction miss rate via the √2 rule (halves per 4×)."""
        return self._IMISS_AT_1KB / math.sqrt(self.icache_kb)

    def dcache_miss_rate(self) -> float:
        """Data miss rate via the √2 rule."""
        return self._DMISS_AT_1KB / math.sqrt(self.dcache_kb)

    def spill_overhead(self) -> float:
        """Extra cycle fraction from register spilling.

        ~12% at 8 registers, decaying with the register count (media
        kernels have moderate live ranges).
        """
        return 1.0 / self.n_registers

    def cycle_multiplier(self, stream_little_endian: bool = True
                         ) -> float:
        """CPI inflation factor relative to a perfect memory system.

        Multiplies every kernel's cycle count: cache stalls + register
        spills + (if the byte orders differ) a swap penalty on data
        accesses.
        """
        stall = self._MISS_PENALTY_CYCLES * (
            self._IACCESS_PER_CYCLE * self.icache_miss_rate()
            + self._DACCESS_PER_CYCLE * self.dcache_miss_rate()
        )
        swap = (0.0 if self.little_endian == stream_little_endian
                else 0.05 * self._DACCESS_PER_CYCLE)
        return 1.0 + stall + self.spill_overhead() + swap

    def gates(self) -> float:
        """Silicon cost of the parameterized structures.

        ~1.1k gates per KiB of SRAM-equivalent cache plus ~220 gates
        per 32-bit register.
        """
        return (1_100.0 * (self.icache_kb + self.dcache_kb)
                + 220.0 * self.n_registers)


def parameter_sweep(
    cache_sizes=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
    n_registers: int = 32,
) -> list[tuple[ProcessorParameters, float, float]]:
    """(parameters, cycle multiplier, gates) across cache sizes.

    The designer's accommodation curve: bigger caches cost gates and
    buy CPI, with diminishing returns.
    """
    rows = []
    for size in cache_sizes:
        params = ProcessorParameters(
            icache_kb=size, dcache_kb=size, n_registers=n_registers,
        )
        rows.append((params, params.cycle_multiplier(), params.gates()))
    return rows
