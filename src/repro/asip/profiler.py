"""Profiling via an instruction-set-simulator stand-in (Fig.2, step 1).

"Profiling by means of an ISS resembling the target processor unveils
the bottlenecks through cycle-accurate simulation i.e. it shows which
parts of the application represent the most time consuming ones."

:class:`IssProfiler` plays that role: it executes a workload against an
(optionally customized) processor model and returns per-kernel cycle
counts; :class:`Profile` ranks the hotspots the designer would target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asip.isa import ExtensibleProcessor
from repro.asip.workloads import Workload

__all__ = ["KernelCycles", "Profile", "IssProfiler"]


@dataclass(frozen=True)
class KernelCycles:
    """Cycles one kernel consumed in a profiling run."""

    kernel: str
    cycles: float
    fraction: float


@dataclass
class Profile:
    """Result of one ISS profiling run."""

    workload: str
    processor: str
    total_cycles: float
    per_kernel: list[KernelCycles]

    def hotspots(self, coverage: float = 0.9) -> list[KernelCycles]:
        """The smallest hot-kernel set covering ``coverage`` of cycles.

        This is the designer's short list for instruction extension.
        """
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must lie in (0, 1]")
        ranked = sorted(self.per_kernel, key=lambda k: -k.cycles)
        chosen: list[KernelCycles] = []
        accumulated = 0.0
        for entry in ranked:
            chosen.append(entry)
            accumulated += entry.fraction
            if accumulated >= coverage:
                break
        return chosen

    def cycles_of(self, kernel: str) -> float:
        """Cycles attributed to ``kernel``."""
        for entry in self.per_kernel:
            if entry.kernel == kernel:
                return entry.cycles
        raise KeyError(kernel)

    def execution_time(self, frequency: float) -> float:
        """Wall-clock seconds at ``frequency``."""
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        return self.total_cycles / frequency


class IssProfiler:
    """Cycle-accurate execution of a workload on a processor model.

    Custom instructions shrink their kernel's cycle count by the
    instruction speedup — the same arithmetic a retargeted compiler +
    ISS pair would expose after "retargetable tool generation".
    """

    def __init__(self, processor: ExtensibleProcessor):
        self.processor = processor

    def run(self, workload: Workload) -> Profile:
        """Execute ``workload`` and return its profile."""
        multiplier = self.processor.cycle_multiplier()
        per_kernel_cycles = {
            k.name: (k.total_cycles * multiplier
                     / self.processor.speedup_for(k.name))
            for k in workload.kernels
        }
        total = sum(per_kernel_cycles.values())
        entries = [
            KernelCycles(
                kernel=name,
                cycles=cycles,
                fraction=cycles / total if total > 0 else 0.0,
            )
            for name, cycles in per_kernel_cycles.items()
        ]
        return Profile(
            workload=workload.name,
            processor=self.processor.name,
            total_cycles=total,
            per_kernel=entries,
        )

    def speedup_over(self, workload: Workload,
                     baseline: ExtensibleProcessor) -> float:
        """Overall speedup of this processor vs. ``baseline``."""
        ours = self.run(workload).total_cycles
        theirs = IssProfiler(baseline).run(workload).total_cycles
        if ours <= 0:
            raise ValueError("degenerate zero-cycle profile")
        return theirs / ours
