"""Custom-instruction selection (Fig.2, "Identify ... Define").

Given a profile and the candidate instructions the kernels admit, pick
the subset that minimizes total cycles subject to the platform
restrictions: at most N instructions, a total gate budget, and the
per-instruction pipeline latency limit.  This is a knapsack-like
problem; exact branch-and-bound is provided (candidate sets are small —
one per kernel), plus a greedy benefit-density heuristic for contrast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.asip.isa import CustomInstruction, IsaRestrictions
from repro.asip.profiler import Profile

__all__ = ["SelectionResult", "select_extensions_greedy",
           "select_extensions_optimal"]


@dataclass
class SelectionResult:
    """Outcome of an instruction-selection pass."""

    selected: list[CustomInstruction]
    cycles_saved: float
    gates_used: float
    baseline_cycles: float

    @property
    def speedup(self) -> float:
        """Workload speedup the selection achieves."""
        remaining = self.baseline_cycles - self.cycles_saved
        if remaining <= 0:
            return math.inf
        return self.baseline_cycles / remaining


def _benefit(profile: Profile, candidate: CustomInstruction) -> float:
    """Cycles the candidate removes from the profiled workload."""
    kernel_cycles = profile.cycles_of(candidate.kernel)
    return kernel_cycles * (1.0 - 1.0 / candidate.speedup)


def _admissible(candidates: list[CustomInstruction],
                restrictions: IsaRestrictions
                ) -> list[CustomInstruction]:
    return [c for c in candidates if c.admissible(restrictions)]


def select_extensions_greedy(
    profile: Profile,
    candidates: list[CustomInstruction],
    restrictions: IsaRestrictions,
    extension_budget: float | None = None,
) -> SelectionResult:
    """Greedy selection by benefit-per-gate density.

    ``extension_budget`` caps the gates available for extensions
    (defaults to the restriction budget; the caller subtracts the base
    core).
    """
    budget = (extension_budget if extension_budget is not None
              else restrictions.gate_budget)
    chosen: list[CustomInstruction] = []
    gates = 0.0
    pool = sorted(
        _admissible(candidates, restrictions),
        key=lambda c: -_benefit(profile, c) / c.gates,
    )
    for candidate in pool:
        if len(chosen) >= restrictions.max_instructions:
            break
        if gates + candidate.gates > budget:
            continue
        chosen.append(candidate)
        gates += candidate.gates
    saved = sum(_benefit(profile, c) for c in chosen)
    return SelectionResult(
        selected=chosen,
        cycles_saved=saved,
        gates_used=gates,
        baseline_cycles=profile.total_cycles,
    )


def select_extensions_optimal(
    profile: Profile,
    candidates: list[CustomInstruction],
    restrictions: IsaRestrictions,
    extension_budget: float | None = None,
) -> SelectionResult:
    """Exact selection by depth-first branch and bound.

    Maximizes cycles saved under the instruction-count and gate-budget
    constraints.  Candidate sets are one-per-kernel, so the search space
    stays tiny (≤ 2^n with n ≈ 10).
    """
    budget = (extension_budget if extension_budget is not None
              else restrictions.gate_budget)
    pool = sorted(
        _admissible(candidates, restrictions),
        key=lambda c: -_benefit(profile, c),
    )
    benefits = [_benefit(profile, c) for c in pool]

    best = {"saved": -1.0, "set": []}

    # Suffix sums let us bound the remaining attainable benefit.
    suffix = [0.0] * (len(pool) + 1)
    for i in range(len(pool) - 1, -1, -1):
        suffix[i] = suffix[i + 1] + benefits[i]

    def recurse(i: int, chosen: list[int], gates: float,
                saved: float) -> None:
        if saved > best["saved"]:
            best["saved"] = saved
            best["set"] = chosen[:]
        if i == len(pool):
            return
        if saved + suffix[i] <= best["saved"]:
            return  # cannot beat the incumbent
        # Take pool[i] if it fits.
        candidate = pool[i]
        if (len(chosen) < restrictions.max_instructions
                and gates + candidate.gates <= budget):
            chosen.append(i)
            recurse(i + 1, chosen, gates + candidate.gates,
                    saved + benefits[i])
            chosen.pop()
        # Skip pool[i].
        recurse(i + 1, chosen, gates, saved)

    recurse(0, [], 0.0, 0.0)
    selected = [pool[i] for i in best["set"]]
    return SelectionResult(
        selected=selected,
        cycles_saved=max(best["saved"], 0.0),
        gates_used=sum(c.gates for c in selected),
        baseline_cycles=profile.total_cycles,
    )
