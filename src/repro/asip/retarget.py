"""Retargetable tool generation (Fig.2's verification loop).

"retargetable tool generation is a technique that allows to 'retarget'
compilation/simulation/analysis tools to the customized
micro-architecture ... retargetable techniques allow then to
automatically generate a compiler that is aware of the new instructions
i.e. it can generate code and optimize using the recently defined
extensible instructions."

A real compiler never matches every opportunity a hand-written intrinsic
would: the toolchain's *coverage* is the fraction of a kernel's dynamic
instances the pattern matcher actually rewrites.  Within a kernel the
achieved speedup then follows Amdahl:

    s_eff = 1 / ((1 − c) + c / s)

so the verify step of Fig.2 must run on the *retargeted* profile, not
the ideal one — exactly what :class:`RetargetableToolchain` provides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asip.isa import ExtensibleProcessor
from repro.asip.profiler import IssProfiler, Profile
from repro.asip.workloads import Workload

__all__ = ["RetargetableToolchain", "effective_speedup"]


def effective_speedup(ideal_speedup: float, coverage: float) -> float:
    """Kernel speedup after imperfect compiler coverage (Amdahl).

    >>> effective_speedup(10.0, 1.0)
    10.0
    >>> round(effective_speedup(10.0, 0.5), 4)
    1.8182
    """
    if ideal_speedup < 1.0:
        raise ValueError("ideal speedup must be >= 1")
    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must lie in [0, 1]")
    return 1.0 / ((1.0 - coverage) + coverage / ideal_speedup)


@dataclass
class RetargetableToolchain:
    """A generated compiler/ISS pair for a customized processor.

    Parameters
    ----------
    processor:
        The customized core the tools were generated for.
    compiler_coverage:
        Fraction of each accelerated kernel's dynamic instances the
        auto-retargeted compiler rewrites to custom instructions
        (1.0 = hand-written intrinsics everywhere).
    """

    processor: ExtensibleProcessor
    compiler_coverage: float = 0.85

    def __post_init__(self) -> None:
        if not 0.0 <= self.compiler_coverage <= 1.0:
            raise ValueError("coverage must lie in [0, 1]")

    def compiled_processor(self) -> ExtensibleProcessor:
        """The processor as the generated compiler actually exploits it.

        Custom-instruction speedups are degraded by the coverage;
        blocks and parameters are structural and unaffected.
        """
        degraded = [
            type(ext)(
                name=ext.name,
                kernel=ext.kernel,
                speedup=max(effective_speedup(
                    ext.speedup, self.compiler_coverage
                ), 1.0 + 1e-9),
                gates=ext.gates,
                latency_cycles=ext.latency_cycles,
            )
            for ext in self.processor.extensions
        ]
        return self.processor.with_customization(extensions=degraded)

    def profile(self, workload: Workload) -> Profile:
        """Cycle-accurate profile through the generated ISS — the
        numbers the Fig.2 verify step actually sees."""
        return IssProfiler(self.compiled_processor()).run(workload)

    def speedup_over_base(self, workload: Workload,
                          base: ExtensibleProcessor) -> float:
        """Compiled-workload speedup over the bare base core."""
        return IssProfiler(self.compiled_processor()).speedup_over(
            workload, base
        )

    def coverage_gap(self, workload: Workload,
                     base: ExtensibleProcessor) -> float:
        """Fraction of the ideal speedup lost to the toolchain.

        0 = the generated compiler is as good as hand intrinsics.
        """
        ideal = IssProfiler(self.processor).speedup_over(workload, base)
        achieved = self.speedup_over_base(workload, base)
        if ideal <= 1.0:
            return 0.0
        return 1.0 - (achieved - 1.0) / (ideal - 1.0)
