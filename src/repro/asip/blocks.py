"""Predefined-block inclusion/exclusion (§3.1, customization level b).

"Predefined blocks as part of the extensible processor platform may be
chosen to be included or excluded by the designer.  Examples are
special function registers, MAC operation blocks, caches, etc."

A :class:`PredefinedBlock` is a coarse-grain accelerator: it speeds up
every kernel whose inner loops use its function, at a fixed gate cost.
Where a kernel is also covered by a custom instruction, the stronger of
the two wins (the instruction datapath subsumes the block for that
kernel) — blocks pay for the *breadth* instructions lack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.asip.profiler import Profile

__all__ = ["PredefinedBlock", "STANDARD_BLOCKS", "select_blocks"]


@dataclass(frozen=True)
class PredefinedBlock:
    """One optional hardware block of the platform.

    Parameters
    ----------
    name:
        Block label ("mac", "sfr", ...).
    gates:
        Silicon cost when included.
    kernel_speedups:
        Kernel name → speedup factor the block gives that kernel.
    """

    name: str
    gates: float
    kernel_speedups: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.gates <= 0:
            raise ValueError(f"{self.name}: gates must be positive")
        for kernel, speedup in self.kernel_speedups.items():
            if speedup < 1.0:
                raise ValueError(
                    f"{self.name}: speedup for {kernel} below 1"
                )

    def speedup_for(self, kernel: str) -> float:
        """Speedup the block gives ``kernel`` (1.0 if untouched)."""
        return self.kernel_speedups.get(kernel, 1.0)


#: A representative block library for the voice-recognition /
#: MPEG-class workloads of :mod:`repro.asip.workloads`.
STANDARD_BLOCKS = (
    PredefinedBlock(
        "mac", gates=12_000.0,
        kernel_speedups={
            "fft_butterfly": 2.5, "mel_filterbank": 2.2,
            "dct_mfcc": 2.2, "gaussian_eval": 1.8,
            "sad_16x16": 1.6, "dct_8x8": 2.0,
        },
    ),
    PredefinedBlock(
        "sfr", gates=4_000.0,
        kernel_speedups={
            "viterbi_update": 1.5, "beam_prune": 1.4,
            "huffman_enc": 1.3,
        },
    ),
    PredefinedBlock(
        "saturating_alu", gates=6_000.0,
        kernel_speedups={
            "pre_emphasis": 1.6, "hamming_window": 1.5,
            "quantize": 1.8, "log_energy": 1.4,
        },
    ),
    PredefinedBlock(
        "barrel_shifter", gates=5_000.0,
        kernel_speedups={
            "huff_dec": 1.7, "zigzag_rle": 1.5, "huffman_enc": 1.6,
        },
    ),
)


def select_blocks(
    profile: Profile,
    blocks,
    gate_budget: float,
    existing_speedups: Mapping[str, float] | None = None,
) -> list[PredefinedBlock]:
    """Greedy benefit-per-gate block inclusion under a gate budget.

    ``existing_speedups`` (kernel → factor, e.g. from selected custom
    instructions) discounts a block's benefit where an instruction
    already covers the kernel better.
    """
    if gate_budget < 0:
        raise ValueError("gate budget must be non-negative")
    existing = dict(existing_speedups or {})

    def benefit(block: PredefinedBlock) -> float:
        saved = 0.0
        for kernel, speedup in block.kernel_speedups.items():
            try:
                cycles = profile.cycles_of(kernel)
            except KeyError:
                continue
            already = existing.get(kernel, 1.0)
            if speedup <= already:
                continue  # the instruction datapath subsumes it
            # Cycles after the existing speedup, further divided.
            saved += cycles / already * (1.0 - already / speedup)
        return saved

    chosen: list[PredefinedBlock] = []
    used = 0.0
    pool = sorted(blocks, key=lambda b: -benefit(b) / b.gates)
    for block in pool:
        if benefit(block) <= 0:
            continue
        if used + block.gates > gate_budget:
            continue
        chosen.append(block)
        used += block.gates
    return chosen
