"""Experiment registry: one uniform ``run(id)`` for every bench.

Experiments register themselves with :func:`register`; the CLI and the
pytest benchmarks both call :func:`run`, so there is exactly one code
path producing each paper table.  Each run gets a fresh
:class:`~repro.obs.metrics.MetricRegistry` (and, on request, a
:class:`~repro.obs.trace.Tracer`) installed as the ambient
instrumentation, so every :class:`~repro.des.Environment` the
experiment creates reports into the run's
:class:`~repro.obs.report.RunReport` without explicit plumbing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.experiments.result import ExperimentResult
from repro.obs.context import active_tracer, instrument
from repro.obs.metrics import MetricRegistry
from repro.obs.report import RunReport
from repro.obs.slo import SLOWatcher, as_slo_specs
from repro.obs.timeseries import Probe, as_probe_spec
from repro.obs.trace import Tracer
from repro.utils.deprecation import deprecated_alias
from repro.utils.tables import Table

__all__ = ["Experiment", "RunContext", "register", "get", "ids",
           "preflight", "run", "scenarios_of", "SCENARIO_ID_PREFIX"]

#: Prefix of dynamic experiment ids: ``scenario:<path>`` runs the
#: scenario document at ``<path>`` without prior registration.
SCENARIO_ID_PREFIX = "scenario:"


@dataclass
class RunContext:
    """What an experiment runner sees: its seed and output channels.

    Runners derive every RNG seed from :attr:`seed` (``ctx.seed + k``
    for the k-th stream), build display tables via :meth:`table`, and
    record headline KPIs via :meth:`record`; their return value becomes
    ``ExperimentResult.raw``.  When the run was given a scenario
    document (``run(..., scenario=...)`` or the CLI's ``--scenario``),
    the loaded :class:`repro.scenario.Scenario` is on
    :attr:`scenario` for runners that honor design-point overrides.
    """

    seed: int
    metrics: MetricRegistry
    tracer: Tracer | None = None
    scenario: Any = None
    tables: list[Table] = field(default_factory=list)
    kpis: dict[str, float] = field(default_factory=dict)

    def table(self, columns: Sequence[str], title: str = "") -> Table:
        """Create a :class:`Table` that ships with the result."""
        out = Table(columns, title=title)
        self.tables.append(out)
        return out

    def record(self, name: str, value: float) -> None:
        """Record one scalar headline metric."""
        self.kpis[name] = float(value)


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: id, the paper claim, and its runner.

    ``scenario`` is the optional pre-flight hook: a zero-argument
    callable returning the experiment's design points in declarative
    form — ``repro.scenario/v1`` documents (dicts), paths to scenario
    files, or :class:`repro.scenario.Scenario` objects, singly or as a
    list.  When present, :func:`run` schema-validates and RC-verifies
    the *documents* before simulating anything, so what gets checked
    is exactly what a scenario file would carry.

    ``models`` is the deprecated predecessor hook (live model
    objects); :func:`register` wraps it into ``scenario`` form and
    keeps the original here for introspection only.
    """

    id: str
    claim: str
    runner: Callable[[RunContext], Any]
    models: Callable[[], Any] | None = None
    scenario: Callable[[], Any] | None = None


_REGISTRY: dict[str, Experiment] = {}

_MISSING = object()


def _document_for_model(model: Any) -> dict:
    """Wrap one legacy ``models=`` item as a scenario document."""
    from repro.core.application import ApplicationGraph, TaskGraph
    from repro.core.architecture import Platform
    from repro.scenario import Scenario

    if isinstance(model, dict):
        return Scenario(
            name=getattr(model.get("application")
                         or model.get("task_graph")
                         or model.get("platform"), "name", "design"),
            **model,
        ).to_document()
    if isinstance(model, ApplicationGraph):
        return Scenario(name=model.name,
                        application=model).to_document()
    if isinstance(model, TaskGraph):
        return Scenario(name=model.name, task_graph=model).to_document()
    if isinstance(model, Platform):
        return Scenario(name=model.name, platform=model).to_document()
    raise TypeError(
        f"cannot express model of type {type(model).__name__} as a "
        f"scenario document"
    )


def register(exp_id: str, claim: str,
             models: Callable[[], Any] | None = None,
             scenario: Any = _MISSING):
    """Decorator registering ``runner`` under ``exp_id``.

    ``scenario`` optionally supplies the experiment's design points as
    declarative documents for static verification (see
    :class:`Experiment`).  ``models=`` is the deprecated spelling: a
    hook returning live model objects, which is wrapped into document
    form (each object serialized through its canonical ``to_dict``).
    """
    scenario_hook = None if scenario is _MISSING else scenario
    if models is not None:
        legacy = models

        def _documents_from_models():
            result = legacy()
            items = result if isinstance(result, (list, tuple)) else [
                result]
            return [_document_for_model(model) for model in items]

        scenario_hook = deprecated_alias(
            "register", "models", "scenario",
            _documents_from_models,
            None if scenario is _MISSING else scenario,
        )

    def decorator(runner: Callable[[RunContext], Any]):
        key = exp_id.lower()
        if key in _REGISTRY:
            raise ValueError(f"experiment {exp_id!r} already registered")
        _REGISTRY[key] = Experiment(id=key, claim=claim, runner=runner,
                                    models=models,
                                    scenario=scenario_hook)
        return runner

    return decorator


def _ensure_defs() -> None:
    # Experiments register on import of the definitions module.
    from repro.experiments import defs  # noqa: F401


def _coerce_scenario(item: Any):
    """One scenario-hook item -> a loaded ``Scenario`` object.

    Accepts a document dict, a path to a scenario file, or an
    already-built :class:`repro.scenario.Scenario`.
    """
    from repro import scenario as scn

    if isinstance(item, scn.Scenario):
        return item
    if isinstance(item, dict):
        return scn.Scenario.from_document(item)
    if isinstance(item, (str, Path)):
        return scn.load(item)
    raise TypeError(
        f"scenario hook must yield documents, paths or Scenario "
        f"objects, got {type(item).__name__}"
    )


def _effective_scenario_hook(experiment: Experiment):
    """The experiment's document provider.

    Prefers the ``scenario`` hook; an :class:`Experiment` constructed
    directly with only the legacy ``models`` field (bypassing
    :func:`register`, e.g. in tests) gets that hook wrapped into
    document form so pre-flight keeps covering it.
    """
    if experiment.scenario is not None:
        return experiment.scenario
    if experiment.models is None:
        return None

    def wrapped():
        result = experiment.models()
        items = result if isinstance(result, (list, tuple)) else [
            result]
        return [_document_for_model(model) for model in items]

    return wrapped


def scenarios_of(exp_id: str) -> list:
    """The experiment's declared design points, as loaded
    ``Scenario`` objects (empty for experiments without a hook)."""
    hook = _effective_scenario_hook(get(exp_id))
    if hook is None:
        return []
    result = hook()
    items = result if isinstance(result, (list, tuple)) else [result]
    return [_coerce_scenario(item) for item in items]


def _scenario_experiment(path_text: str) -> Experiment:
    """Synthesize the dynamic experiment for ``scenario:<path>``.

    Not cached in the registry: the id itself carries everything
    needed to rebuild it, which is what lets replication workers
    re-resolve the experiment from the bare id string in a fresh
    process.
    """
    path = Path(path_text)

    def _runner(ctx: RunContext):
        from repro.scenario import evaluate_scenario, load

        scenario = ctx.scenario
        if scenario is None:
            scenario = load(path)
        return evaluate_scenario(ctx, scenario)

    return Experiment(
        id=f"{SCENARIO_ID_PREFIX}{path_text}",
        claim=f"declarative scenario {path.name}",
        runner=_runner,
        scenario=lambda: [path],
    )


def get(exp_id: str) -> Experiment:
    """Look up an experiment by (case-insensitive) id.

    Ids starting with ``scenario:`` are dynamic: the remainder is a
    path to a ``repro.scenario/v1`` file (case-sensitive, since it
    names a file) and the returned experiment evaluates that design
    point.
    """
    if exp_id.startswith(SCENARIO_ID_PREFIX):
        return _scenario_experiment(exp_id[len(SCENARIO_ID_PREFIX):])
    _ensure_defs()
    try:
        return _REGISTRY[exp_id.lower()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known ids: "
            f"{', '.join(ids())}"
        ) from None


def ids() -> list[str]:
    """All registered experiment ids, in registration order."""
    _ensure_defs()
    return list(_REGISTRY)


def preflight(exp_id: str, *, flow: bool = False) -> list:
    """Statically verify an experiment's declared design points.

    The scenario hook's documents are schema-validated, built, and
    run through the Layer-1 RC model verifier; each
    :class:`~repro.check.Diagnostic` subject carries the experiment id
    and the JSON path of the offending element
    (``experiment:e3/<name>#$.scenario.task_graph.nodes[2]``).
    Experiments without a hook verify vacuously (empty list).

    With ``flow=True`` the Layer-3 flow analyzer
    (:mod:`repro.check.simflow`) also runs over the module defining
    the experiment's runner, so the process functions the experiment
    is about to execute get the SF3xx discipline checks before any
    simulated time is spent on them.
    """
    import inspect

    from repro import scenario as scn

    experiment = get(exp_id)
    diagnostics = []
    for scenario in scenarios_of(exp_id):
        for diag in scn.verify(scenario):
            diag.subject = f"experiment:{experiment.id}/{diag.subject}"
            diagnostics.append(diag)
    if flow:
        from repro.check.simflow import analyze_file

        try:
            source = inspect.getsourcefile(experiment.runner)
        except TypeError:
            source = None
        if source is not None:
            for diag in analyze_file(source):
                diag.subject = (f"experiment:{experiment.id}/"
                                f"{diag.subject}")
                diagnostics.append(diag)
    return diagnostics


def run(
    exp_id: str,
    seed: int | None = None,
    *,
    trace: bool | Tracer = False,
    verify: bool = True,
    scenario: Any = None,
    probe: Any = None,
    slo: Any = None,
) -> ExperimentResult:
    """Run one experiment and return its :class:`ExperimentResult`.

    Parameters
    ----------
    exp_id:
        Experiment id (``f1``, ``e3``, ``r1``, ...; case-insensitive).
    seed:
        Base seed; ``None`` means the default (0), which reproduces
        the published tables bit-for-bit.
    trace:
        Record a kernel event trace.  ``True`` creates a fresh
        unbounded :class:`~repro.obs.trace.Tracer`; passing a tracer
        instance uses it instead (e.g. a capped ``Tracer(max_events=)``
        or a profiler's attributing tracer).  ``False`` (the default)
        inherits the ambient tracer when one is installed via
        :func:`repro.obs.instrument` — so profiling a whole
        ``experiments.run`` call attributes its processes — and
        records nothing otherwise.  Tracing is observational only: it
        never changes simulation results.
    verify:
        Pre-flight the experiment's declared design points (or the
        ``scenario`` override) through the Layer-1 static verifier
        (:mod:`repro.check`); error-severity findings raise
        :class:`~repro.check.ModelVerificationError` before any
        simulation starts.  ``False`` skips the check.
    scenario:
        Optional design-point override: a path to a
        ``repro.scenario/v1`` file, a document dict, or a loaded
        :class:`repro.scenario.Scenario`.  It is verified in place of
        the registered hook and exposed to the runner as
        ``ctx.scenario``.
    probe:
        Sample KPI time series at a sim-time interval.  ``True`` uses
        the default :class:`~repro.obs.timeseries.ProbeSpec`; a number
        is an interval in simulated seconds; a ``ProbeSpec`` or live
        :class:`~repro.obs.timeseries.Probe` is used as given.  The
        probe is purely observational (it schedules nothing), so the
        non-``probe_*`` parts of the result are unchanged by it.
    slo:
        Service-level objectives to evaluate: spec strings for
        :meth:`~repro.obs.slo.SLOSpec.parse` and/or
        :class:`~repro.obs.slo.SLOSpec` objects.  In-flight breaches
        (when a probe is on) and the final verdict land in
        ``report.slo``.
    """
    experiment = get(exp_id)
    loaded_scenario = (None if scenario is None
                       else _coerce_scenario(scenario))
    if verify and (loaded_scenario is not None
                   or _effective_scenario_hook(experiment)
                   is not None):
        from repro.check import ModelVerificationError, has_errors

        if loaded_scenario is not None:
            from repro import scenario as scn

            diagnostics = []
            for diag in scn.verify(loaded_scenario):
                diag.subject = (f"experiment:{experiment.id}/"
                                f"{diag.subject}")
                diagnostics.append(diag)
        else:
            diagnostics = preflight(exp_id)
        if has_errors(diagnostics):
            raise ModelVerificationError(diagnostics)
    base_seed = 0 if seed is None else int(seed)
    registry = MetricRegistry()
    if isinstance(trace, Tracer):
        tracer = trace
    elif trace:
        tracer = Tracer()
    else:
        # No trace requested: inherit any ambient tracer (e.g. a
        # profiler's) instead of shadowing it — the same semantics as
        # Environment picking up the ambient default.
        tracer = active_tracer()
    if isinstance(probe, Probe):
        probe_obj: Probe | None = probe
    else:
        probe_spec = as_probe_spec(probe)
        probe_obj = (Probe(registry, probe_spec)
                     if probe_spec is not None else None)
    slo_specs = as_slo_specs(slo)
    watcher = (SLOWatcher(registry, list(slo_specs))
               if slo_specs else None)
    if probe_obj is not None and watcher is not None:
        probe_obj.watcher = watcher
    ctx = RunContext(seed=base_seed, metrics=registry, tracer=tracer,
                     scenario=loaded_scenario)
    start = time.perf_counter()
    with instrument(tracer=tracer, metrics=registry, probe=probe_obj):
        raw = experiment.runner(ctx)
    wall = time.perf_counter() - start
    if watcher is not None:
        watcher.finalize()
    report = RunReport.from_run(
        experiment.id,
        seed=base_seed,
        wall_seconds=wall,
        metrics=ctx.kpis,
        registry=registry,
        tracer=tracer,
        slo=watcher.summary() if watcher is not None else None,
    )
    return ExperimentResult(
        id=experiment.id,
        claim=experiment.claim,
        tables=ctx.tables,
        metrics=dict(ctx.kpis),
        report=report,
        raw=raw,
        tracer=tracer,
        registry=registry,
    )
