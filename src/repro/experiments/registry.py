"""Experiment registry: one uniform ``run(id)`` for every bench.

Experiments register themselves with :func:`register`; the CLI and the
pytest benchmarks both call :func:`run`, so there is exactly one code
path producing each paper table.  Each run gets a fresh
:class:`~repro.obs.metrics.MetricRegistry` (and, on request, a
:class:`~repro.obs.trace.Tracer`) installed as the ambient
instrumentation, so every :class:`~repro.des.Environment` the
experiment creates reports into the run's
:class:`~repro.obs.report.RunReport` without explicit plumbing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.experiments.result import ExperimentResult
from repro.obs.context import active_tracer, instrument
from repro.obs.metrics import MetricRegistry
from repro.obs.report import RunReport
from repro.obs.trace import Tracer
from repro.utils.tables import Table

__all__ = ["Experiment", "RunContext", "register", "get", "ids",
           "preflight", "run"]


@dataclass
class RunContext:
    """What an experiment runner sees: its seed and output channels.

    Runners derive every RNG seed from :attr:`seed` (``ctx.seed + k``
    for the k-th stream), build display tables via :meth:`table`, and
    record headline KPIs via :meth:`record`; their return value becomes
    ``ExperimentResult.raw``.
    """

    seed: int
    metrics: MetricRegistry
    tracer: Tracer | None = None
    tables: list[Table] = field(default_factory=list)
    kpis: dict[str, float] = field(default_factory=dict)

    def table(self, columns: Sequence[str], title: str = "") -> Table:
        """Create a :class:`Table` that ships with the result."""
        out = Table(columns, title=title)
        self.tables.append(out)
        return out

    def record(self, name: str, value: float) -> None:
        """Record one scalar headline metric."""
        self.kpis[name] = float(value)


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: id, the paper claim, and its runner.

    ``models`` is the optional pre-flight hook: a zero-argument
    callable returning the design models the experiment simulates
    (:class:`~repro.core.ApplicationGraph` / ``TaskGraph`` /
    ``Platform`` objects, or ``verify_design`` kwargs dicts).  When
    present, :func:`run` verifies them with the Layer-1 checker of
    :mod:`repro.check` before simulating anything.
    """

    id: str
    claim: str
    runner: Callable[[RunContext], Any]
    models: Callable[[], Any] | None = None


_REGISTRY: dict[str, Experiment] = {}


def register(exp_id: str, claim: str,
             models: Callable[[], Any] | None = None):
    """Decorator registering ``runner`` under ``exp_id``.

    ``models`` optionally supplies the experiment's design models for
    static verification (see :class:`Experiment`).
    """

    def decorator(runner: Callable[[RunContext], Any]):
        key = exp_id.lower()
        if key in _REGISTRY:
            raise ValueError(f"experiment {exp_id!r} already registered")
        _REGISTRY[key] = Experiment(id=key, claim=claim, runner=runner,
                                    models=models)
        return runner

    return decorator


def _ensure_defs() -> None:
    # Experiments register on import of the definitions module.
    from repro.experiments import defs  # noqa: F401


def get(exp_id: str) -> Experiment:
    """Look up an experiment by (case-insensitive) id."""
    _ensure_defs()
    try:
        return _REGISTRY[exp_id.lower()]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known ids: "
            f"{', '.join(ids())}"
        ) from None


def ids() -> list[str]:
    """All registered experiment ids, in registration order."""
    _ensure_defs()
    return list(_REGISTRY)


def preflight(exp_id: str) -> list:
    """Statically verify an experiment's declared design models.

    Returns the :class:`~repro.check.Diagnostic` list of the Layer-1
    model verifier, with subjects prefixed by the experiment id.
    Experiments without a ``models`` hook verify vacuously (empty
    list).
    """
    from repro.check import verify_model

    experiment = get(exp_id)
    if experiment.models is None:
        return []
    diagnostics = []
    for model in experiment.models():
        for diag in verify_model(model):
            diag.subject = f"experiment:{experiment.id}/{diag.subject}"
            diagnostics.append(diag)
    return diagnostics


def run(
    exp_id: str,
    seed: int | None = None,
    *,
    trace: bool | Tracer = False,
    verify: bool = True,
) -> ExperimentResult:
    """Run one experiment and return its :class:`ExperimentResult`.

    Parameters
    ----------
    exp_id:
        Experiment id (``f1``, ``e3``, ``r1``, ...; case-insensitive).
    seed:
        Base seed; ``None`` means the default (0), which reproduces
        the published tables bit-for-bit.
    trace:
        Record a kernel event trace.  ``True`` creates a fresh
        unbounded :class:`~repro.obs.trace.Tracer`; passing a tracer
        instance uses it instead (e.g. a capped ``Tracer(max_events=)``
        or a profiler's attributing tracer).  ``False`` (the default)
        inherits the ambient tracer when one is installed via
        :func:`repro.obs.instrument` — so profiling a whole
        ``experiments.run`` call attributes its processes — and
        records nothing otherwise.  Tracing is observational only: it
        never changes simulation results.
    verify:
        Pre-flight the experiment's declared models through the
        Layer-1 static verifier (:mod:`repro.check`); error-severity
        findings raise
        :class:`~repro.check.ModelVerificationError` before any
        simulation starts.  ``False`` skips the check.
    """
    experiment = get(exp_id)
    if verify and experiment.models is not None:
        from repro.check import ModelVerificationError, has_errors

        diagnostics = preflight(exp_id)
        if has_errors(diagnostics):
            raise ModelVerificationError(diagnostics)
    base_seed = 0 if seed is None else int(seed)
    registry = MetricRegistry()
    if isinstance(trace, Tracer):
        tracer = trace
    elif trace:
        tracer = Tracer()
    else:
        # No trace requested: inherit any ambient tracer (e.g. a
        # profiler's) instead of shadowing it — the same semantics as
        # Environment picking up the ambient default.
        tracer = active_tracer()
    ctx = RunContext(seed=base_seed, metrics=registry, tracer=tracer)
    start = time.perf_counter()
    with instrument(tracer=tracer, metrics=registry):
        raw = experiment.runner(ctx)
    wall = time.perf_counter() - start
    report = RunReport.from_run(
        experiment.id,
        seed=base_seed,
        wall_seconds=wall,
        metrics=ctx.kpis,
        registry=registry,
        tracer=tracer,
    )
    return ExperimentResult(
        id=experiment.id,
        claim=experiment.claim,
        tables=ctx.tables,
        metrics=dict(ctx.kpis),
        report=report,
        raw=raw,
        tracer=tracer,
        registry=registry,
    )
