"""The unified experiment API.

Every reproduction experiment registers here under a stable id and is
run through one entry point::

    from repro.experiments import run
    result = run("e3", seed=0, trace=False)   # -> ExperimentResult

``result.tables`` are the paper tables, ``result.metrics`` the scalar
KPIs, ``result.report`` the full observability
:class:`~repro.obs.report.RunReport`, and ``result.raw`` the native
model objects (benchmark assertions consume those).  The ``repro``
CLI and the ``benchmarks/`` suite are both thin layers over this
module.
"""

from repro.experiments.registry import (
    SCENARIO_ID_PREFIX,
    Experiment,
    RunContext,
    get,
    ids,
    preflight,
    register,
    run,
    scenarios_of,
)
from repro.experiments.result import ExperimentResult

__all__ = [
    "Experiment",
    "ExperimentResult",
    "RunContext",
    "SCENARIO_ID_PREFIX",
    "get",
    "ids",
    "preflight",
    "register",
    "run",
    "scenarios_of",
]
