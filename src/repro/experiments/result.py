"""The uniform result every experiment returns.

An :class:`ExperimentResult` is what ``repro.experiments.run`` hands
back for any experiment id: the rendered tables, the scalar headline
metrics, the full :class:`~repro.obs.report.RunReport`, and — for the
benchmark assertions — the ``raw`` model objects the run produced.
Only the first three serialize; ``raw`` is an in-process convenience.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.obs.report import RunReport, sanitize_json
from repro.utils.tables import Table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Outcome of one experiment run under the unified API."""

    id: str
    claim: str
    tables: list[Table] = field(default_factory=list)
    #: Scalar headline metrics (KPIs) recorded by the experiment.
    metrics: dict[str, float] = field(default_factory=dict)
    report: RunReport | None = None
    #: The experiment's native return value (model objects, reports,
    #: sweep rows).  Benchmarks assert on this; it is NOT serialized.
    raw: Any = None
    #: The live :class:`~repro.obs.trace.Tracer` when the run was
    #: traced (for JSONL export); NOT serialized.
    tracer: Any = None
    #: The run's live :class:`~repro.obs.metrics.MetricRegistry`
    #: (instrument objects, not just the snapshot in ``report``) —
    #: what :mod:`repro.parallel` merges across replicas; NOT
    #: serialized.
    registry: Any = None

    def table(self, fragment: str | None = None) -> Table:
        """Return the first table whose title contains ``fragment``
        (case-insensitive); with no fragment, the first table."""
        if not self.tables:
            raise LookupError(f"experiment {self.id} produced no tables")
        if fragment is None:
            return self.tables[0]
        needle = fragment.lower()
        for candidate in self.tables:
            if needle in candidate.title.lower():
                return candidate
        raise LookupError(
            f"no table of {self.id} matches {fragment!r}; titles: "
            f"{[t.title for t in self.tables]}"
        )

    def show(self) -> None:
        """Print every table (the human CLI view)."""
        for rendered in self.tables:
            rendered.show()

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready payload (``raw`` intentionally excluded)."""
        return {
            "id": self.id,
            "claim": self.claim,
            "metrics": dict(self.metrics),
            "tables": [t.to_dict() for t in self.tables],
            "report": (self.report.to_dict()
                       if self.report is not None else None),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(sanitize_json(self.to_dict()), indent=indent,
                          sort_keys=True)

    def strip_timings(self) -> dict[str, Any]:
        """The serialized result minus every timing / execution-
        geometry field.

        What remains is the **determinism contract** of a run: two
        runs of the same (experiment, seed) — or two replicated runs
        of the same (experiment, master seed, replicas) on *any*
        worker count, with or without injected worker faults, retries,
        or a checkpoint resume — must produce byte-identical stripped
        payloads (``json.dumps(..., sort_keys=True)`` equal).
        Removed: ``report.wall_seconds`` (host timing) and, for
        replicated results, ``report.replication.workers``,
        ``report.replication.wall_seconds``,
        ``report.replication.attempts`` and
        ``report.replication.resumed`` (execution geometry, host
        timings, and retry/resume history — a retried replica reruns
        the same seed, so attempts are bookkeeping, not science; the
        pooled *simulated* statistics all stay, as does the explicit
        ``failed_replicas`` accounting of a partial merge).
        """
        data = json.loads(self.to_json())
        report = data.get("report")
        if report:
            report.pop("wall_seconds", None)
            replication = report.get("replication")
            if replication:
                replication.pop("workers", None)
                replication.pop("wall_seconds", None)
                replication.pop("attempts", None)
                replication.pop("resumed", None)
        return data
