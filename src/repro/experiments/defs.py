"""Definitions of every reproduction experiment.

Each runner regenerates one table/figure of the paper (see
``EXPERIMENTS.md``) at the fidelity the benchmark assertions check.
The tables built here are exactly what ``repro run`` prints and what
the ``benchmarks/bench_*`` modules display before asserting on the
returned ``raw`` payload, so CLI and pytest share one code path.

Seeding: every RNG stream derives from ``ctx.seed`` (default 0) by a
fixed offset, so the default run reproduces the published numbers
bit-for-bit and ``--seed`` shifts every stream coherently.
"""

from __future__ import annotations

from repro.experiments.registry import RunContext, register

__all__: list[str] = []


# ----------------------------------------------------------------------
# F1 — Fig.1: generic stream + MPEG-2 decoder buffers
# ----------------------------------------------------------------------
@register("f1", "Fig.1 stream model & MPEG-2 decoder buffers")
def _f1(ctx: RunContext):
    from repro.streams import (BernoulliModel, Channel,
                               GilbertElliottModel, MpegSource, Sink,
                               StreamPipeline, simulate_mpeg2_decoder)

    def run_pipeline(error_model, max_retries, label, horizon=30.0):
        pipe = StreamPipeline(
            source=MpegSource(fps=25.0, i_frame_bits=300_000.0,
                              seed=ctx.seed + 1),
            channel=Channel(
                bandwidth=5e6, error_model=error_model,
                max_retries=max_retries, tx_energy_per_bit=1e-9,
                rx_energy_per_bit=0.5e-9, seed=ctx.seed + 2,
            ),
            sink=Sink(display_rate_hz=25.0, startup_delay=0.3),
            rx_buffer_size=64,
        )
        return label, pipe.run(horizon=horizon)

    scenarios = [
        run_pipeline(None, 0, "lossless wire"),
        run_pipeline(BernoulliModel(p_loss=0.05), 0, "bernoulli 5%"),
        run_pipeline(GilbertElliottModel(), 0, "gilbert-elliott"),
        run_pipeline(GilbertElliottModel(), 3, "gilbert-elliott + ARQ"),
    ]
    stream_table = ctx.table(
        ["channel", "loss", "underrun", "latency_ms", "retx",
         "energy_mJ"],
        title="F1a: generic multimedia stream (Fig.1a)",
    )
    for label, report in scenarios:
        stream_table.add_row([
            label, report.loss_rate, report.underrun_rate,
            report.mean_latency * 1e3, report.channel.retransmissions,
            report.channel.energy * 1e3,
        ])

    decoder_rows = []
    for freq in (400e6, 150e6, 100e6, 60e6):
        report = simulate_mpeg2_decoder(
            cpu_frequency=freq, horizon=12.0, warmup=2.0,
            seed=ctx.seed,
        )
        decoder_rows.append((freq, report))
    decoder_table = ctx.table(
        ["cpu_mhz", "fps", "b3_occupancy", "b4_occupancy", "util",
         "realtime"],
        title="F1b: MPEG-2 decoder producer-consumer study (Fig.1b)",
    )
    for freq, report in decoder_rows:
        decoder_table.add_row([
            freq / 1e6, report.throughput_fps, report.b3_mean_occupancy,
            report.b4_mean_occupancy, report.cpu_utilization,
            report.realtime,
        ])

    by_label = dict(scenarios)
    ctx.record("bernoulli_loss_rate", by_label["bernoulli 5%"].loss_rate)
    ctx.record("arq_loss_rate",
               by_label["gilbert-elliott + ARQ"].loss_rate)
    ctx.record("decoder_fast_fps", decoder_rows[0][1].throughput_fps)
    ctx.record("decoder_slow_fps", decoder_rows[-1][1].throughput_fps)
    return {"stream": scenarios, "decoder": decoder_rows}


# ----------------------------------------------------------------------
# F2 — Fig.2: extensible-processor design flow
# ----------------------------------------------------------------------
@register("f2", "Fig.2 extensible-processor design flow")
def _f2(ctx: RunContext):
    from repro.asip import (STANDARD_BLOCKS, ExtensibleProcessor,
                            ExtensibleProcessorFlow, IsaRestrictions,
                            IssProfiler, ProcessorParameters,
                            select_blocks, select_extensions_optimal,
                            voice_recognition_workload)
    from repro.utils import format_ratio

    base = ExtensibleProcessor(
        restrictions=IsaRestrictions(max_instructions=9,
                                     gate_budget=200_000.0)
    )
    workload = voice_recognition_workload()
    profile = IssProfiler(base).run(workload)
    report = ExtensibleProcessorFlow(
        base, workload, target_speedup=5.0
    ).run()

    hotspots = ctx.table(
        ["kernel", "cycles", "fraction"],
        title="F2 step 1: ISS profiling (hotspots, 90% coverage)",
    )
    for entry in profile.hotspots(coverage=0.9):
        hotspots.add_row([entry.kernel, entry.cycles, entry.fraction])

    loop = ctx.table(
        ["iteration", "instr_allowed", "selected", "speedup", "gates",
         "meets_speedup", "meets_gates"],
        title="F2: design-flow iterations (Fig.2 loop)",
    )
    for it in report.iterations:
        loop.add_row([
            it.index, it.max_instructions_tried, it.n_selected,
            format_ratio(it.speedup), it.gate_count,
            it.meets_speedup, it.meets_gates,
        ])

    # §3.1's three customization levels, separately and combined.
    restrictions = IsaRestrictions(max_instructions=6,
                                   gate_budget=250_000.0)
    small_base = ExtensibleProcessor(restrictions=restrictions)
    small_profile = IssProfiler(small_base).run(workload)
    selection = select_extensions_optimal(
        small_profile, workload.candidates(), restrictions,
        extension_budget=80_000.0,
    )
    blocks = select_blocks(small_profile, STANDARD_BLOCKS,
                           gate_budget=40_000.0)
    params = ProcessorParameters(icache_kb=32.0, dcache_kb=32.0)
    variants = {
        "base core": small_base,
        "a) instruction extension": small_base.with_customization(
            extensions=selection.selected,
        ),
        "b) predefined blocks": small_base.with_customization(
            blocks=blocks),
        "c) parameterization": small_base.with_customization(
            parameters=params,
        ),
        "a+b+c combined": small_base.with_customization(
            extensions=selection.selected, blocks=blocks,
            parameters=params,
        ),
    }
    level_rows = []
    for label, processor in variants.items():
        speedup = IssProfiler(processor).speedup_over(workload,
                                                      small_base)
        level_rows.append((label, speedup, processor.gate_count()))
    levels = ctx.table(
        ["customization", "speedup", "gates"],
        title="F2 ablation: the three §3.1 customization levels",
    )
    for label, speedup, gates in level_rows:
        levels.add_row([label, format_ratio(speedup), gates])

    ctx.record("final_speedup", report.speedup)
    ctx.record("final_gates", report.gate_count)
    ctx.record("n_iterations", len(report.iterations))
    return {"profile": profile, "report": report, "levels": level_rows}


# ----------------------------------------------------------------------
# E1 — §3.1: ASIP voice recognition operating point
# ----------------------------------------------------------------------
@register("e1", "ASIP voice recognition: 5-10x, <10 instr, <200k gates")
def _e1(ctx: RunContext):
    from repro.asip import (ExtensibleProcessor, IsaRestrictions,
                            IssProfiler, mpeg2_encoder_workload,
                            select_extensions_optimal,
                            voice_recognition_workload)
    from repro.utils import format_ratio

    def sweep(workload, max_instructions=9, gate_budget=200_000.0):
        base = ExtensibleProcessor(
            restrictions=IsaRestrictions(
                max_instructions=max_instructions,
                gate_budget=gate_budget,
            )
        )
        profile = IssProfiler(base).run(workload)
        rows = []
        for allowed in range(1, max_instructions + 1):
            restrictions = IsaRestrictions(
                max_instructions=allowed, gate_budget=gate_budget,
            )
            selection = select_extensions_optimal(
                profile, workload.candidates(), restrictions,
                extension_budget=gate_budget - base.base_gates,
            )
            rows.append((allowed, selection,
                         base.base_gates + selection.gates_used))
        return rows

    voice_rows = sweep(voice_recognition_workload())
    voice = ctx.table(
        ["n_instructions", "speedup", "total_gates", "in_5x_10x_band"],
        title="E1: voice recognition on an extensible processor (§3.1)",
    )
    for allowed, selection, gates in voice_rows:
        voice.add_row([
            allowed, format_ratio(selection.speedup), gates,
            5.0 <= selection.speedup <= 10.0,
        ])

    mpeg_rows = sweep(mpeg2_encoder_workload(), 5)
    mpeg = ctx.table(
        ["n_instructions", "speedup", "total_gates"],
        title="E1 contrast: MPEG-2 encoder (one dominant kernel)",
    )
    for allowed, selection, gates in mpeg_rows:
        mpeg.add_row([allowed, format_ratio(selection.speedup), gates])

    final_allowed, final_selection, final_gates = voice_rows[-1]
    ctx.record("final_speedup", final_selection.speedup)
    ctx.record("final_gates", final_gates)
    ctx.record("n_instructions", final_allowed)
    return {"voice": voice_rows, "mpeg2": mpeg_rows}


# ----------------------------------------------------------------------
# E2 — §3.2: self-similar vs Markovian traffic
# ----------------------------------------------------------------------
@register("e2", "self-similar vs Markovian traffic & queueing")
def _e2(ctx: RunContext):
    from repro.traffic import (aggregate_onoff_trace, autocorrelation,
                               fgn_trace, mmpp2_trace,
                               periodogram_hurst, poisson_trace,
                               rs_hurst, simulate_trace_queue,
                               variance_time_hurst)

    n = 2**15
    mean_rate = 10.0
    service = 12.0
    traces = {
        "fgn H=0.85": fgn_trace(n, 0.85, mean_rate, peakedness=0.4,
                                seed=ctx.seed + 1),
        "fgn H=0.70": fgn_trace(n, 0.70, mean_rate, peakedness=0.4,
                                seed=ctx.seed + 2),
        "onoff a=1.4": aggregate_onoff_trace(
            30, n, alpha=1.4, peak_rate=mean_rate / 7.5,
            seed=ctx.seed + 3,
        ),
        "poisson": poisson_trace(n, mean_rate, seed=ctx.seed + 4),
        "mmpp2": mmpp2_trace(n, mean_rate, burstiness=6.0,
                             seed=ctx.seed + 5),
    }

    hurst_rows = [
        (name, rs_hurst(trace), variance_time_hurst(trace),
         periodogram_hurst(trace))
        for name, trace in traces.items()
    ]
    hurst = ctx.table(
        ["trace", "rs", "variance_time", "periodogram"],
        title="E2a: Hurst estimates (expected: fGn=H, onoff~0.8, "
              "poisson/mmpp~0.5)",
    )
    for row in hurst_rows:
        hurst.add_row(list(row))

    lags = [1, 5, 10, 50, 100]
    acfs = {
        name: [autocorrelation(trace, 100)[lag] for lag in lags]
        for name, trace in traces.items()
    }
    acf = ctx.table(
        ["trace"] + [f"lag{lag}" for lag in lags],
        title="E2b: autocorrelation decay (power-law vs. exponential)",
    )
    for name, values in acfs.items():
        acf.add_row([name] + values)

    levels = [1.0, 5.0, 10.0, 20.0, 50.0]
    queue_rows = {}
    for name, trace in traces.items():
        normalized = trace * (mean_rate / trace.mean())
        result = simulate_trace_queue(normalized, service)
        queue_rows[name] = (result.mean_occupancy,
                            result.survival(levels))
    queues = ctx.table(
        ["trace", "mean_Q"] + [f"P[Q>{int(x)}]" for x in levels],
        title="E2c: queue tails at equal load (rho=0.83)",
    )
    for name, (mean_q, tail) in queue_rows.items():
        queues.add_row([name, mean_q] + list(tail))

    ctx.record("fgn_tail_p20", queue_rows["fgn H=0.85"][1][3])
    ctx.record("poisson_tail_p20", queue_rows["poisson"][1][3])
    return {"hurst": hurst_rows, "acf": (acfs, lags),
            "queue": (queue_rows, levels)}


def _apcg_scenarios():
    """Design points behind E3/E4: the two NoC benchmark task graphs
    as ``repro.scenario/v1`` documents.

    Returned to the :func:`repro.experiments.preflight` hook so
    ``run("e3")``/``run("e4")`` statically verify the *documents*
    before simulating — the same artifact ``repro scenario export``
    writes and ``repro check`` reads, with diagnostics anchored to
    JSON paths rather than live object reprs.
    """
    from repro.noc import mms_apcg, video_surveillance_apcg
    from repro.scenario import Scenario

    return [
        Scenario(name=tg.name, task_graph=tg).to_document()
        for tg in (video_surveillance_apcg(), mms_apcg())
    ]


# ----------------------------------------------------------------------
# E3 — §3.3: energy-aware NoC mapping
# ----------------------------------------------------------------------
@register("e3", "energy-aware NoC mapping (>50% saving)",
          scenario=_apcg_scenarios)
def _e3(ctx: RunContext):
    from repro.noc import (Mesh2D, NocEnergyModel, adhoc_mapping,
                           branch_and_bound_mapping, greedy_mapping,
                           mms_apcg, random_multimedia_apcg,
                           random_noc_mapping,
                           simulated_annealing_mapping,
                           video_surveillance_apcg)

    model = NocEnergyModel()
    problems = [
        (video_surveillance_apcg(), Mesh2D(4, 3)),
        (mms_apcg(), Mesh2D(4, 4)),
    ]
    if ctx.scenario is not None and ctx.scenario.task_graph is not None:
        # --scenario override: map the supplied task graph instead of
        # the built-in benchmarks (mesh sized to fit it).
        problems = [(ctx.scenario.task_graph, Mesh2D(4, 4))]
    results = {}
    for tg, mesh in problems:
        random_cost = sum(
            random_noc_mapping(tg, mesh, seed=ctx.seed + s)
            .communication_energy(tg, model)
            for s in range(5)
        ) / 5
        results[tg.name] = {
            "adhoc": adhoc_mapping(tg, mesh).communication_energy(
                tg, model),
            "random(avg5)": random_cost,
            "greedy": greedy_mapping(tg, mesh).communication_energy(
                tg, model),
            "sa": simulated_annealing_mapping(
                tg, mesh, seed=ctx.seed + 1, n_iterations=20_000
            ).communication_energy(tg, model),
        }
    mapping = ctx.table(
        ["application", "mapping", "comm_energy_uJ", "saving_vs_random",
         "saving_vs_adhoc"],
        title="E3: NoC mapping energy per iteration (§3.3, [20])",
    )
    for app, entry in results.items():
        for scheme, energy in entry.items():
            mapping.add_row([
                app, scheme, energy * 1e6,
                1 - energy / entry["random(avg5)"],
                1 - energy / entry["adhoc"],
            ])

    optimality_rows = []
    for s in range(3):
        tg = random_multimedia_apcg(7, seed=ctx.seed + s)
        mesh = Mesh2D(3, 3)
        optimum = branch_and_bound_mapping(tg, mesh)
        sa = simulated_annealing_mapping(tg, mesh, seed=ctx.seed,
                                         n_iterations=15_000)
        optimality_rows.append((
            s, optimum.communication_energy(tg, model),
            sa.communication_energy(tg, model),
        ))
    optimality = ctx.table(
        ["instance", "bnb_optimum_uJ", "sa_uJ", "gap"],
        title="E3 ablation: SA quality vs. exact branch-and-bound",
    )
    for s, opt, sa_cost in optimality_rows:
        optimality.add_row([s, opt * 1e6, sa_cost * 1e6,
                            sa_cost / opt - 1])

    headline = results[problems[-1][0].name]
    ctx.record("mms_saving_vs_random",
               1 - headline["sa"] / headline["random(avg5)"])
    ctx.record("mms_saving_vs_adhoc",
               1 - headline["sa"] / headline["adhoc"])
    return {"mapping": results, "optimality": optimality_rows}


# ----------------------------------------------------------------------
# E4 — §3.3: EDF vs energy-aware scheduling
# ----------------------------------------------------------------------
@register("e4", "EDF vs energy-aware scheduling (>40% saving)",
          scenario=_apcg_scenarios)
def _e4(ctx: RunContext):
    from repro.core.application import TaskGraph
    from repro.noc import (Mesh2D, edf_schedule, energy_aware_schedule,
                           greedy_mapping, mms_apcg,
                           video_surveillance_apcg)

    problems = [(video_surveillance_apcg(), Mesh2D(4, 3)),
                (mms_apcg(), Mesh2D(4, 4))]
    if (ctx.scenario is not None
            and ctx.scenario.task_graph is not None
            and ctx.scenario.task_graph.period):
        # --scenario override: schedule the supplied (periodic) task
        # graph instead of the built-in benchmarks.
        problems = [(ctx.scenario.task_graph, Mesh2D(4, 4))]

    headline_rows = []
    for tg, mesh in problems:
        mapping = greedy_mapping(tg, mesh)
        edf = edf_schedule(tg, mapping)
        eas = energy_aware_schedule(tg, mapping)
        headline_rows.append((tg.name, edf, eas))
    headline = ctx.table(
        ["application", "scheduler", "makespan_ms", "energy_mJ",
         "feasible", "saving"],
        title="E4: EDF vs energy-aware scheduling (§3.3, [23])",
    )
    for name, edf, eas in headline_rows:
        headline.add_row([name, "EDF@fmax", edf.makespan * 1e3,
                          edf.total_energy * 1e3, edf.feasible, 0.0])
        headline.add_row([
            name, "energy-aware", eas.makespan * 1e3,
            eas.total_energy * 1e3, eas.feasible,
            1 - eas.total_energy / edf.total_energy,
        ])

    def copy_with_period(tg, period):
        clone = TaskGraph(tg.name, period=period)
        for task in tg.tasks:
            clone.add_task(type(task)(task.name, task.cycles,
                                      task.deadline))
        for dep in tg.dependencies:
            clone.add_dependency(type(dep)(dep.src, dep.dst, dep.bits))
        return clone

    base, mesh = problems[0]
    tightness_rows = []
    for factor in (0.6, 0.8, 1.0, 1.5, 2.0):
        tg = copy_with_period(base, base.period * factor)
        mapping = greedy_mapping(tg, mesh)
        edf = edf_schedule(tg, mapping)
        eas = energy_aware_schedule(tg, mapping)
        saving = (1 - eas.total_energy / edf.total_energy
                  if edf.feasible else float("nan"))
        tightness_rows.append((factor, edf.feasible, eas.feasible,
                               saving))
    tightness = ctx.table(
        ["period_factor", "edf_feasible", "eas_feasible", "saving"],
        title="E4 ablation: savings vs. deadline tightness",
    )
    for row in tightness_rows:
        tightness.add_row(list(row))

    name, edf, eas = headline_rows[0]
    ctx.record("vs_saving", 1 - eas.total_energy / edf.total_energy)
    return {"headline": headline_rows, "tightness": tightness_rows}


# ----------------------------------------------------------------------
# E5 — §3.3: NoC packet-size trade-off
# ----------------------------------------------------------------------
@register("e5", "NoC packet-size trade-off")
def _e5(ctx: RunContext):
    from repro.noc import Mesh2D, default_flows, packet_size_sweep

    payloads = [256.0, 1_024.0, 4_096.0, 16_384.0, 65_536.0]
    mesh = Mesh2D(4, 4)
    flows = default_flows(mesh, n_flows=8, message_bits=64_000.0,
                          rate_hz=1_000.0, seed=ctx.seed)
    results = packet_size_sweep(payloads, mesh=mesh, flows=flows,
                                horizon=0.03)
    sweep = ctx.table(
        ["payload_bits", "msg_latency_us", "energy_per_bit_pJ",
         "header_overhead", "goodput_Mbps"],
        title="E5: packet-size trade-off on a 4x4 mesh (§3.3)",
    )
    for r in results:
        sweep.add_row([
            int(r.payload_bits), r.mean_message_latency * 1e6,
            r.energy_per_payload_bit * 1e12, r.header_overhead,
            r.goodput / 1e6,
        ])
    best = min(results, key=lambda r: r.mean_message_latency)
    ctx.record("best_payload_bits", best.payload_bits)
    ctx.record("best_latency_us", best.mean_message_latency * 1e6)
    return {"sweep": results, "payloads": payloads}


# ----------------------------------------------------------------------
# E6 — §4: dynamic transceiver adaptation
# ----------------------------------------------------------------------
@register("e6", "dynamic transceiver adaptation (~12%)")
def _e6(ctx: RunContext):
    from repro.wireless import FiniteStateChannel, evaluate_adaptation

    result = evaluate_adaptation()
    per_state = ctx.table(
        ["channel_state", "static_config", "dynamic_config",
         "static_mJ", "dynamic_mJ"],
        title="E6: per-state transceiver configuration (§4, [26])",
    )
    channel = FiniteStateChannel.indoor_default()
    for state in channel.states:
        per_state.add_row([
            state.name,
            str(result.static_config),
            str(result.dynamic_configs[state.name]),
            result.per_state_static[state.name] * 1e3,
            result.per_state_dynamic[state.name] * 1e3,
        ])

    distance_rows = []
    for distance in (5.0, 10.0, 20.0, 40.0):
        swept = evaluate_adaptation(
            channel=FiniteStateChannel.indoor_default(distance=distance)
        )
        distance_rows.append((distance, swept.energy_reduction))
    distances = ctx.table(
        ["distance_m", "energy_reduction"],
        title="E6 ablation: adaptation gain vs. link distance",
    )
    for row in distance_rows:
        distances.add_row(list(row))

    ctx.record("energy_reduction", result.energy_reduction)
    ctx.record("static_energy_mj", result.static_energy * 1e3)
    ctx.record("dynamic_energy_mj", result.dynamic_energy * 1e3)
    return {"adaptation": result, "distance": distance_rows}


# ----------------------------------------------------------------------
# E7 — §4: JSCC image transmission
# ----------------------------------------------------------------------
@register("e7", "JSCC image transmission (~60%)")
def _e7(ctx: RunContext):
    from repro.wireless import (FiniteStateChannel, ImageCoderModel,
                                TransceiverParams,
                                evaluate_image_transmission,
                                optimize_for_state)

    result = evaluate_image_transmission()
    per_state = ctx.table(
        ["channel_state", "baseline_config", "adaptive_config",
         "baseline_mJ", "adaptive_mJ"],
        title="E7: image transmission energy per state (§4, [27])",
    )
    channel = FiniteStateChannel.indoor_default(distance=20.0)
    for state in channel.states:
        per_state.add_row([
            state.name,
            str(result.baseline_config),
            str(result.adaptive_configs[state.name]),
            result.per_state_baseline[state.name] * 1e3,
            result.per_state_adaptive[state.name] * 1e3,
        ])

    params = TransceiverParams()
    coder = ImageCoderModel()
    state = channel.states[1]  # "light" shadowing
    psnr_rows = []
    for psnr in (28.0, 32.0, 36.0, 40.0):
        config, energy = optimize_for_state(
            state, channel, params, coder, psnr_target=psnr
        )
        psnr_rows.append((psnr, config.bpp, config.target_ber, energy))
    quality = ctx.table(
        ["psnr_target_db", "bpp", "target_ber", "energy_mJ"],
        title="E7 ablation: quality-energy trade-off (light shadowing)",
    )
    for psnr, bpp, ber, energy in psnr_rows:
        quality.add_row([psnr, bpp, ber, energy * 1e3])

    ctx.record("energy_saving", result.energy_saving)
    return {"transmission": result, "psnr": psnr_rows}


# ----------------------------------------------------------------------
# E8 — §4.1: feedback FGS streaming
# ----------------------------------------------------------------------
@register("e8", "feedback FGS streaming (~15% client RX energy)")
def _e8(ctx: RunContext):
    from repro.streaming import (DvfsVideoClient, FeedbackServer,
                                 FgsSource, FullRateServer,
                                 compare_streaming_policies,
                                 run_session)

    comparison = compare_streaming_policies(n_frames=2_000,
                                            seed=ctx.seed)
    policies = ctx.table(
        ["policy", "rx_energy_J", "compute_energy_J", "mean_psnr_db",
         "norm_load", "waste"],
        title="E8: FGS streaming policies (§4.1, [28])",
    )
    for report in (comparison.full_rate, comparison.feedback):
        policies.add_row([
            report.policy, report.rx_energy, report.compute_energy,
            report.mean_psnr, report.mean_normalized_load,
            report.waste_fraction,
        ])

    dvfs_results = {}
    for label, enabled in [("dvfs", True), ("fixed-fmax", False)]:
        client = DvfsVideoClient(dvfs_enabled=enabled)
        report = run_session(
            FeedbackServer(), n_frames=1_500, seed=ctx.seed + 2,
            client=client, source=FgsSource(seed=ctx.seed + 2),
        )
        dvfs_results[label] = report
    dvfs = ctx.table(
        ["client", "compute_energy_J", "rx_energy_J", "mean_psnr_db"],
        title="E8 ablation: client DVFS on vs off (feedback server)",
    )
    for label, report in dvfs_results.items():
        dvfs.add_row([label, report.compute_energy, report.rx_energy,
                      report.mean_psnr])

    load_rows = []
    for margin in (0.4, 0.6, 0.8, 1.0):
        client = DvfsVideoClient()
        report = run_session(
            FeedbackServer(safety_margin=margin), n_frames=1_200,
            seed=ctx.seed + 1, client=client,
            source=FgsSource(seed=ctx.seed + 1),
        )
        load_rows.append((margin, report.mean_normalized_load,
                          report.mean_psnr, report.waste_fraction))
    client = DvfsVideoClient()
    full = run_session(FullRateServer(), n_frames=1_200,
                       seed=ctx.seed + 1, client=client,
                       source=FgsSource(seed=ctx.seed + 1))
    load_rows.append((float("nan"), full.mean_normalized_load,
                      full.mean_psnr, full.waste_fraction))
    load = ctx.table(
        ["server_margin", "norm_load", "mean_psnr_db", "waste"],
        title="E8 ablation: the normalized-decoding-load landscape "
              "(unity = optimum)",
    )
    for row in load_rows:
        load.add_row(list(row))

    ctx.record("rx_energy_reduction", comparison.rx_energy_reduction)
    ctx.record("psnr_cost_db", comparison.psnr_cost)
    ctx.record("feedback_norm_load",
               comparison.feedback.mean_normalized_load)
    return {"comparison": comparison, "dvfs": dvfs_results,
            "load": load_rows}


# ----------------------------------------------------------------------
# E9 — §4.2: power-aware MANET routing
# ----------------------------------------------------------------------
@register("e9", "power-aware MANET routing (>20% lifetime)")
def _e9(ctx: RunContext):
    import numpy as np

    from repro.manet import PROTOCOLS, compare_protocols

    seeds = tuple(ctx.seed + s for s in range(4))
    all_results = {
        seed: compare_protocols(
            PROTOCOLS, n_nodes=50, seed=seed, n_sessions=100_000,
            bits_per_session=80_000.0, death_fraction=0.2,
        )
        for seed in seeds
    }
    names = [cls().name for cls in PROTOCOLS]
    means = {}
    for name in names:
        means[name] = (
            float(np.mean([all_results[s][name].lifetime_sessions
                           for s in seeds])),
            float(np.mean([all_results[s][name].first_death_session or 0
                           for s in seeds])),
            float(np.mean([all_results[s][name].delivered
                           for s in seeds])),
            float(np.mean([all_results[s][name].total_energy
                           for s in seeds])),
        )
    base = means["min-power"][0]
    lifetimes = ctx.table(
        ["protocol", "lifetime_sessions", "first_death", "delivered",
         "energy_J", "lifetime_vs_minpower"],
        title="E9: MANET network lifetime, mean over "
              f"{len(seeds)} topologies (§4.2)",
    )
    for name in names:
        lifetime, first, delivered, energy = means[name]
        lifetimes.add_row([name, lifetime, first, delivered, energy,
                           lifetime / base - 1])

    ctx.record("battery_cost_gain", means["battery-cost"][0] / base - 1)
    ctx.record("min_power_lifetime", base)
    return {"results": all_results, "means": means, "seeds": seeds}


# ----------------------------------------------------------------------
# E10 — §2.2: simulation vs analysis
# ----------------------------------------------------------------------
@register("e10", "simulation vs analytical steady state")
def _e10(ctx: RunContext):
    from repro.analysis import AnalyticalStreamModel, compare_mm1k
    from repro.streams import (BernoulliModel, CBRSource, Channel,
                               Sink, StreamPipeline)

    rows, sim_seconds, ana_seconds = compare_mm1k(
        8.0, 10.0, 5, horizon=3_000.0, warmup=200.0,
        seed=ctx.seed + 1,
    )
    mm1k = ctx.table(
        ["metric", "simulated", "analytical", "rel_error"],
        title="E10a: M/M/1/5 — DES vs. closed form (§2.2)",
    )
    for row in rows:
        mm1k.add_row([row.metric, row.simulated, row.analytical,
                      row.relative_error])

    source_rate, loss, service_rate, capacity = 40.0, 0.1, 50.0, 8
    model = AnalyticalStreamModel(
        source_rate=source_rate, channel_loss=loss,
        service_rate=service_rate, rx_capacity=capacity,
    )
    analytical = model.solve()
    pipe = StreamPipeline(
        source=CBRSource(rate_hz=source_rate, packet_bits=8_000.0,
                         seed=ctx.seed + 3),
        channel=Channel(bandwidth=1e9,
                        error_model=BernoulliModel(p_loss=loss),
                        seed=ctx.seed + 4),
        sink=Sink(display_rate_hz=service_rate),
        rx_buffer_size=capacity,
    )
    simulated = pipe.run(horizon=500.0)
    stream = ctx.table(
        ["metric", "simulated", "analytical"],
        title="E10b: Fig.1(a) stream — DES vs. CTMC model",
    )
    stream.add_row(["throughput", simulated.throughput,
                    analytical.throughput])
    stream.add_row(["loss_rate", simulated.loss_rate,
                    analytical.loss_rate])
    stream.add_row(["rx_occupancy", simulated.rx_buffer_mean,
                    analytical.mean_rx_occupancy])

    speedup = sim_seconds / max(ana_seconds, 1e-9)
    ctx.record("analysis_speedup", speedup)
    ctx.record("max_rel_error", max(r.relative_error for r in rows))
    return {"mm1k": (rows, sim_seconds, ana_seconds),
            "stream": (analytical, simulated)}


# ----------------------------------------------------------------------
# E11 — §2: worst-case vs average provisioning
# ----------------------------------------------------------------------
@register("e11", "worst-case vs average-case provisioning")
def _e11(ctx: RunContext):
    import numpy as np

    from repro.streams import Mpeg2Workload, simulate_mpeg2_decoder

    workload = Mpeg2Workload(cycles_cv=0.8)
    fps = workload.fps

    rng = np.random.default_rng(ctx.seed + 7)
    n = 20_000
    mean_demand = 0.0
    samples = np.zeros(n)
    for mean in (workload.receive_cycles, workload.vld_cycles,
                 workload.idct_cycles, workload.mv_cycles,
                 workload.display_cycles):
        if mean == 0:
            continue
        cv = workload.cycles_cv
        sigma = np.sqrt(np.log(1 + cv * cv))
        mu = np.log(mean) - sigma**2 / 2
        samples += rng.lognormal(mu, sigma, size=n)
        mean_demand += mean
    p999 = float(np.quantile(samples, 0.999))

    rows = []
    for label, per_frame_budget in [
        ("worst-case (p99.9)", p999),
        ("2x average", 2.0 * mean_demand),
        ("1.3x average + buffers", 1.3 * mean_demand),
        ("average (underprovisioned)", 1.0 * mean_demand),
    ]:
        frequency = per_frame_budget * fps
        report = simulate_mpeg2_decoder(
            workload=workload, cpu_frequency=frequency,
            b3_capacity=8, b4_capacity=8,
            horizon=20.0, warmup=2.0, seed=ctx.seed + 3,
        )
        rows.append((label, frequency, report))
    overdesign_ratio = p999 / mean_demand

    provisioning = ctx.table(
        ["provisioning", "cpu_mhz", "fps", "loss", "util",
         "energy_per_frame_mJ"],
        title="E11: worst-case vs average-case provisioning (§2, [4])",
    )
    for label, frequency, report in rows:
        delivered = max(report.result.metrics["delivered"], 1.0)
        provisioning.add_row([
            label, frequency / 1e6, report.throughput_fps,
            report.loss_rate, report.cpu_utilization,
            report.result.metrics["energy"] / delivered * 1e3,
        ])

    ctx.record("overdesign_ratio", overdesign_ratio)
    worst = rows[0][2]
    buffered = rows[2][2]
    ctx.record("worst_case_utilization", worst.cpu_utilization)
    ctx.record("buffered_utilization", buffered.cpu_utilization)
    return {"rows": rows, "overdesign_ratio": overdesign_ratio}


# ----------------------------------------------------------------------
# E12 — §3.2: bus vs NoC scaling
# ----------------------------------------------------------------------
@register("e12", "bus vs NoC scaling")
def _e12(ctx: RunContext):
    from repro.noc import bus_vs_noc_sweep

    tiles = (4, 8, 16, 32)
    pairs = bus_vs_noc_sweep(tile_counts=tiles, rate_per_tile=20_000.0)
    scaling = ctx.table(
        ["tiles", "offered_Gbps", "bus_saturation", "bus_latency_us",
         "noc_saturation", "noc_latency_us"],
        title="E12: shared bus vs 2D-mesh NoC under uniform traffic "
              "(§3.2)",
    )
    for bus, noc in pairs:
        scaling.add_row([
            bus.n_tiles, bus.offered_bps / 1e9,
            bus.saturation, bus.mean_latency * 1e6,
            noc.saturation, noc.mean_latency * 1e6,
        ])
    large_bus, large_noc = pairs[-1]
    ctx.record("large_bus_saturation", large_bus.saturation)
    ctx.record("large_noc_saturation", large_noc.saturation)
    return {"pairs": pairs, "tiles": tiles}


# ----------------------------------------------------------------------
# E13 — §3.3: memory organization
# ----------------------------------------------------------------------
@register("e13", "centralized vs local memories")
def _e13(ctx: RunContext):
    from repro.noc import memory_organization_study

    study = memory_organization_study(access_rate=400_000.0,
                                      seed=ctx.seed + 1)
    memories = ctx.table(
        ["organization", "mean_latency_us", "max_latency_us",
         "network_Mbit", "hot_link_Mbps"],
        title="E13: centralized vs distributed memory on a 4x4 NoC "
              "(§3.3)",
    )
    for result in study.values():
        memories.add_row([
            result.organization,
            result.mean_access_latency * 1e6,
            result.max_access_latency * 1e6,
            result.network_bits / 1e6,
            result.hot_link_bps / 1e6,
        ])
    central = study["centralized"]
    distributed = study["distributed"]
    ctx.record("latency_ratio",
               central.mean_access_latency
               / distributed.mean_access_latency)
    ctx.record("hot_link_ratio",
               central.hot_link_bps / distributed.hot_link_bps)
    return {"study": study}


# ----------------------------------------------------------------------
# E14 — §4: DPM trade-off
# ----------------------------------------------------------------------
@register("e14", "DPM QoS-energy trade-off")
def _e14(ctx: RunContext):
    from repro.core import DpmDevice, timeout_sweep
    from repro.core.dpm import generate_workload

    timeouts = (0.0, 0.005, 0.02, 0.05, 0.2)
    results = timeout_sweep(
        timeouts, workload=generate_workload(seed=ctx.seed)
    )
    device = DpmDevice()
    sweep = ctx.table(
        ["policy", "energy_J", "saving", "late_rate", "delay_ms"],
        title=f"E14: DPM energy-QoS trade-off "
              f"(break-even {device.break_even() * 1e3:.1f} ms)",
    )
    for r in results:
        sweep.add_row([
            r.policy, r.energy, r.energy_saving, r.late_rate,
            r.total_delay * 1e3,
        ])
    oracle = results[-1]
    ctx.record("oracle_saving", oracle.energy_saving)
    ctx.record("best_timeout_saving",
               max(r.energy_saving for r in results[1:-1]))
    return {"results": results, "timeouts": timeouts}


# ----------------------------------------------------------------------
# E15 — §5: ambient redundancy & user-aware energy
# ----------------------------------------------------------------------
@register("e15", "ambient redundancy & user-aware energy")
def _e15(ctx: RunContext):
    from repro.ambient import (default_home_user, redundancy_study,
                               user_aware_energy_study)

    redundancy = redundancy_study(n_slots=30_000, seed=ctx.seed + 4)
    availability = ctx.table(
        ["nodes_per_zone", "measured_availability",
         "analytical_availability"],
        title="E15a: smart-space availability vs redundancy "
              "(6 zones, failing nodes)",
    )
    for r in redundancy:
        availability.add_row([
            r.nodes_per_zone, r.measured_availability,
            r.analytical_availability,
        ])

    user = default_home_user()
    energy_results = user_aware_energy_study(n_slots=30_000,
                                             seed=ctx.seed + 5)
    pi = user.steady_state()
    energy = ctx.table(
        ["policy", "energy", "service_ratio"],
        title="E15b: always-on vs user-aware ambient operation "
              f"(user absent {pi['absent'] * 100:.0f}% of slots)",
    )
    for r in energy_results.values():
        energy.add_row([r.policy, r.energy, r.service_ratio])

    on = energy_results["always-on"]
    aware = energy_results["user-aware"]
    ctx.record("user_aware_saving", 1 - aware.energy / on.energy)
    ctx.record("triplicated_availability",
               redundancy[-1].measured_availability)
    return {"redundancy": redundancy, "energy": energy_results,
            "user": user}


# ----------------------------------------------------------------------
# E16 — §2.1: rate/ARQ co-exploration
# ----------------------------------------------------------------------
@register("e16", "source-rate / retransmission co-exploration")
def _e16(ctx: RunContext):
    from repro.streams import explore_rate_arq, pareto_points

    points = explore_rate_arq(horizon=20.0)
    front = pareto_points(points)
    front_set = {(p.i_frame_bits, p.max_retries) for p in front}
    exploration = ctx.table(
        ["i_frame_bits", "max_retries", "loss", "underrun",
         "energy_J", "quality_score", "pareto"],
        title="E16: source-rate / retransmission co-exploration "
              "(§2.1, [6])",
    )
    for p in points:
        exploration.add_row([
            int(p.i_frame_bits), p.max_retries, p.report.loss_rate,
            p.report.underrun_rate, p.energy, p.displayed_quality,
            (p.i_frame_bits, p.max_retries) in front_set,
        ])
    ctx.record("n_pareto_points", len(front))
    ctx.record("n_configs", len(points))
    return {"points": points, "front": front}


# ----------------------------------------------------------------------
# E17 — §2.2: state-space explosion
# ----------------------------------------------------------------------
@register("e17", "exact-analysis state-space explosion")
def _e17(ctx: RunContext):
    from repro.analysis import state_space_study

    rows = state_space_study(max_stages=5, capacity=3)
    explosion = ctx.table(
        ["pipeline_stages", "exact_states", "exact_seconds",
         "sim_seconds", "exact_throughput", "sim_throughput"],
        title="E17: exact CTMC vs simulation as the model grows "
              "(§2.2)",
    )
    for row in rows:
        explosion.add_row([
            row["stages"], row["states"], row["exact_seconds"],
            row["sim_seconds"], row["exact_throughput"],
            row["sim_throughput"],
        ])
    ctx.record("max_states", rows[-1]["states"])
    ctx.record("exact_seconds_final", rows[-1]["exact_seconds"])
    ctx.record("sim_seconds_final", rows[-1]["sim_seconds"])
    return {"rows": rows}


# ----------------------------------------------------------------------
# R1 — §6: resilience / graceful degradation
# ----------------------------------------------------------------------
@register("r1", "graceful degradation under injected faults")
def _r1(ctx: RunContext):
    from repro.resilience import resilience_report

    report = resilience_report(
        scenarios=("stream", "arq-streaming", "manet"),
        fault_rates={
            "stream": (0.0, 0.05, 0.1, 0.2, 0.4),
            "arq-streaming": (0.0, 0.05, 0.1, 0.2, 0.4),
            "manet": (0.0, 0.001, 0.002, 0.005, 0.01),
        },
        seed=ctx.seed,
        horizon=20.0, n_frames=400, n_sessions=2000,
    )
    degradation = ctx.table(
        ["scenario", "fault_rate", "qos_resilient", "qos_baseline",
         "baseline_crashed"],
        title="R1: QoS vs fault rate, resilience layer on/off (§6)",
    )
    for name, curves in report.items():
        # The degradation curve as a time series over the sweep axis:
        # t = fault rate, value = delivered QoS.  Renders as a
        # sparkline per (scenario, mode) in the HTML dashboard.
        for mode in ("resilient", "baseline"):
            curve = curves[mode]
            series = ctx.metrics.timeseries(
                "r1_qos", scenario=name, mode=mode)
            for i, rate in enumerate(curve.fault_rates):
                series.add(rate, curve.points[i].qos)
        for i, rate in enumerate(curves["resilient"].fault_rates):
            resilient = curves["resilient"].points[i]
            baseline = curves["baseline"].points[i]
            degradation.add_row([
                name, rate, resilient.qos, baseline.qos,
                bool(baseline.detail.get("crashed", False)),
            ])
    for name, curves in report.items():
        ctx.record(f"{name}_resilient_min_qos",
                   curves["resilient"].min_qos())
        ctx.record(f"{name}_baseline_min_qos",
                   curves["baseline"].min_qos())
    return {"report": report}
