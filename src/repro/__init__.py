"""repro — a holistic distributed-multimedia system design framework.

A from-scratch reproduction of *"Distributed Multimedia System Design:
A Holistic Perspective"* (R. Marculescu, M. Pedram, J. Henkel,
DATE 2004).  The paper argues that networked multimedia systems must be
designed node- and network-centric at once, with power as the first-
class constraint; this package builds every subsystem that argument
rests on:

* :mod:`repro.des` — a discrete-event simulation kernel;
* :mod:`repro.core` — application/architecture models, mapping, QoS,
  power, evaluation and the holistic design flow (§1–2);
* :mod:`repro.streams` — the Fig.1 stream abstraction and the MPEG-2
  decoder process network;
* :mod:`repro.analysis` — Markov chains and queueing formulas (§2.2);
* :mod:`repro.traffic` — self-similar vs. Markovian traffic (§3.2);
* :mod:`repro.noc` — networks-on-chip: mapping, scheduling, packet
  sizing (§3.2–3.3);
* :mod:`repro.asip` — extensible processors and the Fig.2 design flow
  (§3.1);
* :mod:`repro.wireless` — modulation/coding/energy adaptation (§4);
* :mod:`repro.streaming` — energy-aware MPEG-4 FGS streaming (§4.1);
* :mod:`repro.manet` — power-aware ad-hoc routing (§4.2).

Quickstart::

    from repro.core import (ApplicationGraph, ProcessNode, ChannelSpec,
                            Platform, ProcessingElement, QoSSpec,
                            HolisticDesignFlow)
    # build app + platform, then:
    # report = HolisticDesignFlow(app, platform, QoSSpec(...)).run()

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
per-claim reproduction experiments (indexed in ``DESIGN.md``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
