"""repro — a holistic distributed-multimedia system design framework.

A from-scratch reproduction of *"Distributed Multimedia System Design:
A Holistic Perspective"* (R. Marculescu, M. Pedram, J. Henkel,
DATE 2004).  The paper argues that networked multimedia systems must be
designed node- and network-centric at once, with power as the first-
class constraint; this package builds every subsystem that argument
rests on:

* :mod:`repro.des` — a discrete-event simulation kernel;
* :mod:`repro.core` — application/architecture models, mapping, QoS,
  power, evaluation and the holistic design flow (§1–2);
* :mod:`repro.streams` — the Fig.1 stream abstraction and the MPEG-2
  decoder process network;
* :mod:`repro.analysis` — Markov chains and queueing formulas (§2.2);
* :mod:`repro.traffic` — self-similar vs. Markovian traffic (§3.2);
* :mod:`repro.noc` — networks-on-chip: mapping, scheduling, packet
  sizing (§3.2–3.3);
* :mod:`repro.asip` — extensible processors and the Fig.2 design flow
  (§3.1);
* :mod:`repro.wireless` — modulation/coding/energy adaptation (§4);
* :mod:`repro.streaming` — energy-aware MPEG-4 FGS streaming (§4.1);
* :mod:`repro.manet` — power-aware ad-hoc routing (§4.2);
* :mod:`repro.resilience` — fault injection and graceful degradation
  (§6);
* :mod:`repro.scenario` — versioned JSON scenario interchange
  (``repro.scenario/v1``) with a seeded generative fuzz corpus
  (``repro scenario``);
* :mod:`repro.check` — static model verification and simulation lint
  (``repro check``);
* :mod:`repro.obs` — tracing, metrics and run reports;
* :mod:`repro.experiments` — the unified Experiment API every bench
  and the CLI run through.

Quickstart::

    from repro import experiments
    result = experiments.run("e3")        # -> ExperimentResult
    result.show()                         # the paper tables
    result.metrics                        # headline KPIs
    result.report.summary_lines()         # run report

or, from a shell, ``python -m repro run e3 --json``.  See
``examples/`` for runnable scenarios and ``benchmarks/`` for the
per-claim reproduction experiments (indexed in ``DESIGN.md``).
"""

from __future__ import annotations

import importlib

__version__ = "1.8.0"

#: Subpackages resolved lazily (PEP 562) so ``import repro`` stays
#: cheap; each appears in ``__all__`` as part of the public surface.
_SUBPACKAGES = (
    "ambient",
    "analysis",
    "asip",
    "check",
    "cli",
    "core",
    "des",
    "experiments",
    "manet",
    "noc",
    "obs",
    "parallel",
    "resilience",
    "scenario",
    "streaming",
    "streams",
    "traffic",
    "utils",
    "wireless",
)

__all__ = ["__version__", "run", "ExperimentResult", *_SUBPACKAGES]


def __getattr__(name: str):
    if name in _SUBPACKAGES:
        return importlib.import_module(f"repro.{name}")
    if name in ("run", "ExperimentResult"):
        from repro import experiments

        return getattr(experiments, name)
    raise AttributeError(f"module {__name__!r} has no attribute "
                         f"{name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
