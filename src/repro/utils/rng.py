"""Reproducible random-number stream management.

Discrete-event models are only debuggable when every stochastic component
draws from its own named stream derived deterministically from a single
master seed.  ``RandomStreams`` provides that: the same master seed always
yields the same per-component generators, regardless of the order in which
components are created.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams", "spawn_rng", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses SHA-256 so that similar names ("src0", "src1") map to unrelated
    seeds, unlike simple additive schemes.  This is also the primitive
    behind :meth:`RandomStreams.fork`: forked namespaces hash under a
    ``"fork:"`` prefix, so a fork's streams can never collide with the
    parent's plain :meth:`RandomStreams.get` streams — the property
    :mod:`repro.parallel` relies on when deriving per-replica seeds.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


#: Backwards-compatible private alias (pre-1.3 internal name).
_seed_for = derive_seed


def spawn_rng(master_seed: int, name: str) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for stream ``name``."""
    return np.random.default_rng(_seed_for(master_seed, name))


class RandomStreams:
    """A factory of named, independent random streams.

    Parameters
    ----------
    master_seed:
        Seed from which every named stream is derived.  Two
        ``RandomStreams`` objects with the same master seed hand out
        identical streams for identical names.

    Examples
    --------
    >>> streams = RandomStreams(42)
    >>> a = streams.get("arrivals")
    >>> b = streams.get("service")
    >>> a is streams.get("arrivals")
    True
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for stream ``name``."""
        if name not in self._streams:
            self._streams[name] = spawn_rng(self.master_seed, name)
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Return a child ``RandomStreams`` namespaced under ``name``.

        Useful when a subsystem wants to manage its own streams without
        risking name collisions with its parent.
        """
        return RandomStreams(_seed_for(self.master_seed, f"fork:{name}"))

    def __repr__(self) -> str:
        return (
            f"RandomStreams(master_seed={self.master_seed}, "
            f"streams={sorted(self._streams)})"
        )
