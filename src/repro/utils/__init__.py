"""Shared utilities: seeded RNG streams, statistics, and table rendering.

These helpers are deliberately dependency-light; every other subpackage of
:mod:`repro` builds on them.
"""

from repro.utils.rng import RandomStreams, derive_seed, spawn_rng
from repro.utils.stats import (
    SummaryStats,
    TimeWeightedStats,
    confidence_interval,
    batch_means,
)
from repro.utils.tables import Table, format_ratio, format_si

__all__ = [
    "RandomStreams",
    "derive_seed",
    "spawn_rng",
    "SummaryStats",
    "TimeWeightedStats",
    "confidence_interval",
    "batch_means",
    "Table",
    "format_ratio",
    "format_si",
]
