"""One consistent way to keep old argument spellings alive.

The API audit (observability PR) standardized on ``seed=`` for RNG
seeding and ``horizon=`` for simulated duration; renamed parameters
stay callable under their old names for one release through
:func:`deprecated_alias`, which warns and maps old → new.
"""

from __future__ import annotations

import warnings
from typing import Any

__all__ = ["deprecated_alias"]


def deprecated_alias(
    func_name: str,
    old: str,
    new: str,
    old_value: Any,
    new_value: Any,
    sentinel: Any = None,
) -> Any:
    """Resolve a renamed keyword argument.

    Returns ``new_value`` unless the caller supplied the old spelling
    (``old_value is not sentinel``), in which case a
    :class:`DeprecationWarning` is emitted and ``old_value`` wins —
    unless both spellings were given, which is an error.
    """
    if old_value is sentinel:
        return new_value
    if new_value is not sentinel:
        raise TypeError(
            f"{func_name}() got both {old!r} and its replacement "
            f"{new!r}; pass only {new!r}"
        )
    warnings.warn(
        f"{func_name}({old}=...) is deprecated; use {new}=",
        DeprecationWarning,
        stacklevel=3,
    )
    return old_value
