"""Plain-text table rendering for benchmark reports.

Every benchmark in ``benchmarks/`` prints the rows it reproduces from the
paper through :class:`Table`, so the reproduction output has one consistent
look that is easy to diff against ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["Table", "format_ratio", "format_si"]


def format_ratio(value: float, digits: int = 2) -> str:
    """Format a multiplicative factor, e.g. ``7.31x``."""
    return f"{value:.{digits}f}x"


_SI_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
]


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(2.1e-3, 'J')``.

    >>> format_si(2.1e-3, 'J')
    '2.10 mJ'
    """
    if value == 0:
        return f"0 {unit}".strip()
    magnitude = abs(value)
    for factor, prefix in _SI_PREFIXES:
        if magnitude >= factor:
            return f"{value / factor:.{digits - 1}f} {prefix}{unit}".strip()
    factor, prefix = _SI_PREFIXES[-1]
    return f"{value / factor:.{digits - 1}f} {prefix}{unit}".strip()


class Table:
    """Minimal monospace table with a title, used by the bench harness.

    Examples
    --------
    >>> t = Table(["scheme", "energy"], title="demo")
    >>> t.add_row(["EDF", 1.0])
    >>> t.add_row(["EAS", 0.55])
    >>> print(t.render())  # doctest: +ELLIPSIS
    === demo ===
    ...
    """

    def __init__(self, columns: Sequence[str], title: str = ""):
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, values: Sequence[Any]) -> None:
        """Append one row; floats are formatted to 4 significant digits."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns"
            )
        formatted = []
        for value in values:
            if isinstance(value, float):
                formatted.append(f"{value:.4g}")
            else:
                formatted.append(str(value))
        self.rows.append(formatted)

    def render(self) -> str:
        """Return the table as a string."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

        parts = []
        if self.title:
            parts.append(f"=== {self.title} ===")
        parts.append(line(self.columns))
        parts.append(line(["-" * w for w in widths]))
        parts.extend(line(row) for row in self.rows)
        return "\n".join(parts)

    def show(self) -> None:
        """Print the rendered table (benchmarks call this)."""
        print()
        print(self.render())

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form: title, column names, formatted rows."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
        }
