"""Streaming statistics for simulation output analysis.

Two accumulator flavours are provided:

* :class:`SummaryStats` — per-observation statistics (Welford's online
  algorithm), used for latencies, packet sizes, energies, ...
* :class:`TimeWeightedStats` — piecewise-constant signals weighted by how
  long they hold each value, used for queue lengths and utilizations.

Plus classical output-analysis helpers: normal-theory confidence intervals
and the method of batch means for correlated simulation output.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "SummaryStats",
    "TimeWeightedStats",
    "confidence_interval",
    "batch_means",
]


class SummaryStats:
    """Online mean/variance/min/max over a stream of observations.

    Uses Welford's numerically stable recurrence, so millions of
    observations can be folded in without storing them.

    Examples
    --------
    >>> s = SummaryStats()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     s.add(x)
    >>> s.mean
    2.0
    >>> s.variance
    1.0
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        value = float(value)
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations into the accumulator."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN with fewer than two samples)."""
        if self.count < 2:
            return math.nan
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        var = self.variance
        return math.sqrt(var) if var == var else math.nan

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count < 2:
            return math.nan
        return self.std / math.sqrt(self.count)

    def merge(self, other: "SummaryStats") -> "SummaryStats":
        """Return a new accumulator equivalent to both inputs combined."""
        merged = SummaryStats(self.name or other.name)
        n = self.count + other.count
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged.count = n
        merged.total = self.total + other.total
        merged._mean = self._mean + delta * other.count / n
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self.count * other.count / n
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"SummaryStats({label} n={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )


class TimeWeightedStats:
    """Time-average of a piecewise-constant signal (e.g. queue length).

    Call :meth:`record` every time the signal changes; the accumulator
    weights the *previous* value by the elapsed interval.

    Examples
    --------
    >>> tw = TimeWeightedStats(start_time=0.0, initial=0.0)
    >>> tw.record(2.0, 10.0)   # value was 0 during [0, 2)
    >>> tw.record(4.0, 0.0)    # value was 10 during [2, 4)
    >>> tw.mean(at_time=4.0)
    5.0
    """

    def __init__(self, start_time: float = 0.0, initial: float = 0.0,
                 name: str = ""):
        self.name = name
        self._last_time = float(start_time)
        self._last_value = float(initial)
        self._area = 0.0
        self._sq_area = 0.0
        self._start = float(start_time)
        self.minimum = float(initial)
        self.maximum = float(initial)

    @property
    def current(self) -> float:
        """Latest recorded value of the signal."""
        return self._last_value

    def record(self, time: float, value: float) -> None:
        """Signal takes ``value`` from ``time`` onward."""
        time = float(time)
        if time < self._last_time:
            raise ValueError(
                f"time went backwards: {time} < {self._last_time}"
            )
        dt = time - self._last_time
        self._area += self._last_value * dt
        self._sq_area += self._last_value * self._last_value * dt
        self._last_time = time
        self._last_value = float(value)
        if self._last_value < self.minimum:
            self.minimum = self._last_value
        if self._last_value > self.maximum:
            self.maximum = self._last_value

    def mean(self, at_time: float | None = None) -> float:
        """Time-average of the signal up to ``at_time`` (default: last)."""
        if at_time is None:
            at_time = self._last_time
        span = at_time - self._start
        if span <= 0:
            return math.nan
        extra = self._last_value * (at_time - self._last_time)
        return (self._area + extra) / span

    def mean_square(self, at_time: float | None = None) -> float:
        """Time-average of the squared signal up to ``at_time``."""
        if at_time is None:
            at_time = self._last_time
        span = at_time - self._start
        if span <= 0:
            return math.nan
        extra = self._last_value ** 2 * (at_time - self._last_time)
        return (self._sq_area + extra) / span

    def variance(self, at_time: float | None = None) -> float:
        """Time-weighted variance of the signal."""
        mu = self.mean(at_time)
        if mu != mu:
            return math.nan
        return max(0.0, self.mean_square(at_time) - mu * mu)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"TimeWeightedStats({label} mean={self.mean():.6g})"


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Return ``(mean, half_width)`` of a Student-t confidence interval.

    Parameters
    ----------
    values:
        Independent (or batched) observations.
    confidence:
        Two-sided coverage probability, e.g. ``0.95``.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return math.nan, math.nan
    mean = float(arr.mean())
    if arr.size < 2:
        return mean, math.inf
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    t = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return mean, t * sem


def batch_means(
    values: Sequence[float], n_batches: int = 10
) -> list[float]:
    """Split correlated output into ``n_batches`` batch means.

    The classical method of batch means: consecutive observations are
    grouped into equal batches whose means are approximately independent,
    making :func:`confidence_interval` applicable to autocorrelated
    simulation output.  Trailing observations that do not fill a batch are
    dropped.
    """
    arr = np.asarray(values, dtype=float)
    if n_batches <= 0:
        raise ValueError("n_batches must be positive")
    batch_size = arr.size // n_batches
    if batch_size == 0:
        raise ValueError(
            f"{arr.size} observations cannot fill {n_batches} batches"
        )
    used = arr[: batch_size * n_batches].reshape(n_batches, batch_size)
    return [float(m) for m in used.mean(axis=1)]
