"""Energy-aware mapping of task graphs onto NoC tiles (E3, after [20]).

"a recently proposed algorithm for energy-aware mapping of the IPs onto
regular NoC architectures shows that more than 50% energy savings are
possible, for a complex video/audio application, compared to an ad-hoc
implementation" (§3.3).

The objective is the total communication energy per graph iteration

    E = Σ_edges  bits(e) · E_bit(hops(map(src), map(dst)))

with one task per tile.  Implemented optimizers:

* :func:`adhoc_mapping` — tasks in declaration order, tiles row-major
  (the "ad-hoc implementation" baseline of the claim);
* :func:`random_noc_mapping` — uniform random permutation;
* :func:`greedy_mapping` — cluster growth on communication affinity;
* :func:`simulated_annealing_mapping` — swap-neighbourhood SA;
* :func:`branch_and_bound_mapping` — exact optimum for small instances
  (validates the heuristics).
"""

from __future__ import annotations

import math
from typing import Mapping as TMapping

from repro.core.application import TaskGraph
from repro.noc.energy import NocEnergyModel
from repro.noc.topology import Mesh2D, Tile
from repro.utils.rng import spawn_rng

__all__ = [
    "NocMapping",
    "TileCompatibility",
    "adhoc_mapping",
    "random_noc_mapping",
    "greedy_mapping",
    "simulated_annealing_mapping",
    "parallel_annealing_mapping",
    "branch_and_bound_mapping",
]


class TileCompatibility:
    """Heterogeneity constraints: which tiles can host which tasks.

    §3.2: "each tile can be a general-purpose processor, a DSP, a
    memory subsystem, etc." — an application-specific task can only map
    onto a tile of the right kind.  Unlisted tasks may go anywhere.

    Examples
    --------
    >>> compat = TileCompatibility({"dsp_task": {Tile(0, 0), Tile(1, 0)}})
    >>> compat.allows("dsp_task", Tile(0, 0))
    True
    >>> compat.allows("dsp_task", Tile(3, 3))
    False
    >>> compat.allows("anything_else", Tile(3, 3))
    True
    """

    def __init__(self, allowed: TMapping[str, set[Tile]] | None = None):
        self._allowed = {
            task: set(tiles) for task, tiles in (allowed or {}).items()
        }
        for task, tiles in self._allowed.items():
            if not tiles:
                raise ValueError(f"{task!r} has an empty tile set")

    def allows(self, task: str, tile: Tile) -> bool:
        """True when ``task`` may run on ``tile``."""
        tiles = self._allowed.get(task)
        return tiles is None or tile in tiles

    def allowed_tiles(self, task: str, universe) -> list[Tile]:
        """Tiles of ``universe`` usable by ``task``."""
        return [tile for tile in universe if self.allows(task, tile)]

    def check(self, mapping: "NocMapping") -> None:
        """Raise ``ValueError`` when the mapping violates a constraint."""
        for task, tile in mapping.assignment.items():
            if not self.allows(task, tile):
                raise ValueError(
                    f"task {task!r} mapped to incompatible tile {tile}"
                )


class NocMapping:
    """An assignment of tasks to mesh tiles (injective).

    Examples
    --------
    >>> from repro.core.application import Task, TaskGraph, Dependency
    >>> tg = TaskGraph()
    >>> _ = tg.add_task(Task("a", 1.0)); _ = tg.add_task(Task("b", 1.0))
    >>> _ = tg.add_dependency(Dependency("a", "b", bits=1e6))
    >>> mesh = Mesh2D(2, 2)
    >>> m = NocMapping(mesh, {"a": Tile(0, 0), "b": Tile(1, 0)})
    >>> m.hops("a", "b")
    1
    """

    def __init__(self, mesh: Mesh2D, assignment: TMapping[str, Tile]):
        self.mesh = mesh
        self._assignment = dict(assignment)
        tiles = list(self._assignment.values())
        if len(set(tiles)) != len(tiles):
            raise ValueError("two tasks mapped to the same tile")
        for tile in tiles:
            if not mesh.contains(tile):
                raise ValueError(f"{tile} outside {mesh}")

    @property
    def assignment(self) -> dict[str, Tile]:
        """Copy of the task→tile assignment."""
        return dict(self._assignment)

    def tile_of(self, task: str) -> Tile:
        """Tile hosting ``task``."""
        return self._assignment[task]

    def hops(self, src: str, dst: str) -> int:
        """Hop count between two tasks' tiles."""
        return self.mesh.hops(self.tile_of(src), self.tile_of(dst))

    def validate(self, tg: TaskGraph) -> None:
        """Raise unless every task of ``tg`` is mapped."""
        missing = {t.name for t in tg.tasks} - set(self._assignment)
        if missing:
            raise ValueError(f"unmapped tasks: {sorted(missing)}")

    def communication_energy(self, tg: TaskGraph,
                             energy: NocEnergyModel) -> float:
        """Total communication energy per graph iteration, joules."""
        return sum(
            bits * energy.bit_energy(self.hops(src, dst))
            for src, dst, bits in tg.communication_pairs()
        )

    def weighted_hop_count(self, tg: TaskGraph) -> float:
        """Bit-weighted mean hop count (a dimensionless quality score)."""
        total_bits = 0.0
        weighted = 0.0
        for src, dst, bits in tg.communication_pairs():
            total_bits += bits
            weighted += bits * self.hops(src, dst)
        return weighted / total_bits if total_bits else 0.0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NocMapping):
            return NotImplemented
        return self._assignment == other._assignment

    def __repr__(self) -> str:
        return f"NocMapping({len(self._assignment)} tasks on {self.mesh})"


def _require_fits(tg: TaskGraph, mesh: Mesh2D) -> list[str]:
    names = [t.name for t in tg.tasks]
    if len(names) > mesh.n_tiles:
        raise ValueError(
            f"{len(names)} tasks do not fit on {mesh.n_tiles} tiles"
        )
    return names


def adhoc_mapping(tg: TaskGraph, mesh: Mesh2D) -> NocMapping:
    """Declaration order onto row-major tiles — the naive baseline."""
    names = _require_fits(tg, mesh)
    tiles = list(mesh.tiles())
    return NocMapping(mesh, dict(zip(names, tiles)))


def random_noc_mapping(tg: TaskGraph, mesh: Mesh2D, seed: int = 0,
                       compatibility: TileCompatibility | None = None,
                       ) -> NocMapping:
    """Random injective placement (uniform when unconstrained).

    With heterogeneity constraints, the most-constrained tasks pick
    first from their allowed free tiles.
    """
    names = _require_fits(tg, mesh)
    rng = spawn_rng(seed, "noc-random-mapping")
    tiles = list(mesh.tiles())
    if compatibility is None:
        picks = rng.choice(len(tiles), size=len(names), replace=False)
        return NocMapping(
            mesh,
            {name: tiles[int(i)] for name, i in zip(names, picks)},
        )
    free = set(tiles)
    placement: dict[str, Tile] = {}
    order = sorted(
        names,
        key=lambda n: len(compatibility.allowed_tiles(n, tiles)),
    )
    for name in order:
        options = [
            tile for tile in compatibility.allowed_tiles(name, tiles)
            if tile in free
        ]
        if not options:
            raise ValueError(
                f"no compatible free tile left for task {name!r}"
            )
        tile = options[int(rng.integers(0, len(options)))]
        placement[name] = tile
        free.remove(tile)
    return NocMapping(mesh, placement)


def greedy_mapping(tg: TaskGraph, mesh: Mesh2D,
                   compatibility: TileCompatibility | None = None,
                   ) -> NocMapping:
    """Cluster growth: place the heaviest communicators first, each new
    task on the (compatible) free tile minimizing its incremental
    energy."""
    names = _require_fits(tg, mesh)
    compatibility = compatibility or TileCompatibility()
    energy = NocEnergyModel()
    # Communication affinity between task pairs (symmetric).
    affinity: dict[str, dict[str, float]] = {n: {} for n in names}
    for src, dst, bits in tg.communication_pairs():
        affinity[src][dst] = affinity[src].get(dst, 0.0) + bits
        affinity[dst][src] = affinity[dst].get(src, 0.0) + bits

    total_affinity = {
        n: sum(affinity[n].values()) for n in names
    }
    order = sorted(names, key=lambda n: -total_affinity[n])
    free_tiles = set(mesh.tiles())
    placed: dict[str, Tile] = {}

    # Seed: most-communicative task near the mesh centre.
    centre = Tile(mesh.width // 2, mesh.height // 2)
    seed_options = compatibility.allowed_tiles(order[0], free_tiles)
    if not seed_options:
        raise ValueError(f"no compatible tile for task {order[0]!r}")
    first_tile = min(seed_options, key=lambda t: mesh.hops(t, centre))
    placed[order[0]] = first_tile
    free_tiles.remove(first_tile)

    remaining = order[1:]
    while remaining:
        # Pick the unplaced task most attached to the placed set.
        def attachment(name: str) -> float:
            return sum(
                bits for other, bits in affinity[name].items()
                if other in placed
            )

        best_task = max(remaining, key=attachment)
        remaining.remove(best_task)

        def incremental_cost(tile: Tile) -> float:
            return sum(
                bits * energy.bit_energy(mesh.hops(tile, placed[other]))
                for other, bits in affinity[best_task].items()
                if other in placed
            )

        options = compatibility.allowed_tiles(
            best_task, sorted(free_tiles)
        )
        if not options:
            raise ValueError(
                f"no compatible free tile for task {best_task!r}"
            )
        best_tile = min(options, key=incremental_cost)
        placed[best_task] = best_tile
        free_tiles.remove(best_tile)
    return NocMapping(mesh, placed)


def simulated_annealing_mapping(
    tg: TaskGraph,
    mesh: Mesh2D,
    energy: NocEnergyModel | None = None,
    seed: int = 0,
    n_iterations: int = 20_000,
    initial_temperature: float | None = None,
    cooling: float = 0.999,
    compatibility: TileCompatibility | None = None,
) -> NocMapping:
    """Swap-neighbourhood simulated annealing over placements.

    The state includes empty tiles, so moves are either task↔task swaps
    or task→empty-tile relocations.  Moves violating the heterogeneity
    constraints are rejected outright.
    """
    names = _require_fits(tg, mesh)
    if not 0.0 < cooling < 1.0:
        raise ValueError("cooling must lie in (0, 1)")
    energy = energy or NocEnergyModel()
    rng = spawn_rng(seed, "noc-sa")
    tiles = list(mesh.tiles())

    # State: slot i of `slots` holds a task index or -1 (empty tile).
    if compatibility is None:
        slots = [-1] * len(tiles)
        for i, __ in enumerate(names):
            slots[i] = i
        rng.shuffle(slots)
    else:
        # Constraint-respecting initial placement.
        initial = random_noc_mapping(
            tg, mesh, seed=seed, compatibility=compatibility
        )
        tile_index = {tile: i for i, tile in enumerate(tiles)}
        slots = [-1] * len(tiles)
        for task_idx, name in enumerate(names):
            slots[tile_index[initial.tile_of(name)]] = task_idx

    def move_allowed(i: int, j: int) -> bool:
        if compatibility is None:
            return True
        ok = True
        if slots[i] >= 0:
            ok &= compatibility.allows(names[slots[i]], tiles[j])
        if slots[j] >= 0:
            ok &= compatibility.allows(names[slots[j]], tiles[i])
        return ok

    pairs = [
        (src, dst, bits) for src, dst, bits in tg.communication_pairs()
    ]
    name_index = {n: i for i, n in enumerate(names)}
    edges = [
        (name_index[src], name_index[dst], bits)
        for src, dst, bits in pairs
    ]

    def tile_of_task() -> dict[int, Tile]:
        return {
            task: tiles[slot]
            for slot, task in enumerate(slots) if task >= 0
        }

    def cost(positions: dict[int, Tile]) -> float:
        return sum(
            bits * energy.bit_energy(
                mesh.hops(positions[a], positions[b])
            )
            for a, b, bits in edges
        )

    positions = tile_of_task()
    current = cost(positions)
    best_slots = slots[:]
    best_cost = current

    if initial_temperature is None:
        initial_temperature = max(current * 0.1, 1e-18)
    temperature = initial_temperature

    for _ in range(n_iterations):
        i, j = rng.integers(0, len(tiles), size=2)
        if i == j or (slots[i] < 0 and slots[j] < 0):
            continue
        if not move_allowed(i, j):
            continue
        slots[i], slots[j] = slots[j], slots[i]
        positions = tile_of_task()
        candidate = cost(positions)
        delta = candidate - current
        if delta <= 0 or rng.random() < math.exp(
                -delta / max(temperature, 1e-30)):
            current = candidate
            if current < best_cost:
                best_cost = current
                best_slots = slots[:]
        else:
            slots[i], slots[j] = slots[j], slots[i]
        temperature *= cooling

    placement = {
        names[task]: tiles[slot]
        for slot, task in enumerate(best_slots) if task >= 0
    }
    return NocMapping(mesh, placement)


def _sa_start(payload: tuple) -> tuple:
    """One independent annealing start (process-pool worker body)."""
    (tg, mesh, energy, seed, n_iterations, initial_temperature,
     cooling, compatibility) = payload
    energy = energy or NocEnergyModel()
    mapping = simulated_annealing_mapping(
        tg, mesh, energy=energy, seed=seed,
        n_iterations=n_iterations,
        initial_temperature=initial_temperature, cooling=cooling,
        compatibility=compatibility,
    )
    return mapping.communication_energy(tg, energy), mapping


def parallel_annealing_mapping(
    tg: TaskGraph,
    mesh: Mesh2D,
    energy: NocEnergyModel | None = None,
    seed: int = 0,
    n_starts: int = 4,
    workers: int | None = None,
    n_iterations: int = 20_000,
    initial_temperature: float | None = None,
    cooling: float = 0.999,
    compatibility: TileCompatibility | None = None,
) -> NocMapping:
    """Best-of-``n_starts`` simulated annealing, starts run in parallel.

    Annealing quality is start-dependent; independent restarts are
    embarrassingly parallel.  Start *i* anneals with the forked seed
    ``fork_seed(seed, f"sa-start/{i}")``
    (:func:`repro.parallel.fork_seed`), so the start seeds are a pure
    function of ``(seed, i)`` — the winning mapping is identical for
    any ``workers`` value, including 1 (which runs the starts inline).
    Ties on energy break toward the lowest start index.

    ``n_starts=1`` with ``workers=1`` degenerates to a single
    :func:`simulated_annealing_mapping` run with a *forked* seed (not
    ``seed`` itself — the start-seed derivation is uniform).
    """
    from repro.parallel import fork_seed, parallel_map

    if n_starts < 1:
        raise ValueError(f"n_starts must be >= 1, got {n_starts}")
    payloads = [
        (tg, mesh, energy, fork_seed(seed, f"sa-start/{i}"),
         n_iterations, initial_temperature, cooling, compatibility)
        for i in range(n_starts)
    ]
    outcomes = parallel_map(_sa_start, payloads, workers=workers)
    best_cost, best_mapping = outcomes[0]
    for cost, mapping in outcomes[1:]:
        if cost < best_cost:
            best_cost, best_mapping = cost, mapping
    return best_mapping


def branch_and_bound_mapping(
    tg: TaskGraph,
    mesh: Mesh2D,
    energy: NocEnergyModel | None = None,
    max_tasks: int = 10,
    compatibility: TileCompatibility | None = None,
) -> NocMapping:
    """Exact minimum-energy mapping by depth-first branch and bound.

    Exponential — guarded by ``max_tasks``.  Used to certify heuristic
    quality on small instances.  Heterogeneity constraints prune the
    search further.
    """
    names = _require_fits(tg, mesh)
    if len(names) > max_tasks:
        raise ValueError(
            f"{len(names)} tasks exceed the branch-and-bound guard "
            f"({max_tasks})"
        )
    energy = energy or NocEnergyModel()
    compatibility = compatibility or TileCompatibility()
    tiles = list(mesh.tiles())

    affinity: dict[str, list[tuple[str, float]]] = {n: [] for n in names}
    for src, dst, bits in tg.communication_pairs():
        affinity[src].append((dst, bits))
        affinity[dst].append((src, bits))

    # Order tasks by total traffic so heavy decisions happen early.
    order = sorted(
        names, key=lambda n: -sum(b for _, b in affinity[n])
    )
    best = {
        "cost": math.inf,
        "placement": None,
    }

    def recurse(depth: int, placed: dict[str, Tile],
                used: set[Tile], cost_so_far: float) -> None:
        if cost_so_far >= best["cost"]:
            return
        if depth == len(order):
            best["cost"] = cost_so_far
            best["placement"] = dict(placed)
            return
        task = order[depth]
        for tile in tiles:
            if tile in used or not compatibility.allows(task, tile):
                continue
            increment = sum(
                bits * energy.bit_energy(mesh.hops(tile, placed[other]))
                for other, bits in affinity[task] if other in placed
            )
            placed[task] = tile
            used.add(tile)
            recurse(depth + 1, placed, used, cost_so_far + increment)
            del placed[task]
            used.remove(tile)

    recurse(0, {}, set(), 0.0)
    if best["placement"] is None:
        raise ValueError("no feasible placement under the constraints")
    return NocMapping(mesh, best["placement"])
