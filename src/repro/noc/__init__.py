"""Network-on-chip substrate (§3.2–3.3): topology, routing, energy,
packet-level simulation, application graphs, energy-aware mapping and
scheduling, packet-size exploration."""

from repro.noc.apcg import (
    mms_apcg,
    random_multimedia_apcg,
    video_surveillance_apcg,
)
from repro.noc.bus_comparison import (
    FabricResult,
    bus_vs_noc_sweep,
    simulate_bus_fabric,
    simulate_noc_fabric,
)
from repro.noc.energy import NocEnergyModel
from repro.noc.memory_study import (
    MemoryStudyResult,
    hot_link_load,
    memory_organization_study,
    simulate_memory_traffic,
)
from repro.noc.mapping import (
    NocMapping,
    TileCompatibility,
    adhoc_mapping,
    branch_and_bound_mapping,
    greedy_mapping,
    random_noc_mapping,
    parallel_annealing_mapping,
    simulated_annealing_mapping,
)
from repro.noc.network import NocNetwork, NocNetworkStats, NocPacket
from repro.noc.packet_sizing import (
    MessageFlow,
    PacketSizeResult,
    default_flows,
    packet_size_sweep,
    run_packet_size_trial,
)
from repro.noc.routing import route_links, west_first_route, xy_route
from repro.noc.scheduling import (
    ScheduledTask,
    ScheduleResult,
    edf_schedule,
    energy_aware_schedule,
)
from repro.noc.topology import Mesh2D, Tile

__all__ = [
    "Mesh2D",
    "Tile",
    "NocEnergyModel",
    "xy_route",
    "west_first_route",
    "route_links",
    "NocPacket",
    "NocNetwork",
    "NocNetworkStats",
    "video_surveillance_apcg",
    "mms_apcg",
    "random_multimedia_apcg",
    "NocMapping",
    "TileCompatibility",
    "adhoc_mapping",
    "random_noc_mapping",
    "greedy_mapping",
    "simulated_annealing_mapping",
    "parallel_annealing_mapping",
    "branch_and_bound_mapping",
    "ScheduleResult",
    "ScheduledTask",
    "edf_schedule",
    "energy_aware_schedule",
    "MessageFlow",
    "PacketSizeResult",
    "default_flows",
    "run_packet_size_trial",
    "packet_size_sweep",
    "FabricResult",
    "simulate_bus_fabric",
    "simulate_noc_fabric",
    "bus_vs_noc_sweep",
    "MemoryStudyResult",
    "hot_link_load",
    "simulate_memory_traffic",
    "memory_organization_study",
]
