"""Regular NoC topologies (§3.2): "a chip consists of regular tiles,
where each tile can be a general-purpose processor, a DSP, a memory
subsystem, etc. A router is embedded within each tile."

:class:`Mesh2D` is the canonical 2D mesh: tiles addressed by (x, y),
links between 4-neighbours, Manhattan hop distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["Tile", "Mesh2D"]


@dataclass(frozen=True, order=True)
class Tile:
    """A tile coordinate on the mesh."""

    x: int
    y: int

    def __repr__(self) -> str:
        return f"({self.x},{self.y})"


class Mesh2D:
    """A width × height 2D mesh.

    Examples
    --------
    >>> mesh = Mesh2D(3, 3)
    >>> len(list(mesh.tiles()))
    9
    >>> mesh.hops(Tile(0, 0), Tile(2, 1))
    3
    """

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("mesh dimensions must be >= 1")
        self.width = width
        self.height = height

    @property
    def n_tiles(self) -> int:
        """Number of tiles."""
        return self.width * self.height

    def tiles(self) -> Iterator[Tile]:
        """All tiles in row-major order."""
        for y in range(self.height):
            for x in range(self.width):
                yield Tile(x, y)

    def contains(self, tile: Tile) -> bool:
        """True when ``tile`` lies on the mesh."""
        return 0 <= tile.x < self.width and 0 <= tile.y < self.height

    def index(self, tile: Tile) -> int:
        """Row-major index of ``tile``."""
        if not self.contains(tile):
            raise ValueError(f"{tile} outside {self}")
        return tile.y * self.width + tile.x

    def tile_at(self, index: int) -> Tile:
        """Tile at row-major ``index``."""
        if not 0 <= index < self.n_tiles:
            raise ValueError("index out of range")
        return Tile(index % self.width, index // self.width)

    def neighbors(self, tile: Tile) -> list[Tile]:
        """4-neighbourhood of ``tile`` (on-mesh only)."""
        if not self.contains(tile):
            raise ValueError(f"{tile} outside {self}")
        candidates = [
            Tile(tile.x + 1, tile.y),
            Tile(tile.x - 1, tile.y),
            Tile(tile.x, tile.y + 1),
            Tile(tile.x, tile.y - 1),
        ]
        return [c for c in candidates if self.contains(c)]

    def links(self) -> list[tuple[Tile, Tile]]:
        """All directed links (both directions of every mesh edge)."""
        result = []
        for tile in self.tiles():
            for neighbor in self.neighbors(tile):
                result.append((tile, neighbor))
        return result

    def hops(self, src: Tile, dst: Tile) -> int:
        """Manhattan (minimal) hop count between two tiles."""
        for tile in (src, dst):
            if not self.contains(tile):
                raise ValueError(f"{tile} outside {self}")
        return abs(src.x - dst.x) + abs(src.y - dst.y)

    def __repr__(self) -> str:
        return f"Mesh2D({self.width}x{self.height})"
