"""The packet-size trade-off study (E5, after [21][22]).

"A multimedia system may favor large packet sizes since, for example,
entire video frames should be transmitted by means of a small total
number of packets.  On the other hand, large packets might prohibitively
long block a network link causing a degradation in the allowable network
throughput." (§3.3)

:func:`packet_size_sweep` pushes the same message workload (video frames
between tile pairs) through the DES network at a range of packet sizes
and reports, per size: mean message latency, energy per payload bit and
header overhead — exposing the interior optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.des import Environment
from repro.noc.energy import NocEnergyModel
from repro.noc.network import NocNetwork
from repro.noc.topology import Mesh2D, Tile
from repro.utils.rng import spawn_rng
from repro.utils.stats import SummaryStats

__all__ = ["MessageFlow", "PacketSizeResult", "run_packet_size_trial",
           "packet_size_sweep", "default_flows"]


@dataclass(frozen=True)
class MessageFlow:
    """A periodic message stream between two tiles.

    Parameters
    ----------
    src, dst:
        Endpoints.
    message_bits:
        Size of each message (e.g. one video frame).
    rate_hz:
        Messages per second.
    """

    src: Tile
    dst: Tile
    message_bits: float
    rate_hz: float

    def __post_init__(self) -> None:
        if self.message_bits <= 0 or self.rate_hz <= 0:
            raise ValueError("message size and rate must be positive")


def default_flows(mesh: Mesh2D, n_flows: int = 8,
                  message_bits: float = 64_000.0,
                  rate_hz: float = 1_000.0, seed: int = 0
                  ) -> list[MessageFlow]:
    """Random distinct tile pairs carrying identical frame streams."""
    if n_flows < 1:
        raise ValueError("n_flows must be >= 1")
    rng = spawn_rng(seed, "packet-flows")
    tiles = list(mesh.tiles())
    flows = []
    for _ in range(n_flows):
        i, j = rng.choice(len(tiles), size=2, replace=False)
        flows.append(MessageFlow(tiles[int(i)], tiles[int(j)],
                                 message_bits, rate_hz))
    return flows


@dataclass
class PacketSizeResult:
    """Metrics for one packet size."""

    payload_bits: float
    mean_message_latency: float
    p_latency_std: float
    energy_per_payload_bit: float
    header_overhead: float
    messages_delivered: int
    goodput: float


def run_packet_size_trial(
    flows: list[MessageFlow],
    mesh: Mesh2D,
    payload_bits: float,
    header_bits: float = 64.0,
    link_bandwidth: float = 1e9,
    router_latency: float = 20e-9,
    horizon: float = 0.05,
    energy_model: NocEnergyModel | None = None,
) -> PacketSizeResult:
    """Simulate the workload at one packet size."""
    if payload_bits <= 0:
        raise ValueError("payload_bits must be positive")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    env = Environment()
    network = NocNetwork(
        env, mesh, link_bandwidth=link_bandwidth,
        router_latency=router_latency, energy_model=energy_model,
    )
    message_latency = SummaryStats("message-latency")
    delivered = [0]

    def flow_proc(flow: MessageFlow, flow_id: int):
        period = 1.0 / flow.rate_hz
        message_counter = 0
        while True:
            yield env.timeout(period)
            created = env.now
            n_packets = max(1, math.ceil(
                flow.message_bits / payload_bits
            ))
            remaining = flow.message_bits
            sends = []
            for _ in range(n_packets):
                chunk = min(payload_bits, remaining)
                remaining -= chunk
                packet = network.new_packet(
                    flow.src, flow.dst, payload_bits=chunk,
                    header_bits=header_bits,
                    message_id=flow_id * 1_000_000 + message_counter,
                )
                sends.append(network.send(packet))
            message_counter += 1

            def waiter(sends=sends, created=created):
                yield env.all_of(sends)
                message_latency.add(env.now - created)
                delivered[0] += 1

            env.process(waiter())

    for flow_id, flow in enumerate(flows):
        env.process(flow_proc(flow, flow_id))
    env.run(until=horizon)

    stats = network.stats
    energy_per_bit = (
        stats.energy / stats.payload_bits if stats.payload_bits
        else math.nan
    )
    return PacketSizeResult(
        payload_bits=payload_bits,
        mean_message_latency=message_latency.mean,
        p_latency_std=message_latency.std,
        energy_per_payload_bit=energy_per_bit,
        header_overhead=stats.header_overhead,
        messages_delivered=delivered[0],
        goodput=stats.goodput(horizon),
    )


def packet_size_sweep(
    payload_sizes,
    mesh: Mesh2D | None = None,
    flows: list[MessageFlow] | None = None,
    **trial_kwargs,
) -> list[PacketSizeResult]:
    """Run :func:`run_packet_size_trial` across ``payload_sizes``."""
    mesh = mesh or Mesh2D(4, 4)
    flows = flows or default_flows(mesh)
    return [
        run_packet_size_trial(flows, mesh, float(size), **trial_kwargs)
        for size in payload_sizes
    ]
