"""NoC bit-energy model (the model of [20], Hu & Marculescu).

The energy of sending one bit from tile i to tile j over an XY route is

    E_bit(i, j) = (hops + 1) · E_Sbit + hops · E_Lbit

where ``E_Sbit`` is the energy a bit burns in each router it traverses
(source and destination included) and ``E_Lbit`` the energy on each
inter-tile link.  This is the objective the mapping algorithms of E3
minimize.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.topology import Mesh2D, Tile

__all__ = ["NocEnergyModel"]


@dataclass(frozen=True)
class NocEnergyModel:
    """Per-bit energy figures of a tile-based NoC.

    Parameters
    ----------
    switch_energy_per_bit:
        E_Sbit — joules per bit per traversed router (0.18 µm-era
        figures are sub-pJ; values here are all relative anyway).
    link_energy_per_bit:
        E_Lbit — joules per bit per traversed link.
    """

    switch_energy_per_bit: float = 0.98e-12
    link_energy_per_bit: float = 1.2e-12

    def __post_init__(self) -> None:
        if self.switch_energy_per_bit < 0 or self.link_energy_per_bit < 0:
            raise ValueError("energies must be non-negative")

    def bit_energy(self, hops: int) -> float:
        """E_bit for a route of ``hops`` links."""
        if hops < 0:
            raise ValueError("hops must be non-negative")
        return ((hops + 1) * self.switch_energy_per_bit
                + hops * self.link_energy_per_bit)

    def transfer_energy(self, mesh: Mesh2D, src: Tile, dst: Tile,
                        bits: float) -> float:
        """Energy to move ``bits`` from ``src`` to ``dst`` (minimal
        route)."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return bits * self.bit_energy(mesh.hops(src, dst))
