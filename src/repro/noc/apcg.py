"""Application characterization graphs (APCGs) for NoC experiments.

The mapping/scheduling papers the text summarizes ([20], [23]) evaluate
on multimedia task graphs annotated with communication volumes.  Those
exact benchmark files are not redistributable, so this module provides
faithful stand-ins:

* :func:`video_surveillance_apcg` — the §3.2 motivating example ("motion
  detection, filtering, rendering, object matching, ...") as a pipeline
  with a dominant data path and light control traffic.
* :func:`mms_apcg` — an MMS-style combined audio/video encoder–decoder
  graph in the spirit of [20]'s benchmark (16 tasks, heavily asymmetric
  volumes).
* :func:`random_multimedia_apcg` — a TGFF-flavoured random generator for
  parameter sweeps.

Edge ``bits`` are per graph iteration; the :class:`TaskGraph` period
turns them into bandwidths.
"""

from __future__ import annotations

import numpy as np

from repro.core.application import Dependency, Task, TaskGraph
from repro.utils.rng import spawn_rng

__all__ = [
    "video_surveillance_apcg",
    "mms_apcg",
    "random_multimedia_apcg",
]

_KB = 8.0 * 1024.0  # bits in a kilobyte


def video_surveillance_apcg() -> TaskGraph:
    """The video-surveillance system of §3.2.

    "the data flow passes from the node performing motion detection to
    the one performing filtering, so on so forth. Along this path, the
    network should provide the highest bandwidth, whereas other
    computational nodes (for example, reading and interpreting user
    input) require less bandwidth."
    """
    tg = TaskGraph("video-surveillance", period=1.0 / 25.0)
    tasks = [
        ("camera_in", 0.05e6),
        ("motion_detect", 2.0e6),
        ("filtering", 1.5e6),
        ("rendering", 1.25e6),
        ("object_match", 2.5e6),
        ("tracking", 0.75e6),
        ("encode_out", 1.0e6),
        ("user_input", 0.025e6),
        ("ui_overlay", 0.15e6),
        ("storage", 0.1e6),
    ]
    for name, cycles in tasks:
        tg.add_task(Task(name, cycles))
    heavy = 64 * _KB        # the dominant video path
    light = 0.5 * _KB       # control traffic
    edges = [
        ("camera_in", "motion_detect", heavy),
        ("motion_detect", "filtering", heavy),
        ("filtering", "rendering", heavy * 0.75),
        ("filtering", "object_match", heavy * 0.75),
        ("object_match", "tracking", 8 * _KB),
        ("rendering", "encode_out", heavy * 0.5),
        ("tracking", "encode_out", 4 * _KB),
        ("user_input", "ui_overlay", light),
        ("ui_overlay", "encode_out", 2 * _KB),
        ("encode_out", "storage", heavy * 0.25),
    ]
    for src, dst, bits in edges:
        tg.add_dependency(Dependency(src, dst, bits=bits))
    return tg


def mms_apcg() -> TaskGraph:
    """An MMS-style audio/video codec graph (after [20]'s benchmark).

    Sixteen tasks: an MP3-style audio path and an H.26x/MPEG-style video
    path sharing input demux and output mux stages, with the classic
    wildly asymmetric communication volumes that make smart mapping pay.
    """
    tg = TaskGraph("mms", period=1.0 / 25.0)
    tasks = [
        ("demux", 0.1e6),
        # audio decode path
        ("huff_dec", 0.4e6),
        ("dequant_a", 0.25e6),
        ("stereo", 0.2e6),
        ("imdct", 0.75e6),
        ("filter_bank", 0.6e6),
        ("audio_out", 0.05e6),
        # video decode path
        ("vld", 1.25e6),
        ("dequant_v", 0.45e6),
        ("idct", 1.75e6),
        ("motion_comp", 1.4e6),
        ("frame_store", 0.15e6),
        ("video_out", 0.1e6),
        # upstream encode path feeding the network
        ("audio_enc", 0.9e6),
        ("video_enc", 2.25e6),
        ("mux", 0.1e6),
    ]
    for name, cycles in tasks:
        tg.add_task(Task(name, cycles))
    edges = [
        ("demux", "huff_dec", 12 * _KB),
        ("huff_dec", "dequant_a", 12 * _KB),
        ("dequant_a", "stereo", 16 * _KB),
        ("stereo", "imdct", 16 * _KB),
        ("imdct", "filter_bank", 32 * _KB),
        ("filter_bank", "audio_out", 16 * _KB),
        ("demux", "vld", 96 * _KB),
        ("vld", "dequant_v", 96 * _KB),
        ("dequant_v", "idct", 128 * _KB),
        ("idct", "motion_comp", 128 * _KB),
        ("motion_comp", "frame_store", 192 * _KB),
        ("frame_store", "video_out", 128 * _KB),
        ("frame_store", "motion_comp", 0.0),  # ordering only
        ("audio_enc", "mux", 16 * _KB),
        ("video_enc", "mux", 96 * _KB),
        # The muxed bitstream (audio + video) looped back into the
        # decoder side; this is the edge that joins the encode and
        # decode halves of the graph, so it carries the full stream
        # volume rather than being an ordering-only placeholder.
        ("mux", "demux", 112 * _KB),
    ]
    for src, dst, bits in edges:
        try:
            tg.add_dependency(Dependency(src, dst, bits=bits))
        except ValueError:
            # Drop edges that would create cycles (control loopbacks);
            # the APCG proper is acyclic.
            pass
    return tg


def random_multimedia_apcg(
    n_tasks: int,
    seed: int = 0,
    fanout: int = 2,
    mean_bits: float = 32 * _KB,
    period: float = 1.0 / 25.0,
) -> TaskGraph:
    """A random layered DAG with lognormal communication volumes.

    Mimics TGFF-style generated multimedia graphs: mostly pipeline-ish
    with occasional fan-out, volumes spread over two orders of
    magnitude.
    """
    if n_tasks < 2:
        raise ValueError("need at least two tasks")
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    rng = spawn_rng(seed, "random-apcg")
    tg = TaskGraph(f"random-{n_tasks}", period=period)
    for i in range(n_tasks):
        cycles = float(rng.lognormal(np.log(1.5e6), 0.8))
        tg.add_task(Task(f"t{i}", cycles))
    for i in range(1, n_tasks):
        # Each task gets 1..fanout parents among earlier tasks, keeping
        # the graph connected and acyclic.
        n_parents = int(rng.integers(1, fanout + 1))
        lo = max(0, i - 6)
        parents = rng.choice(np.arange(lo, i),
                             size=min(n_parents, i - lo), replace=False)
        for p in np.atleast_1d(parents):
            bits = float(rng.lognormal(np.log(mean_bits), 1.0))
            tg.add_dependency(Dependency(f"t{int(p)}", f"t{i}",
                                         bits=bits))
    return tg
