"""Packet-switched NoC simulation on the DES kernel (§3.2).

"Instead of routing design specific global on-chip wires, the inter-tile
communication can be achieved by routing packets."  Each directed mesh
link is a unit-capacity resource; packets traverse their XY route
link-by-link (store-and-forward), paying a per-hop router latency plus
serialization, and contending with other packets for links — the
mechanism behind both NoC advantages (parallel transactions) and the
packet-size trade-off of E5 (long packets block links).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.des import Environment, Resource
from repro.noc.energy import NocEnergyModel
from repro.noc.routing import route_links, xy_route
from repro.noc.topology import Mesh2D, Tile
from repro.utils.stats import SummaryStats

__all__ = ["NocPacket", "NocNetworkStats", "NocNetwork"]


@dataclass
class NocPacket:
    """One NoC packet: payload plus header flits.

    The destination address lives in the header ("the destination
    address of a packet is encoded as part of the packet header"), so
    every packet pays ``header_bits`` of overhead regardless of payload.
    """

    uid: int
    src: Tile
    dst: Tile
    payload_bits: float
    header_bits: float = 32.0
    created: float = 0.0
    message_id: int | None = None

    def __post_init__(self) -> None:
        if self.payload_bits < 0 or self.header_bits <= 0:
            raise ValueError("invalid packet sizes")

    @property
    def size_bits(self) -> float:
        """Total on-wire size."""
        return self.payload_bits + self.header_bits


@dataclass
class NocNetworkStats:
    """Aggregate measurements of one network run."""

    delivered: int = 0
    payload_bits: float = 0.0
    total_bits: float = 0.0
    energy: float = 0.0
    latency: SummaryStats = field(
        default_factory=lambda: SummaryStats("noc-latency")
    )
    hop_count: SummaryStats = field(
        default_factory=lambda: SummaryStats("noc-hops")
    )

    @property
    def header_overhead(self) -> float:
        """Fraction of transported bits that were header."""
        if self.total_bits == 0:
            return math.nan
        return 1.0 - self.payload_bits / self.total_bits

    def goodput(self, horizon: float) -> float:
        """Delivered payload bits per second."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return self.payload_bits / horizon


class NocNetwork:
    """A 2D-mesh packet network bound to a DES environment.

    Parameters
    ----------
    env:
        Simulation environment.
    mesh:
        Topology.
    link_bandwidth:
        Per-link bandwidth in bits/s.
    router_latency:
        Fixed per-hop routing/arbitration delay in seconds.
    energy_model:
        Bit-energy figures for the energy account.
    route:
        Routing function ``(mesh, src, dst) -> [tiles]``; XY default.
    """

    def __init__(
        self,
        env: Environment,
        mesh: Mesh2D,
        link_bandwidth: float = 2e9,
        router_latency: float = 10e-9,
        energy_model: NocEnergyModel | None = None,
        route=xy_route,
    ):
        if link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive")
        if router_latency < 0:
            raise ValueError("router_latency must be non-negative")
        self.env = env
        self.mesh = mesh
        self.link_bandwidth = link_bandwidth
        self.router_latency = router_latency
        self.energy_model = energy_model or NocEnergyModel()
        self.route = route
        self._links = {
            link: Resource(env, capacity=1) for link in mesh.links()
        }
        self._uid = itertools.count()
        self.stats = NocNetworkStats()
        registry = getattr(env, "metrics", None)
        if registry is not None:
            self._m_delivered = registry.counter("noc_delivered")
            self._m_energy = registry.counter("noc_energy_j")
            self._m_latency = registry.histogram("noc_latency")
            self._m_hops = registry.histogram("noc_hops")
        else:
            self._m_delivered = None
            self._m_energy = None
            self._m_latency = None
            self._m_hops = None

    def new_packet(self, src: Tile, dst: Tile, payload_bits: float,
                   header_bits: float = 32.0,
                   message_id: int | None = None) -> NocPacket:
        """Create a packet stamped with the current time."""
        return NocPacket(
            uid=next(self._uid), src=src, dst=dst,
            payload_bits=payload_bits, header_bits=header_bits,
            created=self.env.now, message_id=message_id,
        )

    def send(self, packet: NocPacket):
        """Start the transfer process for ``packet``; returns it.

        Yield the returned process to wait for delivery (its value is
        the packet).
        """

        def transfer():
            path = self.route(self.mesh, packet.src, packet.dst)
            hops = len(path) - 1
            for link in route_links(path):
                with self._links[link].request() as claim:
                    yield claim
                    yield self.env.timeout(
                        self.router_latency
                        + packet.size_bits / self.link_bandwidth
                    )
            self._account(packet, hops)
            return packet

        return self.env.process(transfer())

    def _account(self, packet: NocPacket, hops: int) -> None:
        self.stats.delivered += 1
        self.stats.payload_bits += packet.payload_bits
        self.stats.total_bits += packet.size_bits
        energy = packet.size_bits * self.energy_model.bit_energy(hops)
        self.stats.energy += energy
        latency = self.env.now - packet.created
        self.stats.latency.add(latency)
        self.stats.hop_count.add(hops)
        if self._m_delivered is not None:
            self._m_delivered.inc()
            self._m_energy.inc(energy)
            self._m_latency.observe(latency)
            self._m_hops.observe(hops)

    def link_utilization(self) -> float:
        """Fraction of links currently held (an instantaneous gauge)."""
        held = sum(1 for r in self._links.values() if r.count)
        return held / len(self._links) if self._links else math.nan
