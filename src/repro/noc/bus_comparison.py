"""Bus vs. NoC scaling study (§3.2).

"communication becomes a major concern as traditional bus-based
architectures fail because of their limited bandwidth in conjunction
with their inability to scale" and "as opposed to a bus-based system,
transactions can potentially be performed in parallel".

The study pushes identical all-to-all tile traffic through (a) a single
shared bus and (b) a 2D-mesh NoC of the same link bandwidth, sweeping
the number of tiles.  The bus saturates at a fixed aggregate bandwidth;
the mesh's bisection grows with the die, so delivered throughput keeps
scaling — the crossover the paper uses to motivate NoCs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.des import Environment, Resource
from repro.noc.network import NocNetwork
from repro.noc.topology import Mesh2D
from repro.utils.rng import spawn_rng
from repro.utils.stats import SummaryStats

__all__ = ["FabricResult", "simulate_bus_fabric", "simulate_noc_fabric",
           "bus_vs_noc_sweep"]


@dataclass
class FabricResult:
    """Delivered performance of one interconnect at one system size."""

    fabric: str
    n_tiles: int
    offered_bps: float
    delivered_bps: float
    mean_latency: float
    p_latency_max: float

    @property
    def saturation(self) -> float:
        """Delivered over offered (1.0 = keeping up)."""
        if self.offered_bps <= 0:
            return math.nan
        return self.delivered_bps / self.offered_bps


def _traffic_schedule(n_tiles: int, packet_bits: float,
                      rate_per_tile: float, horizon: float, seed: int):
    """Per-tile Poisson packet processes to uniform random targets.

    Returns a list of (time, src_index, dst_index) tuples, shared by
    both fabrics so the comparison sees identical load.
    """
    rng = spawn_rng(seed, "fabric-traffic")
    events = []
    for src in range(n_tiles):
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / rate_per_tile))
            if t >= horizon:
                break
            dst = int(rng.integers(0, n_tiles - 1))
            if dst >= src:
                dst += 1
            events.append((t, src, dst))
    events.sort()
    return events


def simulate_bus_fabric(
    n_tiles: int,
    packet_bits: float = 8_192.0,
    rate_per_tile: float = 10_000.0,
    bus_bandwidth: float = 2e9,
    horizon: float = 0.02,
    seed: int = 0,
) -> FabricResult:
    """All packets arbitrate for one shared bus."""
    if n_tiles < 2:
        raise ValueError("need at least two tiles")
    env = Environment()
    bus = Resource(env, capacity=1)
    latency = SummaryStats("bus-latency")
    delivered_bits = [0.0]
    events = _traffic_schedule(n_tiles, packet_bits, rate_per_tile,
                               horizon, seed)

    def sender(at, _src, _dst):
        yield env.timeout(at)
        created = env.now
        with bus.request() as claim:
            yield claim
            yield env.timeout(packet_bits / bus_bandwidth)
        latency.add(env.now - created)
        delivered_bits[0] += packet_bits

    for at, src, dst in events:
        env.process(sender(at, src, dst))
    env.run(until=horizon)

    offered = len(events) * packet_bits / horizon
    return FabricResult(
        fabric="bus",
        n_tiles=n_tiles,
        offered_bps=offered,
        delivered_bps=delivered_bits[0] / horizon,
        mean_latency=latency.mean,
        p_latency_max=latency.maximum,
    )


def simulate_noc_fabric(
    n_tiles: int,
    packet_bits: float = 8_192.0,
    rate_per_tile: float = 10_000.0,
    link_bandwidth: float = 2e9,
    horizon: float = 0.02,
    seed: int = 0,
) -> FabricResult:
    """The same traffic over a (near-)square mesh of the same link
    speed; transactions on disjoint routes proceed in parallel."""
    if n_tiles < 2:
        raise ValueError("need at least two tiles")
    width = int(math.ceil(math.sqrt(n_tiles)))
    height = int(math.ceil(n_tiles / width))
    mesh = Mesh2D(width, height)
    tiles = list(mesh.tiles())[:n_tiles]

    env = Environment()
    network = NocNetwork(env, mesh, link_bandwidth=link_bandwidth,
                         router_latency=10e-9)
    events = _traffic_schedule(n_tiles, packet_bits, rate_per_tile,
                               horizon, seed)

    def sender(at, src, dst):
        yield env.timeout(at)
        packet = network.new_packet(tiles[src], tiles[dst],
                                    payload_bits=packet_bits)
        network.send(packet)

    for at, src, dst in events:
        env.process(sender(at, src, dst))
    env.run(until=horizon)

    stats = network.stats
    offered = len(events) * packet_bits / horizon
    return FabricResult(
        fabric="noc",
        n_tiles=n_tiles,
        offered_bps=offered,
        delivered_bps=stats.total_bits / horizon,
        mean_latency=stats.latency.mean,
        p_latency_max=stats.latency.maximum,
    )


def bus_vs_noc_sweep(
    tile_counts=(4, 8, 16, 32),
    **kwargs,
) -> list[tuple[FabricResult, FabricResult]]:
    """Run both fabrics at each system size; returns (bus, noc) pairs."""
    return [
        (simulate_bus_fabric(n, **kwargs),
         simulate_noc_fabric(n, **kwargs))
        for n in tile_counts
    ]
