"""Local vs. global memory organization on a NoC (§3.3).

"the designer should provide as many local memories as possible instead
of few large and globally accessed ones ... If access to few large
global memories would be provided through the NoC, the NoC would have
to be designed prohibitively conservative to satisfy the worst case
node-to-memory bandwidth requirement."

The study issues identical memory traffic from every compute tile under
two organizations — one central memory tile vs. per-tile local memories
with a small shared fraction — and reports access latency plus the
hot-link load, the quantity that would force a conservative NoC design.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.des import Environment
from repro.noc.network import NocNetwork
from repro.noc.routing import route_links, xy_route
from repro.noc.topology import Mesh2D, Tile
from repro.utils.rng import spawn_rng
from repro.utils.stats import SummaryStats

__all__ = ["MemoryStudyResult", "simulate_memory_traffic",
           "hot_link_load", "memory_organization_study"]


@dataclass
class MemoryStudyResult:
    """Measured behaviour of one memory organization."""

    organization: str
    mean_access_latency: float
    max_access_latency: float
    network_bits: float
    hot_link_bps: float        # absolute load on the busiest link
                               # (analytic, XY routes) — the figure a
                               # conservative NoC must be sized for

    @property
    def network_fraction(self) -> float:
        """Set by the caller: network bits over total access bits."""
        return getattr(self, "_network_fraction", math.nan)


def hot_link_load(mesh: Mesh2D, flows: list[tuple[Tile, Tile, float]]
                  ) -> float:
    """Load on the single busiest link, in the units of ``flows``.

    ``flows`` are (src, dst, bits_per_second) over XY routes.  For a
    centralized memory this is the worst-case node-to-memory bandwidth
    requirement the paper warns about.
    """
    link_bits: dict[tuple[Tile, Tile], float] = {}
    for src, dst, bps in flows:
        if src == dst or bps <= 0:
            continue
        for link in route_links(xy_route(mesh, src, dst)):
            link_bits[link] = link_bits.get(link, 0.0) + bps
    if not link_bits:
        return 0.0
    return max(link_bits.values())


def simulate_memory_traffic(
    mesh: Mesh2D,
    memory_of: dict[Tile, Tile],
    access_rate: float = 200_000.0,
    access_bits: float = 512.0,
    link_bandwidth: float = 1e9,
    horizon: float = 0.005,
    seed: int = 0,
) -> tuple[SummaryStats, float]:
    """Drive per-tile memory accesses; returns (latency stats,
    network bits).

    ``memory_of[tile]`` is the memory tile serving ``tile``; accesses
    to the tile itself are local (zero network traffic, fixed local
    latency folded in as 0 for comparability).
    """
    env = Environment()
    network = NocNetwork(env, mesh, link_bandwidth=link_bandwidth,
                         router_latency=10e-9)
    latency = SummaryStats("memory-latency")
    rng = spawn_rng(seed, "memory-traffic")

    def issuer(tile: Tile, target: Tile):
        while True:
            yield env.timeout(float(rng.exponential(1.0 / access_rate)))
            if env.now >= horizon:
                return
            if target == tile:
                latency.add(0.0)  # local: no network involved
                continue
            packet = network.new_packet(tile, target,
                                        payload_bits=access_bits)
            process = network.send(packet)

            def recorder(process=process, created=env.now):
                yield process
                latency.add(env.now - created)

            env.process(recorder())

    for tile, target in memory_of.items():
        env.process(issuer(tile, target))
    env.run(until=horizon)
    return latency, network.stats.total_bits


def memory_organization_study(
    mesh: Mesh2D | None = None,
    shared_fraction: float = 0.1,
    access_rate: float = 200_000.0,
    access_bits: float = 512.0,
    link_bandwidth: float = 1e9,
    horizon: float = 0.005,
    seed: int = 0,
) -> dict[str, MemoryStudyResult]:
    """Centralized vs. distributed memory on the same mesh.

    Centralized: every access crosses the NoC to one central tile.
    Distributed: a ``shared_fraction`` of accesses still go to the
    central (shared) memory; the rest are local.
    """
    if not 0.0 <= shared_fraction <= 1.0:
        raise ValueError("shared_fraction must lie in [0, 1]")
    mesh = mesh or Mesh2D(4, 4)
    tiles = list(mesh.tiles())
    centre = Tile(mesh.width // 2, mesh.height // 2)

    results: dict[str, MemoryStudyResult] = {}

    # --- centralized: all tiles hit the central memory ----------------
    memory_of = {tile: centre for tile in tiles if tile != centre}
    latency, bits = simulate_memory_traffic(
        mesh, memory_of, access_rate, access_bits, link_bandwidth,
        horizon, seed,
    )
    per_tile_bps = access_rate * access_bits
    flows = [(tile, centre, per_tile_bps)
             for tile in tiles if tile != centre]
    results["centralized"] = MemoryStudyResult(
        organization="centralized",
        mean_access_latency=latency.mean,
        max_access_latency=latency.maximum,
        network_bits=bits,
        hot_link_bps=hot_link_load(mesh, flows),
    )

    # --- distributed: local memories plus a shared fraction -----------
    # Exactly round(shared_fraction * tiles) tiles keep hitting the
    # shared memory (deterministic count, random identity).
    rng = spawn_rng(seed, "memory-pattern")
    candidates = [tile for tile in tiles if tile != centre]
    n_shared = min(len(candidates),
                   int(round(shared_fraction * len(tiles))))
    picks = rng.choice(len(candidates), size=n_shared, replace=False)
    shared_tiles = {candidates[int(i)] for i in picks}
    memory_of = {}
    flows = []
    for tile in tiles:
        if tile in shared_tiles:
            memory_of[tile] = centre
            flows.append((tile, centre, access_rate * access_bits))
        else:
            memory_of[tile] = tile  # local
    latency, bits = simulate_memory_traffic(
        mesh, memory_of, access_rate, access_bits, link_bandwidth,
        horizon, seed + 1,
    )
    results["distributed"] = MemoryStudyResult(
        organization="distributed",
        mean_access_latency=latency.mean,
        max_access_latency=latency.maximum,
        network_bits=bits,
        hot_link_bps=hot_link_load(mesh, flows),
    )
    return results
