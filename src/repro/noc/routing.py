"""Deterministic NoC routing algorithms.

XY (dimension-ordered) routing is the standard deadlock-free choice for
2D meshes; west-first is included as a partially-adaptive alternative so
the routing choice itself can be ablated.
"""

from __future__ import annotations

from repro.noc.topology import Mesh2D, Tile

__all__ = ["xy_route", "west_first_route", "route_links"]


def xy_route(mesh: Mesh2D, src: Tile, dst: Tile) -> list[Tile]:
    """Dimension-ordered route: travel X first, then Y.

    Returns the full tile sequence including both endpoints.

    Examples
    --------
    >>> mesh = Mesh2D(3, 3)
    >>> xy_route(mesh, Tile(0, 0), Tile(2, 1))
    [(0,0), (1,0), (2,0), (2,1)]
    """
    for tile in (src, dst):
        if not mesh.contains(tile):
            raise ValueError(f"{tile} outside {mesh}")
    path = [src]
    x, y = src.x, src.y
    step_x = 1 if dst.x > x else -1
    while x != dst.x:
        x += step_x
        path.append(Tile(x, y))
    step_y = 1 if dst.y > y else -1
    while y != dst.y:
        y += step_y
        path.append(Tile(x, y))
    return path


def west_first_route(mesh: Mesh2D, src: Tile, dst: Tile) -> list[Tile]:
    """West-first routing: all westward motion happens first, after which
    the packet may adapt (here: Y-then-X for the remaining quadrant).

    Still minimal and deadlock-free under the turn model; differs from
    XY only for east-bound traffic.
    """
    for tile in (src, dst):
        if not mesh.contains(tile):
            raise ValueError(f"{tile} outside {mesh}")
    path = [src]
    x, y = src.x, src.y
    # Mandatory westward leg first.
    while x > dst.x:
        x -= 1
        path.append(Tile(x, y))
    # Remaining motion is north/south then east.
    step_y = 1 if dst.y > y else -1
    while y != dst.y:
        y += step_y
        path.append(Tile(x, y))
    while x < dst.x:
        x += 1
        path.append(Tile(x, y))
    return path


def route_links(path: list[Tile]) -> list[tuple[Tile, Tile]]:
    """The directed links a tile path traverses."""
    return list(zip(path, path[1:]))
