"""First-order transceiver energy model.

Energy to move bits over the air splits into power-amplifier energy
(scales with required transmit power, hence with channel state and the
modulation's SNR demand) and electronics energy (scales with airtime,
hence inversely with spectral efficiency), plus baseband decoder work
(scales with code complexity).  This is the cost function both E6
policies optimize.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.wireless.channel import ChannelState, FiniteStateChannel
from repro.wireless.coding import ConvolutionalCode
from repro.wireless.modulation import Modulation

__all__ = ["TransceiverParams", "LinkConfig", "link_energy"]


@dataclass(frozen=True)
class TransceiverParams:
    """Hardware constants of the radio.

    Parameters
    ----------
    symbol_rate:
        Symbols per second (bandwidth-fixed).
    amplifier_efficiency:
        PA drain efficiency η — radiated/drawn power.
    tx_electronics_power, rx_electronics_power:
        Watts drawn by the TX/RX chains while active.
    decoder_energy_per_op:
        Joules per Viterbi add-compare-select operation.
    """

    symbol_rate: float = 1e6
    amplifier_efficiency: float = 0.35
    tx_electronics_power: float = 0.10
    rx_electronics_power: float = 0.08
    decoder_energy_per_op: float = 5e-12

    def __post_init__(self) -> None:
        if self.symbol_rate <= 0:
            raise ValueError("symbol rate must be positive")
        if not 0.0 < self.amplifier_efficiency <= 1.0:
            raise ValueError("amplifier efficiency must lie in (0, 1]")
        if (self.tx_electronics_power < 0
                or self.rx_electronics_power < 0
                or self.decoder_energy_per_op < 0):
            raise ValueError("powers must be non-negative")


@dataclass(frozen=True)
class LinkConfig:
    """One operating point of the link: modulation plus channel code."""

    modulation: Modulation
    code: ConvolutionalCode

    def airtime(self, info_bits: float, params: TransceiverParams
                ) -> float:
        """Seconds on air to carry ``info_bits``."""
        if info_bits < 0:
            raise ValueError("info bits must be non-negative")
        channel_bits = self.code.channel_bits(info_bits)
        return channel_bits / (
            self.modulation.bits_per_symbol * params.symbol_rate
        )

    def required_snr(self, target_ber: float) -> float:
        """Received Es/N0 needed for ``target_ber`` after decoding."""
        per_bit = self.modulation.required_snr_per_bit(target_ber)
        per_bit /= self.code.coding_gain
        return per_bit * self.modulation.bits_per_symbol

    def __str__(self) -> str:
        return f"{self.modulation}/{self.code}"


def link_energy(
    config: LinkConfig,
    info_bits: float,
    channel: FiniteStateChannel,
    state: ChannelState,
    params: TransceiverParams,
    target_ber: float = 1e-5,
) -> float:
    """Total transceiver energy (J) to deliver ``info_bits`` in
    ``state`` at ``target_ber``.

    TX side: PA energy (required radiated power / η) plus electronics;
    RX side: electronics plus Viterbi decoding work.
    """
    airtime = config.airtime(info_bits, params)
    snr = config.required_snr(target_ber)
    tx_power = channel.required_tx_power(snr, state)
    pa_energy = tx_power / params.amplifier_efficiency * airtime
    tx_energy = pa_energy + params.tx_electronics_power * airtime
    decode_energy = (
        config.code.decoder_energy_per_bit(params.decoder_energy_per_op)
        * info_bits
    )
    rx_energy = params.rx_electronics_power * airtime + decode_energy
    total = tx_energy + rx_energy
    if not math.isfinite(total):
        raise ValueError("non-finite link energy (check parameters)")
    return total
