"""Dynamic transceiver adaptation (E6, after [26]).

"a low energy wireless communication system can be envisioned, where the
modulation level and transmit power of the transmitter and the
complexity of the channel decoder of the receiver are dynamically
changed to match the characteristics of the communication channel ...
Experimental results show an average of 12% reduction in the overall
energy consumption of the transceivers without any appreciable
performance penalty." (§4)

Both policies meet the same BER target in every channel state (transmit
power is always controlled); the *static* baseline is locked to one
(modulation, code) pair — the expected-energy-optimal single choice —
while the *dynamic* policy re-picks the pair per state (the best
response of the [26] game).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.wireless.channel import ChannelState, FiniteStateChannel
from repro.wireless.coding import CODE_LADDER, ConvolutionalCode
from repro.wireless.energy import (
    LinkConfig,
    TransceiverParams,
    link_energy,
)
from repro.wireless.modulation import MODULATIONS, Modulation

__all__ = ["AdaptationResult", "config_space", "best_config_for_state",
           "static_policy_energy", "dynamic_policy_energy",
           "evaluate_adaptation"]


def config_space(
    modulations: tuple[Modulation, ...] = MODULATIONS,
    codes: tuple[ConvolutionalCode, ...] = CODE_LADDER,
) -> list[LinkConfig]:
    """Every (modulation, code) pair the adaptation may pick."""
    return [
        LinkConfig(m, c) for m, c in itertools.product(modulations, codes)
    ]


def best_config_for_state(
    configs: list[LinkConfig],
    state: ChannelState,
    channel: FiniteStateChannel,
    params: TransceiverParams,
    info_bits: float,
    target_ber: float,
) -> tuple[LinkConfig, float]:
    """The per-state best response: minimum-energy configuration."""
    best: tuple[LinkConfig, float] | None = None
    for config in configs:
        energy = link_energy(
            config, info_bits, channel, state, params, target_ber
        )
        if best is None or energy < best[1]:
            best = (config, energy)
    assert best is not None
    return best


def static_policy_energy(
    configs: list[LinkConfig],
    channel: FiniteStateChannel,
    params: TransceiverParams,
    info_bits: float,
    target_ber: float,
) -> tuple[LinkConfig, float]:
    """Expected energy of the best *single* configuration.

    Power control still tracks the channel (industry baseline), but
    modulation and decoder complexity are frozen.
    """
    best: tuple[LinkConfig, float] | None = None
    for config in configs:
        expected = sum(
            state.probability * link_energy(
                config, info_bits, channel, state, params, target_ber
            )
            for state in channel.states
        )
        if best is None or expected < best[1]:
            best = (config, expected)
    assert best is not None
    return best


def dynamic_policy_energy(
    configs: list[LinkConfig],
    channel: FiniteStateChannel,
    params: TransceiverParams,
    info_bits: float,
    target_ber: float,
) -> tuple[dict[str, LinkConfig], float]:
    """Expected energy when the configuration adapts per state."""
    per_state: dict[str, LinkConfig] = {}
    expected = 0.0
    for state in channel.states:
        config, energy = best_config_for_state(
            configs, state, channel, params, info_bits, target_ber
        )
        per_state[state.name] = config
        expected += state.probability * energy
    return per_state, expected


@dataclass
class AdaptationResult:
    """Outcome of the E6 study."""

    static_config: LinkConfig
    static_energy: float
    dynamic_configs: dict[str, LinkConfig]
    dynamic_energy: float
    per_state_static: dict[str, float] = field(default_factory=dict)
    per_state_dynamic: dict[str, float] = field(default_factory=dict)

    @property
    def energy_reduction(self) -> float:
        """Fractional average energy saving of dynamic over static."""
        if self.static_energy <= 0:
            return math.nan
        return 1.0 - self.dynamic_energy / self.static_energy

    @property
    def adapts(self) -> bool:
        """True when the dynamic policy actually switches configs."""
        return len({str(c) for c in self.dynamic_configs.values()}) > 1


def evaluate_adaptation(
    channel: FiniteStateChannel | None = None,
    params: TransceiverParams | None = None,
    info_bits: float = 1e6,
    target_ber: float = 1e-5,
    configs: list[LinkConfig] | None = None,
) -> AdaptationResult:
    """Run the complete static-vs-dynamic comparison of E6."""
    channel = channel or FiniteStateChannel.indoor_default()
    params = params or TransceiverParams()
    configs = configs or config_space()

    static_config, static_energy = static_policy_energy(
        configs, channel, params, info_bits, target_ber
    )
    dynamic_configs, dynamic_energy = dynamic_policy_energy(
        configs, channel, params, info_bits, target_ber
    )
    per_state_static = {
        s.name: link_energy(static_config, info_bits, channel, s,
                            params, target_ber)
        for s in channel.states
    }
    per_state_dynamic = {
        s.name: link_energy(dynamic_configs[s.name], info_bits, channel,
                            s, params, target_ber)
        for s in channel.states
    }
    return AdaptationResult(
        static_config=static_config,
        static_energy=static_energy,
        dynamic_configs=dynamic_configs,
        dynamic_energy=dynamic_energy,
        per_state_static=per_state_static,
        per_state_dynamic=per_state_dynamic,
    )
