"""Total-system-energy image transmission (E7, after [27]).

"an energy-optimized image transmission system for indoor wireless
applications that exploits the variations in the image data and the
wireless multi-path channel by using dynamic algorithm transformations
and joint source-channel coding ... an average of 60% energy saving for
different channel conditions." (§4)

The knobs: source rate (bits/pixel, trading computation + payload
against source distortion), target BER (trading transmit power against
channel distortion) and channel code (trading coding gain against
decoder work).  The constraint: end-to-end image distortion (PSNR).
The baseline: one fixed configuration sized for the worst channel state
(classical worst-case design); the optimized system re-solves the
problem per channel state.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.wireless.channel import ChannelState, FiniteStateChannel
from repro.wireless.coding import CODE_LADDER, ConvolutionalCode
from repro.wireless.energy import LinkConfig, TransceiverParams, \
    link_energy
from repro.wireless.modulation import QPSK

__all__ = ["ImageCoderModel", "ImageTxConfig", "ImageTxResult",
           "total_distortion", "total_energy", "optimize_for_state",
           "evaluate_image_transmission"]


@dataclass(frozen=True)
class ImageCoderModel:
    """Rate-distortion and computation model of a DCT image coder.

    Parameters
    ----------
    n_pixels:
        Image size.
    pixel_variance:
        Source variance σ² (8-bit imagery ≈ 2000–3000).
    base_ops_per_pixel:
        Fixed front-end work (color transform, DCT).
    ops_per_pixel_per_bpp:
        Extra work per coded bit/pixel (finer quantization, longer
        entropy coding) — the "dynamic algorithm transformation" knob.
    energy_per_op:
        Joules per arithmetic operation on the sender CPU.
    error_sensitivity:
        κ: distortion added per unit BER (σ²-scaled).
    """

    n_pixels: int = 512 * 512
    pixel_variance: float = 2500.0
    base_ops_per_pixel: float = 20.0
    ops_per_pixel_per_bpp: float = 40.0
    energy_per_op: float = 1e-10
    error_sensitivity: float = 100.0

    def __post_init__(self) -> None:
        if self.n_pixels < 1 or self.pixel_variance <= 0:
            raise ValueError("invalid image parameters")

    def source_distortion(self, bpp: float) -> float:
        """MSE after coding at ``bpp`` bits/pixel (Gaussian R-D bound)."""
        if bpp <= 0:
            raise ValueError("bpp must be positive")
        return self.pixel_variance * 2.0 ** (-2.0 * bpp)

    def channel_distortion(self, ber: float) -> float:
        """Extra MSE induced by residual bit errors."""
        if not 0.0 <= ber <= 1.0:
            raise ValueError("ber must be a probability")
        return self.error_sensitivity * ber * self.pixel_variance

    def bits(self, bpp: float) -> float:
        """Payload bits at ``bpp``."""
        return self.n_pixels * bpp

    def computation_energy(self, bpp: float) -> float:
        """Sender-side coding energy at ``bpp``."""
        ops = self.n_pixels * (
            self.base_ops_per_pixel + self.ops_per_pixel_per_bpp * bpp
        )
        return ops * self.energy_per_op

    def psnr(self, mse: float) -> float:
        """Peak SNR in dB for an 8-bit image."""
        if mse <= 0:
            return math.inf
        return 10.0 * math.log10(255.0**2 / mse)

    def mse_for_psnr(self, psnr_db: float) -> float:
        """Distortion budget for a PSNR target."""
        return 255.0**2 / 10.0 ** (psnr_db / 10.0)


@dataclass(frozen=True)
class ImageTxConfig:
    """One operating point: source rate, BER target, channel code."""

    bpp: float
    target_ber: float
    code: ConvolutionalCode

    def __str__(self) -> str:
        return (f"bpp={self.bpp:.2f} ber={self.target_ber:.1e} "
                f"{self.code}")


def total_distortion(config: ImageTxConfig,
                     coder: ImageCoderModel) -> float:
    """End-to-end MSE: source coding plus channel errors."""
    return (coder.source_distortion(config.bpp)
            + coder.channel_distortion(config.target_ber))


def total_energy(
    config: ImageTxConfig,
    state: ChannelState,
    channel: FiniteStateChannel,
    params: TransceiverParams,
    coder: ImageCoderModel,
) -> float:
    """Computation + transceiver energy of one image in ``state``."""
    link = LinkConfig(QPSK, config.code)
    return (
        coder.computation_energy(config.bpp)
        + link_energy(link, coder.bits(config.bpp), channel, state,
                      params, config.target_ber)
    )


def _config_grid(coder: ImageCoderModel, psnr_target: float
                 ) -> list[ImageTxConfig]:
    """Candidate grid over (bpp, BER, code).

    bpp starts just above the rate needed if the channel were perfect;
    BER spans harmless to marginal.
    """
    d_max = coder.mse_for_psnr(psnr_target)
    min_bpp = 0.5 * math.log2(coder.pixel_variance / d_max)
    bpps = np.linspace(max(min_bpp, 0.05) * 1.01,
                       max(min_bpp, 0.05) * 1.01 + 2.5, 16)
    bers = np.logspace(-8, -3, 11)
    return [
        ImageTxConfig(float(b), float(p), code)
        for b, p, code in itertools.product(bpps, bers, CODE_LADDER)
    ]


def optimize_for_state(
    state: ChannelState,
    channel: FiniteStateChannel,
    params: TransceiverParams,
    coder: ImageCoderModel,
    psnr_target: float = 32.0,
) -> tuple[ImageTxConfig, float]:
    """Minimum-energy configuration meeting the PSNR target in
    ``state`` (grid search — the feasible-direction method of [27]
    reduced to a discrete feasibility sweep)."""
    d_max = coder.mse_for_psnr(psnr_target)
    best: tuple[ImageTxConfig, float] | None = None
    for config in _config_grid(coder, psnr_target):
        if total_distortion(config, coder) > d_max:
            continue
        energy = total_energy(config, state, channel, params, coder)
        if best is None or energy < best[1]:
            best = (config, energy)
    if best is None:
        raise ValueError("no feasible configuration for the PSNR target")
    return best


@dataclass
class ImageTxResult:
    """Outcome of the E7 study."""

    baseline_config: ImageTxConfig
    baseline_energy: float            # expected over states
    adaptive_configs: dict[str, ImageTxConfig]
    adaptive_energy: float            # expected over states
    per_state_baseline: dict[str, float] = field(default_factory=dict)
    per_state_adaptive: dict[str, float] = field(default_factory=dict)

    @property
    def energy_saving(self) -> float:
        """Fractional average saving of the adaptive system."""
        if self.baseline_energy <= 0:
            return math.nan
        return 1.0 - self.adaptive_energy / self.baseline_energy


def evaluate_image_transmission(
    channel: FiniteStateChannel | None = None,
    params: TransceiverParams | None = None,
    coder: ImageCoderModel | None = None,
    psnr_target: float = 32.0,
) -> ImageTxResult:
    """Worst-case-fixed baseline vs. per-state joint optimization.

    The baseline picks the energy-optimal configuration for the *worst*
    channel state and, being non-adaptive, transmits with that
    configuration (and its worst-case power budget) regardless of the
    actual state.
    """
    # 20 m default link: the PA-dominant regime of the [27] testbed,
    # where worst-case provisioning wastes ~60% on average.
    channel = channel or FiniteStateChannel.indoor_default(distance=20.0)
    params = params or TransceiverParams()
    coder = coder or ImageCoderModel()

    worst = max(channel.states, key=lambda s: s.attenuation_db)
    baseline_config, worst_energy = optimize_for_state(
        worst, channel, params, coder, psnr_target
    )
    # Non-adaptive: the power amp is sized for the worst state, so the
    # energy spent is the worst-state energy whatever the weather.
    per_state_baseline = {
        s.name: worst_energy for s in channel.states
    }
    baseline_energy = worst_energy

    adaptive_configs: dict[str, ImageTxConfig] = {}
    per_state_adaptive: dict[str, float] = {}
    adaptive_energy = 0.0
    for state in channel.states:
        config, energy = optimize_for_state(
            state, channel, params, coder, psnr_target
        )
        adaptive_configs[state.name] = config
        per_state_adaptive[state.name] = energy
        adaptive_energy += state.probability * energy

    return ImageTxResult(
        baseline_config=baseline_config,
        baseline_energy=baseline_energy,
        adaptive_configs=adaptive_configs,
        adaptive_energy=adaptive_energy,
        per_state_baseline=per_state_baseline,
        per_state_adaptive=per_state_adaptive,
    )
