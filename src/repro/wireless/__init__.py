"""Wireless link layer (§4): modulation BER curves, channel codes,
finite-state fading channels, transceiver energy, dynamic adaptation
(E6, [26]) and total-system image transmission (E7, [27])."""

from repro.wireless.adaptation import (
    AdaptationResult,
    best_config_for_state,
    config_space,
    dynamic_policy_energy,
    evaluate_adaptation,
    static_policy_energy,
)
from repro.wireless.channel import (
    ChannelState,
    FiniteStateChannel,
    path_loss,
)
from repro.wireless.coding import (
    CODE_LADDER,
    ConvolutionalCode,
    UNCODED,
)
from repro.wireless.energy import (
    LinkConfig,
    TransceiverParams,
    link_energy,
)
from repro.wireless.image_tx import (
    ImageCoderModel,
    ImageTxConfig,
    ImageTxResult,
    evaluate_image_transmission,
    optimize_for_state,
    total_distortion,
    total_energy,
)
from repro.wireless.packet_channel import (
    LinkErrorModel,
    link_error_model,
    packet_error_rate,
)
from repro.wireless.modulation import (
    BPSK,
    MODULATIONS,
    Modulation,
    QAM16,
    QAM64,
    QPSK,
    db_to_linear,
    linear_to_db,
)

__all__ = [
    "Modulation",
    "BPSK",
    "QPSK",
    "QAM16",
    "QAM64",
    "MODULATIONS",
    "db_to_linear",
    "linear_to_db",
    "ConvolutionalCode",
    "UNCODED",
    "CODE_LADDER",
    "ChannelState",
    "FiniteStateChannel",
    "path_loss",
    "TransceiverParams",
    "LinkConfig",
    "link_energy",
    "AdaptationResult",
    "config_space",
    "best_config_for_state",
    "static_policy_energy",
    "dynamic_policy_energy",
    "evaluate_adaptation",
    "ImageCoderModel",
    "ImageTxConfig",
    "ImageTxResult",
    "total_distortion",
    "total_energy",
    "optimize_for_state",
    "evaluate_image_transmission",
    "packet_error_rate",
    "LinkErrorModel",
    "link_error_model",
]
