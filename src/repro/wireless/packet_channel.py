"""Bridge from bit-level link models to packet-level stream channels.

The Fig.1(a) stream pipeline consumes an
:class:`~repro.streams.channel.ErrorModel`; the §4 wireless stack
produces BER-vs-SNR curves.  This module connects them: a link
configuration plus a channel state yields the per-packet loss/error
probabilities the stream simulation needs, so end-to-end studies
(e.g. video over an adaptive radio) compose from both layers.
"""

from __future__ import annotations

import math

import numpy as np

from repro.streams.channel import ErrorModel, PacketFate
from repro.streams.packets import Packet
from repro.wireless.channel import ChannelState, FiniteStateChannel
from repro.wireless.energy import LinkConfig

__all__ = ["packet_error_rate", "LinkErrorModel", "link_error_model"]


def packet_error_rate(ber: float, packet_bits: float) -> float:
    """Probability a packet of ``packet_bits`` carries >= 1 bit error.

    1 − (1 − BER)^bits, computed in log space for stability.

    >>> round(packet_error_rate(1e-5, 10_000.0), 4)
    0.0952
    """
    if not 0.0 <= ber <= 1.0:
        raise ValueError("ber must be a probability")
    if packet_bits < 0:
        raise ValueError("packet_bits must be non-negative")
    if ber == 0.0:
        return 0.0
    if ber == 1.0:
        return 1.0
    return -math.expm1(packet_bits * math.log1p(-ber))


class LinkErrorModel(ErrorModel):
    """Packet fates driven by a modulation/coding BER curve.

    Parameters
    ----------
    ber:
        Post-decoding bit error rate of the link.
    loss_threshold_bits:
        Errors in the header/sync portion kill the packet outright;
        errors elsewhere corrupt it.  Modeled by exposing this many
        bits of each packet as fatal.
    """

    def __init__(self, ber: float, loss_threshold_bits: float = 64.0):
        if not 0.0 <= ber <= 1.0:
            raise ValueError("ber must be a probability")
        if loss_threshold_bits < 0:
            raise ValueError("threshold must be non-negative")
        self.ber = ber
        self.loss_threshold_bits = loss_threshold_bits

    def classify(self, packet: Packet, rng: np.random.Generator
                 ) -> PacketFate:
        p_fatal = packet_error_rate(self.ber, self.loss_threshold_bits)
        if rng.random() < p_fatal:
            return PacketFate.LOST
        payload_bits = max(packet.size_bits
                           - self.loss_threshold_bits, 0.0)
        if rng.random() < packet_error_rate(self.ber, payload_bits):
            return PacketFate.ERROR
        return PacketFate.OK


def link_error_model(
    config: LinkConfig,
    channel: FiniteStateChannel,
    state: ChannelState,
    tx_power: float,
) -> LinkErrorModel:
    """Error model of ``config`` transmitting at ``tx_power`` in
    ``state`` — the composition point between §4 radios and Fig.1(a)
    streams."""
    snr = channel.snr(tx_power, state)
    snr_per_bit = (snr / config.modulation.bits_per_symbol
                   * config.code.coding_gain)
    ber = config.modulation.ber(snr_per_bit)
    return LinkErrorModel(ber=ber)
