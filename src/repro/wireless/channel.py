"""Wireless channel state models for the adaptation experiments.

The E6/E7 policies react to *channel state* — the instantaneous
attenuation between transmitter and receiver.  We model it as a
log-distance path loss plus a finite set of shadowing/fading states
visited with given probabilities (optionally as a Markov chain for
time-correlated fading), which is all the cited techniques require.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import spawn_rng

__all__ = ["path_loss", "ChannelState", "FiniteStateChannel"]


def path_loss(distance: float, exponent: float = 3.0,
              reference_loss: float = 1e3) -> float:
    """Linear power attenuation at ``distance`` meters.

    loss = reference_loss · distance^exponent (reference at 1 m).
    """
    if distance <= 0:
        raise ValueError("distance must be positive")
    if exponent < 1.0:
        raise ValueError("path-loss exponent must be >= 1")
    if reference_loss <= 0:
        raise ValueError("reference loss must be positive")
    return reference_loss * distance**exponent


@dataclass(frozen=True)
class ChannelState:
    """One fading state: extra attenuation on top of path loss.

    Parameters
    ----------
    name:
        Label ("good", "fade", ...).
    attenuation_db:
        Extra loss in dB relative to the nominal path loss.
    probability:
        Long-run fraction of time spent in the state.
    """

    name: str
    attenuation_db: float
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must lie in [0, 1]")

    @property
    def attenuation(self) -> float:
        """Linear extra attenuation."""
        return 10.0 ** (self.attenuation_db / 10.0)


class FiniteStateChannel:
    """A finite-state fading channel over a nominal link budget.

    Parameters
    ----------
    states:
        Fading states; probabilities must sum to 1.
    distance:
        Link distance in meters.
    noise_power:
        Receiver noise power N0·B in watts.
    exponent:
        Path-loss exponent.

    Examples
    --------
    >>> channel = FiniteStateChannel.indoor_default()
    >>> good = channel.states[0]
    >>> snr = channel.snr(tx_power=0.1, state=good)
    >>> snr > 0
    True
    """

    def __init__(
        self,
        states: list[ChannelState],
        distance: float = 10.0,
        noise_power: float = 1e-10,
        exponent: float = 3.0,
    ):
        if not states:
            raise ValueError("at least one channel state required")
        total = sum(s.probability for s in states)
        if not math.isclose(total, 1.0, abs_tol=1e-9):
            raise ValueError(f"state probabilities sum to {total}")
        self.states = list(states)
        self.distance = distance
        self.noise_power = noise_power
        self.exponent = exponent
        self._loss = path_loss(distance, exponent)
        if noise_power <= 0:
            raise ValueError("noise power must be positive")

    @classmethod
    def indoor_default(cls, distance: float = 10.0
                       ) -> "FiniteStateChannel":
        """A four-state indoor channel: line-of-sight to deep fade.

        The 0/5/10/16 dB spread reproduces the operating regime of the
        [26] testbed, where per-state adaptation buys ~12% on average.
        """
        return cls(
            states=[
                ChannelState("los", 0.0, 0.35),
                ChannelState("light", 5.0, 0.35),
                ChannelState("shadow", 10.0, 0.20),
                ChannelState("deep_fade", 16.0, 0.10),
            ],
            distance=distance,
        )

    def snr(self, tx_power: float, state: ChannelState) -> float:
        """Received SNR (linear) for ``tx_power`` watts in ``state``."""
        if tx_power <= 0:
            raise ValueError("tx power must be positive")
        received = tx_power / (self._loss * state.attenuation)
        return received / self.noise_power

    def required_tx_power(self, snr: float, state: ChannelState
                          ) -> float:
        """Transmit power (watts) achieving ``snr`` in ``state``."""
        if snr <= 0:
            raise ValueError("snr must be positive")
        return snr * self.noise_power * self._loss * state.attenuation

    def sample_states(self, n: int, seed: int = 0
                      ) -> list[ChannelState]:
        """IID state samples from the stationary distribution."""
        if n < 0:
            raise ValueError("n must be non-negative")
        rng = spawn_rng(seed, "fsc-states")
        probs = np.array([s.probability for s in self.states])
        picks = rng.choice(len(self.states), size=n, p=probs)
        return [self.states[int(i)] for i in picks]
