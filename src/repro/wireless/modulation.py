"""Modulation schemes and BER-vs-SNR curves (after Proakis [25]).

"The first category of techniques, which focus on the pass-band
transceiver, exploits the fact that different modulation schemes result
in different BER vs. received signal-to-noise ratio (SNR)
characteristics.  The key trade-off is thus between the modulation
and/or power levels and the BER." (§4)

Standard approximations over AWGN: BPSK/QPSK exact, square M-QAM via the
Gray-coded nearest-neighbour bound.  SNR below is Es/N0 per *symbol*
unless stated otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.special import erfc, erfcinv

__all__ = ["Modulation", "BPSK", "QPSK", "QAM16", "QAM64",
           "MODULATIONS", "db_to_linear", "linear_to_db"]


def db_to_linear(db: float) -> float:
    """Convert decibels to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(linear: float) -> float:
    """Convert a linear power ratio to decibels."""
    if linear <= 0:
        raise ValueError("ratio must be positive")
    return 10.0 * math.log10(linear)


def _q(x: float) -> float:
    """The Gaussian tail function Q(x)."""
    return 0.5 * erfc(x / math.sqrt(2.0))


def _q_inv(p: float) -> float:
    """Inverse of Q."""
    if not 0.0 < p < 0.5:
        raise ValueError("Q^-1 defined for p in (0, 0.5)")
    return math.sqrt(2.0) * erfcinv(2.0 * p)


@dataclass(frozen=True)
class Modulation:
    """A square-constellation modulation scheme.

    Parameters
    ----------
    name:
        Label, e.g. ``"16-QAM"``.
    bits_per_symbol:
        log2 of the constellation size.
    """

    name: str
    bits_per_symbol: int

    def __post_init__(self) -> None:
        if self.bits_per_symbol < 1:
            raise ValueError("bits_per_symbol must be >= 1")

    @property
    def constellation_size(self) -> int:
        """M = 2^bits."""
        return 2 ** self.bits_per_symbol

    def ber(self, snr_per_bit: float) -> float:
        """Bit error rate at Eb/N0 = ``snr_per_bit`` (linear).

        BPSK/QPSK: Q(sqrt(2 γ_b)).  Square M-QAM: the standard
        Gray-coded approximation.
        """
        if snr_per_bit < 0:
            raise ValueError("SNR must be non-negative")
        b = self.bits_per_symbol
        if b <= 2:
            return _q(math.sqrt(2.0 * snr_per_bit))
        m = self.constellation_size
        gamma_s = snr_per_bit * b
        factor = 4.0 / b * (1.0 - 1.0 / math.sqrt(m))
        arg = math.sqrt(3.0 * gamma_s / (m - 1.0))
        return min(0.5, factor * _q(arg))

    def required_snr_per_bit(self, target_ber: float) -> float:
        """Eb/N0 (linear) needed to hit ``target_ber``."""
        if not 0.0 < target_ber < 0.5:
            raise ValueError("target BER must lie in (0, 0.5)")
        b = self.bits_per_symbol
        if b <= 2:
            return _q_inv(target_ber) ** 2 / 2.0
        m = self.constellation_size
        factor = 4.0 / b * (1.0 - 1.0 / math.sqrt(m))
        # target = factor * Q(arg)  ->  arg = Q^-1(target/factor)
        p = target_ber / factor
        arg = _q_inv(min(p, 0.499999))
        gamma_s = arg**2 * (m - 1.0) / 3.0
        return gamma_s / b

    def __str__(self) -> str:
        return self.name


BPSK = Modulation("BPSK", 1)
QPSK = Modulation("QPSK", 2)
QAM16 = Modulation("16-QAM", 4)
QAM64 = Modulation("64-QAM", 6)

#: The adaptive-modulation ladder used by the E6 policies.
MODULATIONS = (BPSK, QPSK, QAM16, QAM64)
