"""Channel coding: the coding-gain vs. decoder-complexity trade-off.

"The second category of techniques, which focus on the base-band
transceiver, studies the interaction between code performance and
encoder/decoder design complexity.  The key trade-off is between the
complexity of the encoding/decoding algorithms and the BER." (§4)

Convolutional codes with Viterbi decoding: coding gain grows roughly
logarithmically with constraint length K while decoder work grows as
2^(K-1) states — the exact tension the E6 adaptation policy exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wireless.modulation import db_to_linear

__all__ = ["ConvolutionalCode", "UNCODED", "CODE_LADDER"]


@dataclass(frozen=True)
class ConvolutionalCode:
    """A rate-1/2-family convolutional code with Viterbi decoding.

    Parameters
    ----------
    constraint_length:
        K; 1 denotes "uncoded".
    rate:
        Code rate (information bits per channel bit).
    coding_gain_db:
        Eb/N0 reduction at the target BER relative to uncoded.
    """

    constraint_length: int
    rate: float
    coding_gain_db: float

    def __post_init__(self) -> None:
        if self.constraint_length < 1:
            raise ValueError("constraint length must be >= 1")
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("rate must lie in (0, 1]")
        if self.coding_gain_db < 0:
            raise ValueError("coding gain must be non-negative")

    @property
    def coding_gain(self) -> float:
        """Linear coding gain."""
        return db_to_linear(self.coding_gain_db)

    @property
    def is_uncoded(self) -> bool:
        """True for the trivial K=1 'code'."""
        return self.constraint_length == 1

    def decoder_ops_per_bit(self) -> float:
        """Viterbi add-compare-select operations per decoded bit.

        2^(K-1) trellis states, ~4 ops per state per bit; uncoded
        decoding is free.
        """
        if self.is_uncoded:
            return 0.0
        return 4.0 * 2.0 ** (self.constraint_length - 1)

    def decoder_energy_per_bit(self, energy_per_op: float = 5e-12
                               ) -> float:
        """Joules of decoder work per information bit."""
        if energy_per_op < 0:
            raise ValueError("energy per op must be non-negative")
        return self.decoder_ops_per_bit() * energy_per_op

    def channel_bits(self, info_bits: float) -> float:
        """Channel bits needed to carry ``info_bits``."""
        if info_bits < 0:
            raise ValueError("info bits must be non-negative")
        return info_bits / self.rate

    def __str__(self) -> str:
        if self.is_uncoded:
            return "uncoded"
        return f"K={self.constraint_length} r={self.rate:g}"


#: No coding at all.
UNCODED = ConvolutionalCode(constraint_length=1, rate=1.0,
                            coding_gain_db=0.0)

#: The decoder-complexity ladder of the E6 adaptation policy: textbook
#: soft-decision coding gains at BER 1e-5 for rate-1/2 codes.
CODE_LADDER = (
    UNCODED,
    ConvolutionalCode(constraint_length=3, rate=0.5, coding_gain_db=3.3),
    ConvolutionalCode(constraint_length=5, rate=0.5, coding_gain_db=4.5),
    ConvolutionalCode(constraint_length=7, rate=0.5, coding_gain_db=5.7),
    ConvolutionalCode(constraint_length=9, rate=0.5, coding_gain_db=6.5),
)
