"""Multiprocessing replication engine.

:func:`run_replicated` fans one experiment out over ``replicas``
independent replicas onto ``workers`` OS processes and merges the
results deterministically:

* replica *i* runs with seed ``replica_seed(master_seed, i)`` —
  derived through :meth:`RandomStreams.fork`, whose ``"fork:"``-
  prefixed hashing guarantees the replica's streams can never collide
  with the parent run's plain streams (see
  :func:`repro.utils.rng.derive_seed`);
* workers ship back plain picklable :class:`~repro.parallel.merge.
  ReplicaResult` records — including a kernel-counter snapshot, since
  the process-global :func:`~repro.des.kernel_counters` of a worker
  is invisible to the parent — and the parent merges them in replica-
  index order regardless of completion order;
* the merged payload is byte-identical (modulo the timing and
  execution-geometry fields removed by
  :meth:`ExperimentResult.strip_timings`) for any worker count.

:func:`parallel_map` is the underlying generic primitive, also used
by the SA mapper's multi-start mode
(:func:`repro.noc.parallel_annealing_mapping`) and ``repro bench
--workers``.

This module is the **only** sanctioned home for ``multiprocessing``
in the repository: the SL206 lint rule flags process-pool usage
anywhere else, because ad-hoc pools silently break the seed-derivation
and counter-merging contracts centralised here.
"""

from __future__ import annotations

import gc
import multiprocessing
import time
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro import experiments
from repro.des import kernel_counters
from repro.parallel.merge import ReplicaResult, merge_replicas
from repro.utils.rng import RandomStreams

__all__ = ["fork_seed", "replica_seed", "parallel_map",
           "run_replicated"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def fork_seed(master_seed: int, name: str) -> int:
    """The master seed of ``RandomStreams(master_seed).fork(name)``.

    Forked seeds hash under a ``"fork:"`` prefix, so streams drawn
    from a fork can never collide with streams drawn from the parent
    by plain :meth:`~repro.utils.rng.RandomStreams.get`.
    """
    return RandomStreams(master_seed).fork(name).master_seed


def replica_seed(master_seed: int, index: int) -> int:
    """Deterministic per-replica seed: a pure function of the master
    seed and the replica index, independent of worker count and
    scheduling order."""
    if index < 0:
        raise ValueError(f"replica index must be >= 0, got {index}")
    return fork_seed(master_seed, f"replica/{index}")


def _context(start_method: str | None) -> multiprocessing.context.BaseContext:
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    methods = multiprocessing.get_all_start_methods()
    # fork is dramatically cheaper (no re-import of the repro stack
    # per worker) and available on the platforms we target (Linux).
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _call_indexed(payload: tuple) -> tuple:
    fn, index, item = payload
    return index, fn(item)


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: int | None = None,
    start_method: str | None = None,
) -> list[_R]:
    """Map ``fn`` over ``items`` on a process pool, order-preserving.

    Results come back in **input order** no matter which worker
    finishes first: each item travels with its index and the output
    is sorted by it.  ``workers=None`` uses ``os.cpu_count()``;
    the effective pool size never exceeds the number of items.
    ``workers<=1`` maps inline in this process — only safe for *pure*
    functions; anything touching process-global state (like
    experiment replicas, which reset kernel counters) must go through
    :func:`run_replicated`, which always isolates work in child
    processes.
    """
    items = list(items)
    if not items:
        return []
    if workers is None:
        workers = multiprocessing.cpu_count()
    workers = max(1, min(int(workers), len(items)))
    if workers <= 1:
        return [fn(item) for item in items]
    payloads = [(fn, i, item) for i, item in enumerate(items)]
    ctx = _context(start_method)
    with ctx.Pool(processes=workers) as pool:
        indexed = list(
            pool.imap_unordered(_call_indexed, payloads, chunksize=1)
        )
    indexed.sort(key=lambda pair: pair[0])
    return [result for _, result in indexed]


def _run_replica(payload: tuple) -> ReplicaResult:
    """Worker body: run one replica and ship back a plain record.

    Runs in a child process; resetting the (process-local) kernel
    counters first makes the shipped snapshot exactly this replica's
    kernel activity.
    """
    exp_id, index, seed, verify = payload
    # Finalize any objects inherited from the parent (or a previous
    # task in this process) *before* resetting the counters: suspended
    # simulation generators schedule cleanup events when collected,
    # which would otherwise leak into this replica's snapshot.
    gc.collect()
    counters = kernel_counters()
    counters.reset()
    start = time.perf_counter()
    result = experiments.run(exp_id, seed=seed, verify=verify)
    wall = time.perf_counter() - start
    return ReplicaResult(
        index=index,
        seed=seed,
        kpis=dict(result.metrics),
        tables=list(result.tables),
        report=result.report,
        registry=result.registry,
        kernel=counters.snapshot(),
        wall_seconds=wall,
    )


def run_replicated(
    exp_id: str,
    *,
    replicas: int,
    workers: int | None = None,
    seed: int | None = None,
    verify: bool = True,
    start_method: str | None = None,
):
    """Run ``replicas`` independent replicas of one experiment and
    merge them into a pooled :class:`ExperimentResult`.

    Parameters
    ----------
    exp_id:
        Experiment id (case-insensitive), as for
        :func:`repro.experiments.run`.
    replicas:
        Number of independent replicas; replica *i* runs with
        :func:`replica_seed(master, i) <replica_seed>`.
    workers:
        Worker processes (default ``os.cpu_count()``, capped at
        ``replicas``).  **Every** worker count — including 1 — runs
        replicas in child processes: a replica resets its process-
        global kernel counters, so running it inline would clobber
        the parent's, and keeping one code path is what makes the
        workers=1 and workers=16 payloads byte-identical.
    seed:
        Master seed (default 0, matching ``experiments.run``).
    verify:
        Pre-flight the experiment's models in the **parent** before
        any worker starts (fail fast, once) and skip re-verification
        in the workers.
    start_method:
        Multiprocessing start method override (default: ``fork``
        where available, else ``spawn``).

    Returns the pooled :class:`~repro.experiments.result.
    ExperimentResult`; ``result.report.replication`` carries the
    across-replica KPI statistics, per-replica seeds, summed kernel
    counters and per-replica wall times.  The parent's own
    :func:`~repro.des.kernel_counters` are advanced by the merged
    worker totals, so cross-process kernel activity is visible
    exactly once.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    experiment = experiments.get(exp_id)
    if verify and experiment.models is not None:
        from repro.check import ModelVerificationError, has_errors

        diagnostics = experiments.preflight(exp_id)
        if has_errors(diagnostics):
            raise ModelVerificationError(diagnostics)
    master = 0 if seed is None else int(seed)
    if workers is None:
        workers = multiprocessing.cpu_count()
    workers = max(1, min(int(workers), replicas))

    payloads = [
        (experiment.id, index, replica_seed(master, index), False)
        for index in range(replicas)
    ]
    start = time.perf_counter()
    ctx = _context(start_method)
    # maxtasksperchild=1: every replica gets a *fresh* process, so a
    # replica never observes interpreter state (warm caches, pending
    # garbage) left behind by a previous replica that happened to land
    # on the same worker — a worker-count-dependent effect that would
    # break the byte-identical merge contract.
    with ctx.Pool(processes=workers, maxtasksperchild=1) as pool:
        results = list(
            pool.imap_unordered(_run_replica, payloads, chunksize=1)
        )
    wall = time.perf_counter() - start
    results.sort(key=lambda r: r.index)

    parent_counters = kernel_counters()
    for replica in results:
        parent_counters.merge(replica.kernel)

    return merge_replicas(
        experiment.id,
        experiment.claim,
        results,
        master_seed=master,
        workers=workers,
        wall_seconds=wall,
    )
