"""Multiprocessing replication engine.

:func:`run_replicated` fans one experiment out over ``replicas``
independent replicas onto ``workers`` OS processes and merges the
results deterministically:

* replica *i* runs with seed ``replica_seed(master_seed, i)`` —
  derived through :meth:`RandomStreams.fork`, whose ``"fork:"``-
  prefixed hashing guarantees the replica's streams can never collide
  with the parent run's plain streams (see
  :func:`repro.utils.rng.derive_seed`);
* workers ship back plain picklable :class:`~repro.parallel.merge.
  ReplicaResult` records — including a kernel-counter snapshot, since
  the process-global :func:`~repro.des.kernel_counters` of a worker
  is invisible to the parent — and the parent merges them in replica-
  index order regardless of completion order;
* the merged payload is byte-identical (modulo the timing and
  execution-geometry fields removed by
  :meth:`ExperimentResult.strip_timings`) for any worker count.

Execution is **fault tolerant**: replicas run under the
:mod:`repro.parallel.supervisor`, which retries crashed or erroring
workers with exponential backoff, terminates and requeues hung
replicas past ``replica_timeout``, streams completed results into a
checkpoint journal an interrupted sweep can ``resume=`` from, and —
because a retried replica reruns the *same* derived seed — keeps the
byte-identical merge contract intact through all of it.

:func:`parallel_map` is the underlying generic primitive, also used
by the SA mapper's multi-start mode
(:func:`repro.noc.parallel_annealing_mapping`) and ``repro bench
--workers``.

This module is the **only** sanctioned home for ``multiprocessing``
in the repository: the SL206 lint rule flags process-pool usage
anywhere else, because ad-hoc pools silently break the seed-derivation
and counter-merging contracts centralised here.
"""

from __future__ import annotations

import gc
import multiprocessing
import random
import sys
import time
from pathlib import Path
from typing import Any, Callable, Iterable, TypeVar

from repro import experiments
from repro.des import kernel_counters
from repro.obs.slo import as_slo_specs
from repro.obs.timeseries import as_probe_spec
from repro.parallel.live import DEFAULT_TELEMETRY_INTERVAL, SweepView
from repro.parallel.merge import ReplicaResult, merge_replicas
from repro.parallel.supervisor import (
    CheckpointJournal,
    FaultPlan,
    ParallelItemError,
    ReplicaFailedError,
    SupervisorPolicy,
    supervise,
)
from repro.utils.rng import RandomStreams

__all__ = ["fork_seed", "replica_seed", "parallel_map",
           "run_replicated"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def fork_seed(master_seed: int, name: str) -> int:
    """The master seed of ``RandomStreams(master_seed).fork(name)``.

    Forked seeds hash under a ``"fork:"`` prefix, so streams drawn
    from a fork can never collide with streams drawn from the parent
    by plain :meth:`~repro.utils.rng.RandomStreams.get`.
    """
    return RandomStreams(master_seed).fork(name).master_seed


def replica_seed(master_seed: int, index: int) -> int:
    """Deterministic per-replica seed: a pure function of the master
    seed and the replica index, independent of worker count and
    scheduling order."""
    if index < 0:
        raise ValueError(f"replica index must be >= 0, got {index}")
    return fork_seed(master_seed, f"replica/{index}")


def _context(start_method: str | None) -> multiprocessing.context.BaseContext:
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    methods = multiprocessing.get_all_start_methods()
    # fork is dramatically cheaper (no re-import of the repro stack
    # per worker) and available on the platforms we target (Linux).
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _call_indexed(payload: tuple) -> tuple:
    fn, index, item = payload
    try:
        return index, fn(item)
    except Exception as exc:
        raise ParallelItemError(index, item, exc) from exc


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    workers: int | None = None,
    start_method: str | None = None,
) -> list[_R]:
    """Map ``fn`` over ``items`` on a process pool, order-preserving.

    Results come back in **input order** no matter which worker
    finishes first: each item travels with its index and the output
    is sorted by it.  ``workers=None`` uses ``os.cpu_count()``;
    the effective pool size never exceeds the number of items.
    ``workers<=1`` maps inline in this process — only safe for *pure*
    functions; anything touching process-global state (like
    experiment replicas, which reset kernel counters) must go through
    :func:`run_replicated`, which always isolates work in child
    processes.

    **Failure semantics:** the first item whose ``fn`` raises aborts
    the map with a :class:`~repro.parallel.supervisor.
    ParallelItemError` carrying the input ``index``, the ``item``
    itself, and the ``original`` exception (chained via ``from``
    inline; attached as ``.original`` across the pool).  In-flight
    siblings are terminated with the pool and their results
    discarded — ``parallel_map`` is all-or-nothing.  Work that must
    survive individual failures belongs in :func:`run_replicated`,
    whose supervisor retries per replica instead of aborting.
    """
    items = list(items)
    if not items:
        return []
    if workers is None:
        workers = multiprocessing.cpu_count()
    workers = max(1, min(int(workers), len(items)))
    if workers <= 1:
        return [_call_indexed((fn, i, item))[1]
                for i, item in enumerate(items)]
    payloads = [(fn, i, item) for i, item in enumerate(items)]
    ctx = _context(start_method)
    with ctx.Pool(processes=workers) as pool:
        indexed = list(
            pool.imap_unordered(_call_indexed, payloads, chunksize=1)
        )
    indexed.sort(key=lambda pair: pair[0])
    return [result for _, result in indexed]


def _run_replica(payload: tuple) -> ReplicaResult:
    """Worker body: run one replica and ship back a plain record.

    Runs in a child process; resetting the (process-local) kernel
    counters first makes the shipped snapshot exactly this replica's
    kernel activity.  Any planned chaos fault for this
    ``(replica, attempt)`` fires *before* the experiment runs — a
    crashed/hung/raised attempt therefore never produces a partial
    result, and the retry (same seed) reproduces the clean payload.
    """
    exp_id, index, seed, verify, attempt, plan, probe, slo = payload
    if plan is None:
        plan = FaultPlan.from_env()
    if plan is not None:
        plan.apply(index, attempt)
    # Finalize any objects inherited from the parent (or a previous
    # task in this process) *before* resetting the counters: suspended
    # simulation generators schedule cleanup events when collected,
    # which would otherwise leak into this replica's snapshot.
    gc.collect()
    counters = kernel_counters()
    counters.reset()
    start = time.perf_counter()
    result = experiments.run(exp_id, seed=seed, verify=verify,
                             probe=probe, slo=slo)
    wall = time.perf_counter() - start
    return ReplicaResult(
        index=index,
        seed=seed,
        kpis=dict(result.metrics),
        tables=list(result.tables),
        report=result.report,
        registry=result.registry,
        kernel=counters.snapshot(),
        wall_seconds=wall,
        attempts=attempt,
    )


def run_replicated(
    exp_id: str,
    *,
    replicas: int,
    workers: int | None = None,
    seed: int | None = None,
    verify: bool = True,
    start_method: str | None = None,
    replica_timeout: float | None = None,
    retries: int = 2,
    backoff_base: float = 0.05,
    backoff_max: float = 2.0,
    partial: bool = False,
    checkpoint: str | Path | None = None,
    resume: str | Path | None = None,
    fault_plan: FaultPlan | None = None,
    probe: Any = None,
    slo: Any = None,
    live: bool = False,
    telemetry: float | None = None,
    on_event: Callable[[str, dict], None] | None = None,
):
    """Run ``replicas`` independent replicas of one experiment and
    merge them into a pooled :class:`ExperimentResult`.

    Parameters
    ----------
    exp_id:
        Experiment id (case-insensitive), as for
        :func:`repro.experiments.run`.
    replicas:
        Number of independent replicas; replica *i* runs with
        :func:`replica_seed(master, i) <replica_seed>`.
    workers:
        Worker processes (default ``os.cpu_count()``, capped at
        ``replicas``).  **Every** worker count — including 1 — runs
        replicas in child processes: a replica resets its process-
        global kernel counters, so running it inline would clobber
        the parent's, and keeping one code path is what makes the
        workers=1 and workers=16 payloads byte-identical.  Each
        attempt gets a *fresh* process (the supervisor equivalent of
        ``maxtasksperchild=1``), so no replica ever observes
        interpreter state left behind by another.
    seed:
        Master seed (default 0, matching ``experiments.run``).
    verify:
        Pre-flight the experiment's models in the **parent** before
        any worker starts (fail fast, once) and skip re-verification
        in the workers.
    start_method:
        Multiprocessing start method override (default: ``fork``
        where available, else ``spawn``).
    replica_timeout:
        Per-attempt wall-clock budget in seconds; a replica past it is
        terminated and retried.  ``None`` (default) waits forever.
    retries:
        Extra attempts after the first for a crashed, hung, or
        erroring replica (default 2; every attempt reruns the same
        derived seed, so retries never change the merged payload).
    backoff_base, backoff_max:
        Exponential-backoff window between attempts, stretched by
        deterministic jitter from a seed-derived RNG.
    partial:
        When a replica exhausts every attempt, merge the surviving
        replicas (with the casualties accounted in
        ``report.replication["failed_replicas"]``) instead of raising
        :class:`~repro.parallel.supervisor.ReplicaFailedError`.
    checkpoint:
        Append each completed replica to this JSONL journal
        (:class:`~repro.parallel.supervisor.CheckpointJournal`).
    resume:
        Load completed replicas from this journal and skip them; new
        completions keep appending to the same journal unless a
        separate ``checkpoint`` path is given.  A journal recorded by
        a different (experiment, master seed) sweep is rejected.
    fault_plan:
        Chaos-harness injection
        (:class:`~repro.parallel.supervisor.FaultPlan`): crash, hang,
        or raise inside chosen ``(replica, attempt)`` workers.  Test
        hook — production sweeps leave it ``None`` (workers then
        honour the :data:`~repro.parallel.supervisor.FAULT_PLAN_ENV`
        variable, so subprocess-driven tests can inject too).
    probe:
        KPI time-series probe for every replica, as accepted by
        :func:`repro.obs.timeseries.as_probe_spec` (``True``, an
        interval, or a :class:`~repro.obs.timeseries.ProbeSpec`).
        Probe series sample *simulated* time only, so they merge
        byte-identically across worker counts like every other
        metric.
    slo:
        Service-level objectives, as accepted by
        :func:`repro.obs.slo.as_slo_specs`.  Each replica evaluates
        them independently; the merged report carries the per-replica
        verdicts and a pooled verdict in ``report.slo``.
    live:
        Render live sweep progress to stderr via a
        :class:`~repro.parallel.live.SweepView` (implies telemetry at
        :data:`~repro.parallel.live.DEFAULT_TELEMETRY_INTERVAL` when
        ``telemetry`` is unset).  Display only: the merged payload is
        byte-identical with ``live`` on or off.
    telemetry:
        Wall-clock seconds between out-of-band telemetry frames from
        each worker (``None`` disables frames unless ``live`` turns
        them on).  Frames ride the existing result pipes and never
        reach the merged payload.
    on_event:
        Callback ``(kind, info)`` for supervisor lifecycle events
        (``start``/``telemetry``/``done``/``retry``/``failed``).
        Overrides the default live renderer; exceptions raised by the
        callback are swallowed.

    Returns the pooled :class:`~repro.experiments.result.
    ExperimentResult`; ``result.report.replication`` carries the
    across-replica KPI statistics, per-replica seeds, summed kernel
    counters, per-replica wall times and attempt counts, and the
    failed-replica accounting.  The parent's own
    :func:`~repro.des.kernel_counters` are advanced by the merged
    worker totals, so cross-process kernel activity is visible
    exactly once.  A ``KeyboardInterrupt`` mid-sweep terminates and
    joins every worker before re-raising — no orphan processes — and
    a later ``resume=`` picks the sweep up from its journal.
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    experiment = experiments.get(exp_id)
    if verify and (experiment.scenario is not None
                   or experiment.models is not None):
        from repro.check import ModelVerificationError, has_errors

        diagnostics = experiments.preflight(exp_id)
        if has_errors(diagnostics):
            raise ModelVerificationError(diagnostics)
    master = 0 if seed is None else int(seed)
    if workers is None:
        workers = multiprocessing.cpu_count()
    workers = max(1, min(int(workers), replicas))

    probe_spec = as_probe_spec(probe)
    slo_specs = as_slo_specs(slo)
    if live:
        if telemetry is None:
            telemetry = DEFAULT_TELEMETRY_INTERVAL
        if on_event is None:
            on_event = SweepView(stream=sys.stderr).handle

    done: dict[int, ReplicaResult] = {}
    if resume is not None and Path(resume).exists():
        done = CheckpointJournal.load(
            resume, experiment=experiment.id, master_seed=master,
            replicas=replicas)
    journal_path = checkpoint if checkpoint is not None else resume
    journal = (CheckpointJournal(journal_path,
                                 experiment=experiment.id,
                                 master_seed=master)
               if journal_path is not None else None)

    tasks = [(index, replica_seed(master, index))
             for index in range(replicas) if index not in done]
    policy = SupervisorPolicy(
        timeout=replica_timeout,
        retries=retries,
        backoff_base=backoff_base,
        backoff_max=backoff_max,
        partial=partial,
    )
    # Jitter draws are seeded off the master so a sweep's retry
    # schedule is reproducible; the draws only pace retries — they
    # can never reach the merged payload.
    rng = random.Random(fork_seed(master, "supervisor/backoff"))

    def make_payload(index: int, seed_i: int, attempt: int) -> tuple:
        return (experiment.id, index, seed_i, False, attempt,
                fault_plan, probe_spec, slo_specs)

    start = time.perf_counter()
    fresh, failures = supervise(
        tasks,
        worker=_run_replica,
        make_payload=make_payload,
        ctx=_context(start_method),
        workers=workers,
        policy=policy,
        rng=rng,
        on_result=journal.append if journal is not None else None,
        telemetry=telemetry,
        on_event=on_event,
    )
    wall = time.perf_counter() - start

    results = sorted([*done.values(), *fresh.values()],
                     key=lambda r: r.index)
    if not results:
        # partial=True but nothing survived: there is no result to
        # degrade to, so this is a hard failure after all.
        raise ReplicaFailedError(failures)

    parent_counters = kernel_counters()
    for replica in results:
        parent_counters.merge(replica.kernel)

    return merge_replicas(
        experiment.id,
        experiment.claim,
        results,
        master_seed=master,
        workers=workers,
        wall_seconds=wall,
        failed=failures,
        resumed=len(done),
    )
