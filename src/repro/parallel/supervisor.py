"""Fault-tolerant supervision of replica workers.

:mod:`repro.parallel.engine` fans replicas onto worker processes; this
module is the layer that keeps a sweep alive when those processes
misbehave.  The supervisor owns one :class:`multiprocessing.Process`
per replica *attempt* (the same fresh-process-per-replica isolation
the old ``maxtasksperchild=1`` pool gave) and a result pipe per
process, and multiplexes them through
:func:`multiprocessing.connection.wait`:

* a replica that exceeds :attr:`SupervisorPolicy.timeout` wall-clock
  seconds is terminated (SIGTERM, then SIGKILL after a grace period)
  and requeued;
* a replica whose worker **crashes** — nonzero exit, OOM kill, a
  segfault — is detected by the pipe closing with no result and
  requeued; repeated crashes shrink the effective worker count toward
  1 (the classic OOM spiral: fewer concurrent workers, smaller
  footprint) instead of aborting the sweep;
* each requeue retries with **exponential backoff plus jitter**, up to
  ``retries`` extra attempts; the retried attempt reruns the *same*
  ``replica_seed(master, i)``, so a retry can never change the merged
  payload — only the attempt count, which
  :meth:`ExperimentResult.strip_timings` removes;
* a replica that exhausts its attempts raises
  :class:`ReplicaFailedError` naming the replica index and seed — or,
  under ``partial=True``, is recorded in
  ``report.replication["failed_replicas"]`` and the sweep merges what
  survived.

Completed results stream through an optional callback into a
:class:`CheckpointJournal` (append-only JSONL); an interrupted sweep
restarted with ``run_replicated(..., resume=path)`` skips every
replica the journal already holds.

The **chaos harness** lives here too: a :class:`FaultPlan` injects
crash/hang/raise faults into :func:`repro.parallel.engine._run_replica`
by ``(replica index, attempt)`` — either passed explicitly
(``run_replicated(..., fault_plan=plan)``) or through the
:data:`FAULT_PLAN_ENV` environment variable so subprocess-driven tests
and CI can reach inside the workers.  The chaos determinism matrix in
``tests/parallel/test_chaos.py`` asserts that a sweep full of injected
crashes and hangs still merges byte-identically to a fault-free run.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import random
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import connection as _mp_connection
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.parallel.live import TelemetrySampler
from repro.parallel.merge import ReplicaResult

__all__ = [
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "InjectedFault",
    "ParallelItemError",
    "ReplicaFailure",
    "ReplicaFailedError",
    "JournalMismatchError",
    "CheckpointJournal",
    "SupervisorPolicy",
    "supervise",
]

#: Environment variable carrying a JSON :class:`FaultPlan` into worker
#: processes (test hook; see :meth:`FaultPlan.from_env`).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit code of a worker killed by an injected ``crash`` fault; any
#: nonzero exit (OOM killer, segfault) is handled identically, the
#: fixed value just makes chaos tests recognisable in process tables.
CRASH_EXIT_CODE = 23


# ----------------------------------------------------------------------
# Failure vocabulary
# ----------------------------------------------------------------------
class InjectedFault(RuntimeError):
    """Raised inside a worker by a ``raise`` fault of a :class:`FaultPlan`."""


class ParallelItemError(RuntimeError):
    """One item of a :func:`repro.parallel.parallel_map` call failed.

    Wraps the worker exception so the parent knows *which* item broke:
    ``index`` is the position in the input iterable, ``item`` the input
    value itself, and ``original`` the exception the mapped function
    raised (re-raised from it, so the chain survives inline; across a
    pool the original rides along as an attribute).
    """

    def __init__(self, index: int, item: Any, original: BaseException):
        super().__init__(
            f"parallel_map item {index} ({item!r}) failed: "
            f"{type(original).__name__}: {original}"
        )
        self.index = index
        self.item = item
        self.original = original

    def __reduce__(self):
        # Default exception pickling replays __init__ with the str
        # message only; preserve the structured fields across the pool.
        return (type(self), (self.index, self.item, self.original))


@dataclass(frozen=True)
class ReplicaFailure:
    """One replica that exhausted every attempt."""

    index: int
    seed: int
    attempts: int
    error: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "seed": self.seed,
            "attempts": self.attempts,
            "error": self.error,
        }


class ReplicaFailedError(RuntimeError):
    """A replica failed on every attempt (and ``partial`` was off, or
    nothing survived to merge).

    ``failures`` lists every exhausted replica; ``index``/``seed``
    name the first one for the common single-failure case.
    """

    def __init__(self, failures: Sequence[ReplicaFailure]):
        self.failures = list(failures)
        first = self.failures[0]
        extra = (f" (and {len(self.failures) - 1} more)"
                 if len(self.failures) > 1 else "")
        super().__init__(
            f"replica {first.index} (seed {first.seed}) failed after "
            f"{first.attempts} attempt(s): {first.error}{extra}"
        )

    @property
    def index(self) -> int:
        return self.failures[0].index

    @property
    def seed(self) -> int:
        return self.failures[0].seed


# ----------------------------------------------------------------------
# Chaos harness: the fault plan
# ----------------------------------------------------------------------
class FaultPlan:
    """Deterministic fault injection for the chaos harness.

    A plan maps ``(replica index, attempt)`` — attempts are 1-based —
    to an action executed inside the worker **before** the experiment
    runs:

    * ``"crash"`` — ``os._exit(CRASH_EXIT_CODE)``: the process dies
      without a result, exactly like an OOM kill;
    * ``"hang"`` — sleep forever (the worker busy-waits in short
      sleeps and exits on its own if it is ever orphaned, so a leaked
      hang can not outlive the test that injected it);
    * ``"raise"`` — raise :class:`InjectedFault`.

    Faults target specific attempts, so ``plan.crash(3)`` crashes
    replica 3's first attempt and lets the retry — same seed —
    succeed: the canonical chaos-determinism scenario.
    """

    def __init__(self) -> None:
        self._actions: dict[tuple[int, int], str] = {}

    # -- builders ------------------------------------------------------
    def _add(self, action: str, replica: int,
             attempts: Iterable[int]) -> "FaultPlan":
        for attempt in attempts:
            if attempt < 1:
                raise ValueError(f"attempts are 1-based, got {attempt}")
            self._actions[(int(replica), int(attempt))] = action
        return self

    def crash(self, replica: int,
              attempts: Iterable[int] = (1,)) -> "FaultPlan":
        """Kill the worker abruptly on the given attempts."""
        return self._add("crash", replica, attempts)

    def hang(self, replica: int,
             attempts: Iterable[int] = (1,)) -> "FaultPlan":
        """Make the worker hang (until terminated) on the attempts."""
        return self._add("hang", replica, attempts)

    def raise_(self, replica: int,
               attempts: Iterable[int] = (1,)) -> "FaultPlan":
        """Raise :class:`InjectedFault` in the worker on the attempts."""
        return self._add("raise", replica, attempts)

    # -- queries -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._actions)

    def action_for(self, replica: int, attempt: int) -> str | None:
        """The action planned for this (replica, attempt), if any."""
        return self._actions.get((replica, attempt))

    def apply(self, replica: int, attempt: int) -> None:
        """Execute the planned fault inside the worker (no-op when the
        plan holds nothing for this (replica, attempt))."""
        action = self.action_for(replica, attempt)
        if action is None:
            return
        if action == "raise":
            raise InjectedFault(
                f"injected fault: replica {replica} attempt {attempt}"
            )
        if action == "crash":
            os._exit(CRASH_EXIT_CODE)
        if action == "hang":
            # Hang until the supervisor terminates us — but never
            # outlive the parent: a SIGKILLed sweep must not leak an
            # immortal child, so the hang polls its parentage and
            # exits once orphaned (ppid changes when the parent dies).
            parent = os.getppid()
            while True:
                time.sleep(0.05)  # simlint: ignore[SL202]
                if os.getppid() != parent:
                    os._exit(0)
        raise ValueError(f"unknown fault action {action!r}")

    # -- serialization (env-var test hook) -----------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "version": 1,
            "faults": [
                {"replica": replica, "attempt": attempt,
                 "action": action}
                for (replica, attempt), action
                in sorted(self._actions.items())
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        plan = cls()
        for fault in data.get("faults", []):
            plan._add(fault["action"], int(fault["replica"]),
                      (int(fault["attempt"]),))
        return plan

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """The plan in :data:`FAULT_PLAN_ENV`, or ``None``."""
        text = os.environ.get(FAULT_PLAN_ENV)
        if not text:
            return None
        return cls.from_json(text)


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------
class JournalMismatchError(ValueError):
    """A resume journal belongs to a different sweep."""


class CheckpointJournal:
    """Append-only JSONL journal of completed :class:`ReplicaResult`\\ s.

    One JSON object per line: a greppable header (experiment, master
    seed, replica index, seed, attempts) plus the pickled result as
    base64 in ``"payload"``.  Appends are flushed per record, so a
    sweep killed mid-run loses at most the record being written; a
    truncated final line is tolerated on load.
    """

    VERSION = 1

    def __init__(self, path: str | Path, *, experiment: str,
                 master_seed: int):
        self.path = Path(path)
        self.experiment = experiment
        self.master_seed = master_seed

    def append(self, result: ReplicaResult) -> None:
        record = {
            "v": self.VERSION,
            "experiment": self.experiment,
            "master_seed": self.master_seed,
            "index": result.index,
            "seed": result.seed,
            "attempts": result.attempts,
            "payload": base64.b64encode(
                pickle.dumps(result)).decode("ascii"),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # One pre-encoded write per record: a text-mode stream chunks
        # long lines through its encoder, so a concurrent reader (or a
        # kill mid-append) could observe a partial line that *counts*
        # as a record before its payload is complete.  A single
        # buffered binary write keeps each line all-or-nothing.
        data = (json.dumps(record, sort_keys=True) + "\n").encode(
            "utf-8")
        with self.path.open("ab") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())

    @classmethod
    def load(
        cls,
        path: str | Path,
        *,
        experiment: str,
        master_seed: int,
        replicas: int | None = None,
    ) -> dict[int, ReplicaResult]:
        """Completed replicas recorded in the journal at ``path``.

        Raises :class:`JournalMismatchError` when a record belongs to
        a different (experiment, master seed) — resuming someone
        else's sweep would silently merge wrong science.  Records with
        an index beyond ``replicas`` are ignored (the sweep shrank);
        the last record per index wins; a truncated trailing line
        (interrupted append) ends the read without error.
        """
        done: dict[int, ReplicaResult] = {}
        text = Path(path).read_text(encoding="utf-8")
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # interrupted final append; everything before is good
            if record.get("experiment") != experiment or (
                    record.get("master_seed") != master_seed):
                raise JournalMismatchError(
                    f"journal {path} records "
                    f"{record.get('experiment')!r} with master seed "
                    f"{record.get('master_seed')!r}; this sweep is "
                    f"{experiment!r} with master seed {master_seed!r}"
                )
            index = int(record["index"])
            if replicas is not None and index >= replicas:
                continue
            result = pickle.loads(
                base64.b64decode(record["payload"]))
            done[index] = result
        return done


# ----------------------------------------------------------------------
# The supervisor loop
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SupervisorPolicy:
    """Fault-tolerance knobs of one supervised sweep.

    ``timeout`` is per-attempt wall-clock seconds (``None`` = wait
    forever); ``retries`` is *extra* attempts after the first, so a
    replica runs at most ``retries + 1`` times.  Backoff before
    attempt ``n+1`` is ``min(backoff_max, backoff_base * 2**(n-1))``
    stretched by up to ``jitter`` (a fraction, drawn from the seeded
    supervisor RNG so sweeps stay reproducible).  ``partial`` merges
    the survivors of exhausted replicas instead of raising.
    """

    timeout: float | None = None
    retries: int = 2
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    jitter: float = 0.25
    partial: bool = False
    #: Consecutive crashes before each further crash shrinks the
    #: effective worker count by one (graceful degradation toward 1).
    crash_shrink_after: int = 2
    #: Give up after this many failed process spawns.
    max_spawn_failures: int = 8
    #: Seconds between SIGTERM and SIGKILL for a timed-out worker.
    term_grace: float = 2.0


@dataclass
class _Attempt:
    index: int
    seed: int
    attempt: int  # 1-based: the attempt about to run
    not_before: float = 0.0  # perf_counter gate for backoff


@dataclass
class _Running:
    process: Any
    conn: Any
    task: _Attempt
    deadline: float | None


def _worker_shell(fn: Callable[[tuple], ReplicaResult],
                  payload: tuple, conn,
                  telemetry: float | None = None,
                  inherited: Sequence[Any] = ()) -> None:
    """Process target: run ``fn`` and ship the outcome up the pipe.

    A missing message (pipe closed, nonzero exit) is how the parent
    detects a crash; errors are reported as short descriptions — the
    supervisor retries by replica, it never needs the live exception.

    ``inherited`` lists the *parent-side* pipe ends this fork-context
    child copied from the supervisor — its own pipe's read end plus
    every sibling's.  They must be closed here, first thing: a result
    larger than the pipe buffer blocks in ``conn.send`` until the
    parent reads it, and if the parent is SIGKILLed mid-sweep the
    write can only fail with ``EPIPE`` (freeing the worker to exit)
    once *no* process holds a read end — a leaked copy in this child
    or a sibling would keep the blocked writer alive as an orphan
    forever.

    With ``telemetry`` set, a :class:`~repro.parallel.live.
    TelemetrySampler` thread additionally sends ``("telemetry",
    frame)`` messages every ``telemetry`` wall seconds on the *same*
    pipe — a lock serializes them against the final result send, so
    frames and results never interleave mid-message.  Telemetry is
    out-of-band gossip: the parent renders it and throws it away,
    so the merged payload is identical with it on or off.
    """
    for stale in inherited:
        stale.close()
    send_lock = threading.Lock()
    sampler: TelemetrySampler | None = None
    if telemetry is not None:
        def _send_frame(frame: dict) -> None:
            with send_lock:
                conn.send(("telemetry", frame))

        sampler = TelemetrySampler(_send_frame, interval=telemetry)
        sampler.start()
    try:
        result = fn(payload)
        if sampler is not None:
            sampler.stop()
        with send_lock:
            conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - reported, not hidden
        if sampler is not None:
            sampler.stop()
        message = f"{type(exc).__name__}: {exc}"
        try:
            with send_lock:
                conn.send(("error", message))
        except OSError:
            os._exit(1)  # parent gone; count as crash
        if isinstance(exc, KeyboardInterrupt):
            os._exit(1)
    finally:
        conn.close()


def _kill(process, grace: float) -> None:
    """Terminate a worker: SIGTERM, a short grace, then SIGKILL."""
    if process.is_alive():
        process.terminate()
        process.join(grace)
    if process.is_alive():
        process.kill()
    process.join()


def _backoff(policy: SupervisorPolicy, attempt: int,
             rng: random.Random) -> float:
    base = min(policy.backoff_max,
               policy.backoff_base * (2 ** max(0, attempt - 1)))
    return base * (1.0 + policy.jitter * rng.random())


def supervise(
    tasks: Sequence[tuple[int, int]],
    *,
    worker: Callable[[tuple], ReplicaResult],
    make_payload: Callable[[int, int, int], tuple],
    ctx,
    workers: int,
    policy: SupervisorPolicy,
    rng: random.Random,
    on_result: Callable[[ReplicaResult], None] | None = None,
    telemetry: float | None = None,
    on_event: Callable[[str, dict[str, Any]], None] | None = None,
) -> tuple[dict[int, ReplicaResult], list[ReplicaFailure]]:
    """Run ``tasks`` (``(replica index, seed)`` pairs) to completion
    under the fault-tolerance ``policy``.

    Spawns one fresh process per attempt (``worker`` receives
    ``make_payload(index, seed, attempt)``), collects results
    asynchronously, retries timeouts/crashes/errors with backoff, and
    returns ``(results by index, exhausted failures)``.  Raises
    :class:`ReplicaFailedError` at the first exhausted replica unless
    ``policy.partial``.  On *any* exit — including
    ``KeyboardInterrupt`` — every child still running is terminated
    and joined before the exception propagates: a cancelled sweep
    leaves no orphan processes.

    ``telemetry`` (wall seconds) makes every worker stream heartbeat
    frames up its result pipe; ``on_event`` receives them as
    ``("telemetry", {index, attempt, wall, sim_now, events_executed,
    events_per_sec, ...})`` plus the lifecycle events ``("start",
    ...)``, ``("done", ...)``, ``("retry", ...)`` and ``("failed",
    ...)``.  The callback is display-plumbing: exceptions it raises
    are swallowed (a broken progress bar must not kill a sweep), and
    nothing it observes can reach the merged payload.  Telemetry
    frames never extend a replica's ``policy.timeout`` deadline — a
    hung simulation with a live heartbeat thread is still hung.
    """
    def emit(kind: str, info: dict[str, Any]) -> None:
        if on_event is None:
            return
        try:
            on_event(kind, info)
        except Exception:  # simlint: ignore[SL207] - display-only
            pass
    pending: list[_Attempt] = [
        _Attempt(index=index, seed=seed, attempt=1)
        for index, seed in tasks
    ]
    running: list[_Running] = []
    results: dict[int, ReplicaResult] = {}
    failures: list[ReplicaFailure] = []
    effective = max(1, min(int(workers), max(1, len(pending))))
    spawn_failures = 0
    crash_streak = 0

    def handle_failure(task: _Attempt, message: str,
                       *, crashed: bool) -> None:
        nonlocal crash_streak, effective
        if crashed:
            crash_streak += 1
            if crash_streak > policy.crash_shrink_after:
                effective = max(1, effective - 1)
        if task.attempt <= policy.retries:
            pending.append(_Attempt(
                index=task.index,
                seed=task.seed,
                attempt=task.attempt + 1,
                not_before=(time.perf_counter()
                            + _backoff(policy, task.attempt, rng)),
            ))
            emit("retry", {"index": task.index, "seed": task.seed,
                           "attempt": task.attempt + 1,
                           "error": message})
            return
        failure = ReplicaFailure(index=task.index, seed=task.seed,
                                 attempts=task.attempt, error=message)
        failures.append(failure)
        emit("failed", {"index": task.index, "seed": task.seed,
                        "attempts": task.attempt, "error": message})
        if not policy.partial:
            raise ReplicaFailedError([failure])

    def finish(record: _Running, message: tuple | None) -> None:
        nonlocal crash_streak
        if message is None:
            record.process.join()  # reap first, so exitcode is real
            kind, value = "crash", (
                f"worker crashed without a result "
                f"(exit code {record.process.exitcode})"
            )
        else:
            kind, value = message
        record.conn.close()
        record.process.join()
        if kind == "ok":
            crash_streak = 0
            value.attempts = record.task.attempt
            results[record.task.index] = value
            emit("done", {"index": record.task.index,
                          "seed": record.task.seed,
                          "attempts": record.task.attempt,
                          "wall_seconds": value.wall_seconds})
            if on_result is not None:
                on_result(value)
        else:
            handle_failure(record.task, str(value),
                           crashed=(kind == "crash"))

    try:
        while pending or running:
            now = time.perf_counter()
            # Launch every ready task a free slot can take, in replica
            # order (retries queue behind first attempts naturally).
            ready = [t for t in pending if t.not_before <= now]
            while ready and len(running) < effective:
                task = ready.pop(0)
                try:
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    # A fork-context child copies every open fd, so it
                    # must close the parent-side pipe ends it inherits
                    # (its own and its running siblings') — otherwise
                    # a worker blocked sending a larger-than-buffer
                    # result never sees EPIPE after the parent dies
                    # and leaks as an orphan.  Spawn children inherit
                    # nothing, and Connections don't pickle into them.
                    method = getattr(ctx, "get_start_method",
                                     lambda: "fork")()
                    stale_ends = (
                        [record.conn for record in running]
                        + [parent_conn]
                        if method == "fork" else [])
                    # daemon=True (like the old Pool's workers): if a
                    # signal lands between start() and the bookkeeping
                    # below, interpreter exit *terminates* the stray
                    # child instead of joining it — joining would
                    # deadlock against a worker that only quits once
                    # its parent is gone.
                    process = ctx.Process(
                        target=_worker_shell,
                        args=(worker,
                              make_payload(task.index, task.seed,
                                           task.attempt),
                              child_conn, telemetry, stale_ends),
                        daemon=True,
                    )
                    process.start()
                except OSError as error:
                    spawn_failures += 1
                    if spawn_failures >= policy.max_spawn_failures:
                        raise
                    # Degrade instead of aborting: halve the pool and
                    # back the task off — fork failures are almost
                    # always transient resource exhaustion.
                    effective = max(1, effective // 2)
                    task.not_before = (
                        time.perf_counter()
                        + _backoff(policy, spawn_failures, rng))
                    del error
                    break
                child_conn.close()
                pending.remove(task)
                running.append(_Running(
                    process=process,
                    conn=parent_conn,
                    task=task,
                    deadline=(now + policy.timeout
                              if policy.timeout is not None else None),
                ))
                emit("start", {"index": task.index, "seed": task.seed,
                               "attempt": task.attempt})
            if not running:
                if pending:
                    delay = max(0.0, min(t.not_before for t in pending)
                                - time.perf_counter())
                    # Everyone is backing off; the supervisor itself
                    # is the only thing awake to wait for them.
                    time.sleep(min(delay, 0.25))  # simlint: ignore[SL202]
                continue

            # Sleep until a result arrives or the nearest deadline /
            # backoff expiry, whichever is first.
            now = time.perf_counter()
            wakeups = [r.deadline - now for r in running
                       if r.deadline is not None]
            wakeups += [t.not_before - now for t in pending
                        if t.not_before > now]
            timeout = max(0.0, min(wakeups)) if wakeups else None
            ready_conns = _mp_connection.wait(
                [r.conn for r in running], timeout)

            for conn in ready_conns:
                record = next(r for r in running if r.conn is conn)
                try:
                    message = record.conn.recv()
                except (EOFError, OSError):
                    message = None
                if message is not None and message[0] == "telemetry":
                    # Heartbeat, not a result: the replica stays
                    # running (and keeps its original deadline).
                    emit("telemetry", {
                        "index": record.task.index,
                        "attempt": record.task.attempt,
                        **message[1],
                    })
                    continue
                running.remove(record)
                finish(record, message)

            now = time.perf_counter()
            for record in [r for r in running
                           if r.deadline is not None
                           and r.deadline <= now]:
                running.remove(record)
                _kill(record.process, policy.term_grace)
                record.conn.close()
                # The wall clock only decides *whether* a hung
                # replica is retried; the retry reuses the replica's
                # original derived seed, so results stay a pure
                # function of the master seed.
                # simflow: ignore[SF307]
                handle_failure(
                    record.task,
                    f"replica hung: no result within "
                    f"{policy.timeout:g}s (worker terminated)",
                    crashed=True,
                )
    finally:
        # Ctrl-C, a raise, or a clean return all come through here:
        # no child may outlive the sweep.
        for record in running:
            _kill(record.process, policy.term_grace)
            record.conn.close()

    return results, failures
