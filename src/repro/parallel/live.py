"""Out-of-band telemetry: heartbeats, sweep view, live rendering.

A replicated sweep is a black box until it finishes unless the workers
say something while running.  :class:`TelemetrySampler` is a daemon
thread inside each worker that periodically reads the process-local
:func:`~repro.des.kernel_counters` and the most recently constructed
environment's clock (:func:`~repro.des.last_environment`) and emits
small *telemetry frames*.  The supervisor ships them to the parent
over the existing result pipe (tagged ``("telemetry", frame)``, so
they can never be mistaken for a result) and forwards them — together
with lifecycle events (start/done/retry/failed) — to an ``on_event``
callback.

Everything here is **observational**: frames are wall-clock progress
gossip that never reaches the merged payload, so the deterministic-
merge contract is untouched — asserted by the live-on vs. live-off
equivalence test in ``tests/parallel/test_telemetry.py``.

:class:`SweepView` is the standard ``on_event`` consumer: it keeps
per-replica state and renders compact progress lines (the CLI's
``--live`` mode) to a stream.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, TextIO

from repro.des import kernel_counters, last_environment

__all__ = ["TelemetrySampler", "SweepView", "ReplicaView",
           "DEFAULT_TELEMETRY_INTERVAL"]

#: Wall-clock seconds between telemetry frames.
DEFAULT_TELEMETRY_INTERVAL = 1.0


class TelemetrySampler(threading.Thread):
    """Daemon thread emitting progress frames at a wall interval.

    Each frame carries wall-clock elapsed seconds, the sampled
    environment's sim-time (``None`` before the first environment
    exists), cumulative kernel counters and the events/sec rate since
    the previous frame.  Reading the counters and a weakly-referenced
    environment clock is safe from a thread: both are plain attribute
    reads that never mutate simulation state.
    """

    def __init__(self, emit: Callable[[dict[str, Any]], None],
                 interval: float = DEFAULT_TELEMETRY_INTERVAL,
                 stop: threading.Event | None = None):
        super().__init__(daemon=True, name="repro-telemetry")
        if not interval > 0:
            raise ValueError(f"telemetry interval must be positive, "
                             f"got {interval}")
        self._emit = emit
        self.interval = float(interval)
        # Not named ``_stop``: threading.Thread uses that attribute
        # internally and shadowing it breaks join()/is_alive().
        self._halt = stop if stop is not None else threading.Event()

    def stop(self, join_timeout: float | None = 2.0) -> None:
        """Signal the thread to exit and (briefly) wait for it."""
        self._halt.set()
        if join_timeout is not None and self.is_alive():
            self.join(join_timeout)

    def frame(self, *, wall: float, last: tuple[int, float]
              ) -> tuple[dict[str, Any], tuple[int, float]]:
        """Build one telemetry frame; returns it plus the new
        ``(events_executed, wall)`` baseline for the rate."""
        counters = kernel_counters()
        executed = counters.events_executed
        last_executed, last_wall = last
        span = wall - last_wall
        rate = (executed - last_executed) / span if span > 0 else 0.0
        env = last_environment()
        return ({
            "wall": wall,
            "sim_now": env.now if env is not None else None,
            "events_executed": executed,
            "events_scheduled": counters.events_scheduled,
            "events_per_sec": rate,
        }, (executed, wall))

    def run(self) -> None:  # pragma: no cover - exercised via workers
        start = time.perf_counter()
        last = (kernel_counters().events_executed, 0.0)
        # Event.wait is the pacing clock of an *observer* thread; it
        # never influences simulated time.
        while not self._halt.wait(self.interval):  # simlint: ignore[SL202]
            frame, last = self.frame(
                wall=time.perf_counter() - start, last=last)
            try:
                self._emit(frame)
            except Exception:
                return  # emission channel gone; stop quietly


@dataclass
class ReplicaView:
    """Latest known state of one replica in a live sweep."""

    index: int
    seed: int | None = None
    state: str = "pending"  # pending|running|done|failed
    attempt: int = 0
    sim_now: float | None = None
    events_executed: int = 0
    events_per_sec: float = 0.0
    wall: float = 0.0
    error: str | None = None


@dataclass
class SweepView:
    """Aggregated per-replica live state; the ``on_event`` consumer.

    Feed it supervisor events via :meth:`handle`; when ``stream`` is
    set it renders throttled one-line progress updates (lifecycle
    transitions always print, telemetry refreshes at most every
    ``min_refresh`` wall seconds).  Purely a display/inspection
    surface — nothing here feeds back into the sweep.
    """

    replicas: dict[int, ReplicaView] = field(default_factory=dict)
    stream: TextIO | None = None
    min_refresh: float = 0.5
    _last_render: float = field(default=-1.0, repr=False)

    def view(self, index: int) -> ReplicaView:
        if index not in self.replicas:
            self.replicas[index] = ReplicaView(index=index)
        return self.replicas[index]

    # -- event intake --------------------------------------------------
    def handle(self, kind: str, info: dict[str, Any]) -> None:
        """Process one supervisor event (`on_event` signature)."""
        view = self.view(int(info.get("index", -1)))
        if kind == "start":
            view.state = "running"
            view.seed = info.get("seed", view.seed)
            view.attempt = int(info.get("attempt", 1))
        elif kind == "telemetry":
            view.sim_now = info.get("sim_now", view.sim_now)
            view.events_executed = int(
                info.get("events_executed", view.events_executed))
            view.events_per_sec = float(
                info.get("events_per_sec", view.events_per_sec))
            view.wall = float(info.get("wall", view.wall))
        elif kind == "done":
            view.state = "done"
            view.wall = float(info.get("wall_seconds", view.wall))
        elif kind == "retry":
            view.state = "pending"
            view.error = info.get("error")
            view.attempt = int(info.get("attempt", view.attempt))
        elif kind == "failed":
            view.state = "failed"
            view.error = info.get("error")
        if self.stream is not None:
            self._render(kind, view)

    # -- summaries -----------------------------------------------------
    def counts(self) -> dict[str, int]:
        tally = {"pending": 0, "running": 0, "done": 0, "failed": 0}
        for view in self.replicas.values():
            tally[view.state] = tally.get(view.state, 0) + 1
        return tally

    def total_events_per_sec(self) -> float:
        return sum(v.events_per_sec
                   for v in self.replicas.values()
                   if v.state == "running")

    def status_line(self) -> str:
        tally = self.counts()
        total = len(self.replicas)
        parts = [f"{tally['done']}/{total} done"]
        if tally["running"]:
            parts.append(f"{tally['running']} running")
        if tally["pending"]:
            parts.append(f"{tally['pending']} pending")
        if tally["failed"]:
            parts.append(f"{tally['failed']} FAILED")
        rate = self.total_events_per_sec()
        if rate > 0:
            parts.append(f"{rate / 1000:.1f}k ev/s")
        return ", ".join(parts)

    def render_lines(self) -> list[str]:
        """Full per-replica state block (tests and rich consumers)."""
        lines = [f"sweep: {self.status_line()}"]
        for index in sorted(self.replicas):
            view = self.replicas[index]
            detail = ""
            if view.state == "running" and view.sim_now is not None:
                detail = (f" sim_t={view.sim_now:.2f} "
                          f"{view.events_per_sec / 1000:.1f}k ev/s")
            elif view.error:
                detail = f" ({view.error})"
            lines.append(f"  r{index} [{view.state}]"
                         f" attempt={view.attempt}{detail}")
        return lines

    # -- rendering -----------------------------------------------------
    def _render(self, kind: str, view: ReplicaView) -> None:
        now = time.perf_counter()
        throttled = (kind == "telemetry"
                     and self._last_render >= 0.0
                     and now - self._last_render < self.min_refresh)
        if throttled:
            return
        self._last_render = now
        if kind == "telemetry":
            sim = ("?" if view.sim_now is None
                   else f"{view.sim_now:.2f}")
            detail = (f"r{view.index} sim_t={sim} "
                      f"{view.events_per_sec / 1000:.1f}k ev/s")
        elif kind in ("retry", "failed"):
            detail = f"r{view.index} {kind}: {view.error}"
        else:
            detail = f"r{view.index} {view.state}"
        print(f"[live] {detail} | {self.status_line()}",
              file=self.stream, flush=True)
