"""Parallel replication of experiments across worker processes.

The engine fans one experiment over ``replicas`` independent seeds
onto ``workers`` OS processes and merges the results
deterministically — the merged payload is byte-identical (modulo
timing fields) whether run with 1 or 16 workers, in any completion
order.  See :mod:`repro.parallel.engine` for the contracts and
``docs/parallel.md`` for the design discussion.

    >>> from repro.parallel import run_replicated  # doctest: +SKIP
    >>> result = run_replicated("e14", replicas=8, workers=4)  # doctest: +SKIP
"""

from repro.parallel.engine import (
    fork_seed,
    parallel_map,
    replica_seed,
    run_replicated,
)
from repro.parallel.merge import ReplicaResult, merge_replicas, pool_kpis

__all__ = [
    "fork_seed",
    "replica_seed",
    "parallel_map",
    "run_replicated",
    "ReplicaResult",
    "merge_replicas",
    "pool_kpis",
]
