"""Parallel replication of experiments across worker processes.

The engine fans one experiment over ``replicas`` independent seeds
onto ``workers`` OS processes and merges the results
deterministically — the merged payload is byte-identical (modulo
timing fields) whether run with 1 or 16 workers, in any completion
order.  Execution is supervised for fault tolerance: hung replicas
time out and requeue, crashed workers retry with backoff on the same
derived seed, completed replicas checkpoint to a journal a sweep can
``resume=`` from, and a :class:`FaultPlan` chaos harness proves the
merge survives all of it byte-identically.  See
:mod:`repro.parallel.engine` / :mod:`repro.parallel.supervisor` for
the contracts and ``docs/parallel.md`` for the design discussion.

    >>> from repro.parallel import run_replicated  # doctest: +SKIP
    >>> result = run_replicated("e14", replicas=8, workers=4,
    ...                         replica_timeout=60.0)  # doctest: +SKIP
"""

from repro.parallel.engine import (
    fork_seed,
    parallel_map,
    replica_seed,
    run_replicated,
)
from repro.parallel.live import (
    DEFAULT_TELEMETRY_INTERVAL,
    ReplicaView,
    SweepView,
    TelemetrySampler,
)
from repro.parallel.merge import ReplicaResult, merge_replicas, pool_kpis
from repro.parallel.supervisor import (
    FAULT_PLAN_ENV,
    CheckpointJournal,
    FaultPlan,
    InjectedFault,
    JournalMismatchError,
    ParallelItemError,
    ReplicaFailedError,
    ReplicaFailure,
    SupervisorPolicy,
    supervise,
)

__all__ = [
    "fork_seed",
    "replica_seed",
    "parallel_map",
    "run_replicated",
    "ReplicaResult",
    "merge_replicas",
    "pool_kpis",
    "FAULT_PLAN_ENV",
    "CheckpointJournal",
    "FaultPlan",
    "InjectedFault",
    "JournalMismatchError",
    "ParallelItemError",
    "ReplicaFailedError",
    "ReplicaFailure",
    "SupervisorPolicy",
    "supervise",
    "DEFAULT_TELEMETRY_INTERVAL",
    "ReplicaView",
    "SweepView",
    "TelemetrySampler",
]
