"""Deterministic merging of replicated experiment results.

A replicated run produces one :class:`ReplicaResult` per (seed,
replica index).  :func:`merge_replicas` folds them — **always in
replica-index order**, never in completion order — into a single
pooled :class:`~repro.experiments.result.ExperimentResult`:

* headline KPIs become across-replica means, with Student-t
  confidence intervals (:func:`repro.utils.stats.confidence_interval`)
  and min/max/std in ``report.replication["kpis"]``;
* the per-replica :class:`~repro.obs.metrics.MetricRegistry` objects
  fold via :meth:`MetricRegistry.merge` (counters sum, gauges pool,
  histograms merge exactly in the aggregates);
* per-replica kernel-counter snapshots sum into
  ``report.replication["kernel"]``;
* per-replica SLO verdicts pool into ``report.slo`` — breaches tagged
  with their replica index and concatenated in replica order.

Because the fold order is the replica index and every replica's seed
is a pure function of ``(master_seed, index)``, the merged payload is
byte-identical for any worker count and any completion order — the
determinism contract asserted by
:meth:`ExperimentResult.strip_timings`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.experiments.result import ExperimentResult
from repro.obs.metrics import MetricRegistry
from repro.obs.report import RunReport
from repro.utils.stats import confidence_interval
from repro.utils.tables import Table

__all__ = ["ReplicaResult", "pool_kpis", "merge_replicas"]


@dataclass
class ReplicaResult:
    """What one worker ships back for one replica.

    Deliberately a plain picklable record: the parent never receives
    live tracers or process handles, only data.  ``kernel`` is the
    worker-local :class:`~repro.des.KernelCounters` snapshot for this
    replica (the worker resets its process-global counters before the
    run), so the parent can :meth:`~repro.des.KernelCounters.merge`
    what would otherwise be invisible cross-process activity.
    """

    index: int
    seed: int
    kpis: dict[str, float] = field(default_factory=dict)
    tables: list[Table] = field(default_factory=list)
    report: RunReport | None = None
    registry: MetricRegistry | None = None
    kernel: dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: How many attempts this replica took (1 = first try succeeded).
    #: Execution history, not science: a retried replica reruns the
    #: same seed, and :meth:`ExperimentResult.strip_timings` removes
    #: the attempt counts from the merged payload.
    attempts: int = 1


def pool_kpis(
    replicas: Sequence[ReplicaResult],
) -> dict[str, dict[str, float]]:
    """Across-replica statistics for every headline KPI.

    Returns ``{kpi: {mean, ci_half, min, max, std, n}}`` with KPI
    names in first-seen replica order.  ``ci_half`` is the half-width
    of the 95% Student-t interval (NaN for fewer than two replicas —
    a single replica has no across-replica variance to estimate).
    """
    names: list[str] = []
    for replica in replicas:
        for name in replica.kpis:
            if name not in names:
                names.append(name)
    pooled: dict[str, dict[str, float]] = {}
    for name in names:
        values = [r.kpis[name] for r in replicas if name in r.kpis]
        mean, half = confidence_interval(values)
        if math.isinf(half):
            half = math.nan  # one replica: no variance to estimate
        arr_mean = sum(values) / len(values)
        if len(values) > 1:
            variance = sum((v - arr_mean) ** 2 for v in values) / (
                len(values) - 1
            )
            std = math.sqrt(variance)
        else:
            std = math.nan
        pooled[name] = {
            "mean": mean,
            "ci_half": half,
            "min": min(values),
            "max": max(values),
            "std": std,
            "n": len(values),
        }
    return pooled


def _replication_table(
    pooled: dict[str, dict[str, float]], n_replicas: int
) -> Table:
    table = Table(
        ["kpi", "mean", "ci_half", "min", "max"],
        title=f"pooled KPIs across {n_replicas} replicas "
              f"(95% CI half-width)",
    )
    for name, stats in pooled.items():
        table.add_row([
            name,
            f"{stats['mean']:.6g}",
            ("n/a" if math.isnan(stats["ci_half"])
             else f"{stats['ci_half']:.3g}"),
            f"{stats['min']:.6g}",
            f"{stats['max']:.6g}",
        ])
    return table


def _per_replica_table(replicas: Sequence[ReplicaResult]) -> Table:
    names: list[str] = []
    for replica in replicas:
        for name in replica.kpis:
            if name not in names:
                names.append(name)
    table = Table(["replica", "seed"] + names,
                  title="per-replica KPIs")
    for replica in replicas:
        row = [str(replica.index), str(replica.seed)]
        for name in names:
            value = replica.kpis.get(name)
            row.append("n/a" if value is None else f"{value:.6g}")
        table.add_row(row)
    return table


def _merged_kernel(
    replicas: Sequence[ReplicaResult],
) -> dict[str, int]:
    merged = {
        "events_scheduled": 0,
        "events_executed": 0,
        "environments": 0,
        "peak_heap_depth": 0,
    }
    for replica in replicas:
        for key in ("events_scheduled", "events_executed",
                    "environments"):
            merged[key] += int(replica.kernel.get(key, 0))
        depth = int(replica.kernel.get("peak_heap_depth", 0))
        if depth > merged["peak_heap_depth"]:
            merged["peak_heap_depth"] = depth
    return merged


def _merged_slo(
    replicas: Sequence[ReplicaResult],
) -> dict[str, Any] | None:
    """Pool per-replica SLO records into one ``report.slo`` payload.

    Breaches concatenate **in replica-index order**, each tagged with
    its ``replica`` — breach times are sim-time, so the pooled record
    is as deterministic as the series it derives from.  The merged
    ``final`` verdict per objective is the conjunction of the replica
    verdicts, carrying the *worst* observed value (largest for
    ``<=``/``<`` objectives, smallest for ``>=``/``>``).
    """
    with_slo = [r for r in replicas
                if r.report is not None and r.report.slo]
    if not with_slo:
        return None
    specs = with_slo[0].report.slo.get("specs", [])
    ops = {spec["name"]: spec["op"] for spec in specs}
    breaches: list[dict[str, Any]] = []
    by_replica: dict[str, dict[str, Any]] = {}
    final: dict[str, dict[str, Any]] = {}
    for replica in with_slo:
        record = replica.report.slo
        for breach in record.get("breaches", []):
            breaches.append({**breach, "replica": replica.index})
        by_replica[str(replica.index)] = {
            "ok": record.get("ok", True),
            "breaches": len(record.get("breaches", [])),
        }
        for name, entry in record.get("final", {}).items():
            value = entry.get("value")
            slot = final.setdefault(name, {"value": None, "ok": True})
            slot["ok"] = slot["ok"] and entry.get("ok", True)
            if value is not None:
                worse = (max if ops.get(name, "<=") in ("<=", "<")
                         else min)
                slot["value"] = (value if slot["value"] is None
                                 else worse(slot["value"], value))
    return {
        "specs": specs,
        "breaches": breaches,
        "final": final,
        "by_replica": by_replica,
        "ok": (not breaches
               and all(entry["ok"] for entry in final.values())),
    }


def merge_replicas(
    exp_id: str,
    claim: str,
    replicas: Sequence[ReplicaResult],
    *,
    master_seed: int,
    workers: int,
    wall_seconds: float = 0.0,
    failed: Sequence[Any] = (),
    resumed: int = 0,
) -> ExperimentResult:
    """Fold replica results into one pooled :class:`ExperimentResult`.

    ``replicas`` must already be sorted by :attr:`ReplicaResult.index`
    (``run_replicated`` guarantees this); the fold order **is** the
    determinism contract, so this function refuses unsorted input
    rather than silently reordering differently from the caller's
    expectation.

    ``failed`` lists :class:`~repro.parallel.supervisor.ReplicaFailure`
    records for replicas that exhausted every attempt (a ``partial``
    merge); their indices may be missing from ``replicas``, which is
    why a partial merge tolerates index gaps — the accounting lives in
    ``report.replication["failed_replicas"]``.  ``resumed`` counts the
    replicas loaded from a checkpoint journal rather than executed in
    this sweep (execution history; stripped with the timings).
    """
    if not replicas:
        raise ValueError("merge_replicas needs at least one replica")
    indices = [r.index for r in replicas]
    if indices != sorted(indices):
        raise ValueError(
            f"replicas must be sorted by index, got {indices}"
        )
    pooled = pool_kpis(replicas)
    metrics = {name: stats["mean"] for name, stats in pooled.items()}

    merged_registry = MetricRegistry()
    for replica in replicas:
        if replica.registry is not None:
            merged_registry.merge(replica.registry)

    report = RunReport.from_run(
        exp_id,
        seed=master_seed,
        wall_seconds=wall_seconds,
        metrics=metrics,
        registry=merged_registry,
    )
    report.slo = _merged_slo(replicas)
    report.replication = {
        "replicas": len(replicas),
        "workers": workers,
        "seeds": [r.seed for r in replicas],
        "kpis": pooled,
        "kernel": _merged_kernel(replicas),
        "wall_seconds": [r.wall_seconds for r in replicas],
        "attempts": [r.attempts for r in replicas],
        "failed_replicas": [f.to_dict() for f in failed],
        "resumed": resumed,
    }

    tables = [
        _replication_table(pooled, len(replicas)),
        _per_replica_table(replicas),
    ]
    # Replica 0's native tables show what one run looks like; every
    # replica produces the same table *shapes*, so one sample is
    # representative without bloating the payload.
    tables.extend(replicas[0].tables)

    return ExperimentResult(
        id=exp_id,
        claim=claim,
        tables=tables,
        metrics=metrics,
        report=report,
        raw=list(replicas),
        registry=merged_registry,
    )
