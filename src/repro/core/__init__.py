"""The holistic co-design core: the paper's primary contribution.

Application model + architecture model + mapping + QoS + constraints +
evaluation (simulation or analysis) + design-space exploration, glued
together by :class:`~repro.core.methodology.HolisticDesignFlow`.
"""

from repro.core.application import (
    ApplicationGraph,
    ChannelSpec,
    Dependency,
    MediaType,
    ProcessNode,
    Task,
    TaskGraph,
)
from repro.core.architecture import (
    BusInterconnect,
    Interconnect,
    PEKind,
    Platform,
    PointToPointInterconnect,
    ProcessingElement,
)
from repro.core.constraints import ConstraintViolation, DesignConstraints
from repro.core.dpm import (
    AlwaysOnPolicy,
    DpmDevice,
    DpmResult,
    OraclePolicy,
    TimeoutPolicy,
    generate_workload,
    simulate_dpm,
    timeout_sweep,
)
from repro.core.evaluation import (
    AnalyticalEvaluator,
    EvaluationResult,
    SimulationEvaluator,
    Token,
)
from repro.core.exploration import (
    DesignPoint,
    ExplorationReport,
    GuidedMappingSearch,
    MappingExplorer,
    all_mappings,
    dominates,
    pareto_front,
    random_mappings,
)
from repro.core.mapping import Mapping
from repro.core.methodology import (
    DesignOutcome,
    DesignReport,
    HolisticDesignFlow,
)
from repro.core.power import (
    DvfsModel,
    OperatingPoint,
    PowerState,
    PowerStateMachine,
    XSCALE_POINTS,
    xscale_dvfs,
)
from repro.core.qos import QoSReport, QoSSpec, QoSViolation, default_spec_for

__all__ = [
    "ApplicationGraph",
    "ProcessNode",
    "ChannelSpec",
    "MediaType",
    "Task",
    "Dependency",
    "TaskGraph",
    "Platform",
    "ProcessingElement",
    "PEKind",
    "Interconnect",
    "BusInterconnect",
    "PointToPointInterconnect",
    "Mapping",
    "QoSSpec",
    "QoSReport",
    "QoSViolation",
    "default_spec_for",
    "DesignConstraints",
    "ConstraintViolation",
    "DpmDevice",
    "DpmResult",
    "AlwaysOnPolicy",
    "TimeoutPolicy",
    "OraclePolicy",
    "simulate_dpm",
    "generate_workload",
    "timeout_sweep",
    "DvfsModel",
    "OperatingPoint",
    "XSCALE_POINTS",
    "xscale_dvfs",
    "PowerState",
    "PowerStateMachine",
    "SimulationEvaluator",
    "AnalyticalEvaluator",
    "EvaluationResult",
    "Token",
    "DesignPoint",
    "pareto_front",
    "dominates",
    "all_mappings",
    "random_mappings",
    "MappingExplorer",
    "ExplorationReport",
    "GuidedMappingSearch",
    "HolisticDesignFlow",
    "DesignReport",
    "DesignOutcome",
]
