"""Mapping an application onto an architecture.

"Simply speaking, designing a multimedia system consists of mapping the
target application onto a given implementation architecture" (§2).  A
:class:`Mapping` binds every process of an :class:`ApplicationGraph` (or
every task of a :class:`TaskGraph`) to a processing element, and knows how
to price the communication that the binding induces.
"""

from __future__ import annotations

from typing import Iterable, Mapping as TMapping

from repro.core.application import ApplicationGraph, TaskGraph
from repro.core.architecture import Platform

__all__ = ["Mapping"]


class Mapping:
    """An assignment of application processes/tasks to platform PEs.

    Parameters
    ----------
    assignment:
        Dict from process/task name to PE name.

    Examples
    --------
    >>> from repro.core.architecture import Platform, ProcessingElement
    >>> platform = Platform()
    >>> _ = platform.add_pe(ProcessingElement("cpu0"))
    >>> m = Mapping({"enc": "cpu0", "dec": "cpu0"})
    >>> m.pe_of("enc")
    'cpu0'
    """

    def __init__(self, assignment: TMapping[str, str]):
        self._assignment = dict(assignment)

    @property
    def assignment(self) -> dict[str, str]:
        """Copy of the process-to-PE assignment."""
        return dict(self._assignment)

    def pe_of(self, process: str) -> str:
        """PE a process is mapped to."""
        return self._assignment[process]

    def processes_on(self, pe: str) -> list[str]:
        """Processes mapped to PE ``pe``, in insertion order."""
        return [p for p, target in self._assignment.items() if target == pe]

    def used_pes(self) -> set[str]:
        """PEs that host at least one process."""
        return set(self._assignment.values())

    def __len__(self) -> int:
        return len(self._assignment)

    def __contains__(self, process: str) -> bool:
        return process in self._assignment

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        return hash(frozenset(self._assignment.items()))

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(
        self,
        app: ApplicationGraph | TaskGraph,
        platform: Platform,
    ) -> None:
        """Raise ``ValueError`` unless the mapping is total and well-formed.

        Every process of ``app`` must be mapped, every target PE must
        exist on ``platform`` and no unknown process may appear.
        """
        if isinstance(app, ApplicationGraph):
            expected = {p.name for p in app.processes}
        else:
            expected = {t.name for t in app.tasks}
        mapped = set(self._assignment)
        missing = expected - mapped
        if missing:
            raise ValueError(f"unmapped processes: {sorted(missing)}")
        unknown = mapped - expected
        if unknown:
            raise ValueError(f"unknown processes in mapping: "
                             f"{sorted(unknown)}")
        bad_pes = {
            pe for pe in self._assignment.values() if pe not in platform
        }
        if bad_pes:
            raise ValueError(f"unknown PEs in mapping: {sorted(bad_pes)}")

    # ------------------------------------------------------------------
    # Induced communication
    # ------------------------------------------------------------------
    def remote_edges(
        self, app: ApplicationGraph | TaskGraph
    ) -> Iterable[tuple[str, str, float]]:
        """Yield ``(src_pe, dst_pe, bits)`` for every cross-PE edge.

        Edges between processes on the same PE are free (local memory)
        and skipped; this is the §3.3 guidance to "provide as many local
        memories as possible".
        """
        if isinstance(app, ApplicationGraph):
            edges = [
                (c.src, c.dst, c.bits_per_token) for c in app.channels
            ]
        else:
            edges = [(d.src, d.dst, d.bits) for d in app.dependencies]
        for src, dst, bits in edges:
            src_pe = self._assignment[src]
            dst_pe = self._assignment[dst]
            if src_pe != dst_pe and bits > 0:
                yield src_pe, dst_pe, bits

    def communication_energy(
        self,
        app: ApplicationGraph | TaskGraph,
        platform: Platform,
    ) -> float:
        """Joules per graph iteration spent on cross-PE communication."""
        return sum(
            platform.interconnect.transfer_energy(src_pe, dst_pe, bits)
            for src_pe, dst_pe, bits in self.remote_edges(app)
        )

    def communication_bits(
        self, app: ApplicationGraph | TaskGraph
    ) -> float:
        """Bits per graph iteration crossing PE boundaries."""
        return sum(bits for _, _, bits in self.remote_edges(app))

    # ------------------------------------------------------------------
    # Canonical (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form: the assignment keyed by process name."""
        return {"assignment": dict(self._assignment)}

    @classmethod
    def from_dict(cls, data: dict) -> "Mapping":
        """Rebuild a mapping from :meth:`to_dict` output."""
        assignment = data.get("assignment", {})
        return cls({str(k): str(v) for k, v in assignment.items()})

    def __repr__(self) -> str:
        return f"Mapping({self._assignment!r})"
