"""Design constraints: the non-QoS side of "satisfying an imposed set of
design constraints (e.g. minimum power dissipation, maximum performance)".

Where :class:`~repro.core.qos.QoSSpec` bounds stream-level metrics,
:class:`DesignConstraints` bounds system-level budget figures: power,
energy per run, silicon cost and design effort.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DesignConstraints", "ConstraintViolation"]


@dataclass(frozen=True)
class ConstraintViolation:
    """One violated design constraint."""

    name: str
    measured: float
    bound: float

    def __str__(self) -> str:
        return (
            f"{self.name}: measured {self.measured:.6g} exceeds "
            f"bound {self.bound:.6g}"
        )


@dataclass(frozen=True)
class DesignConstraints:
    """Budget bounds for a design point; ``None`` means unconstrained.

    Parameters
    ----------
    max_average_power:
        Average power budget in watts (battery-driven designs, §1).
    max_energy:
        Energy budget per evaluation horizon in joules.
    max_gate_count:
        Silicon budget in gates (the §3.1 voice-recognition system fits
        in 200k gates).
    max_cost:
        Monetary cost budget in arbitrary units (§1: devices "have to be
        affordable").
    """

    max_average_power: float | None = None
    max_energy: float | None = None
    max_gate_count: float | None = None
    max_cost: float | None = None

    def __post_init__(self) -> None:
        for label in ("max_average_power", "max_energy", "max_gate_count",
                      "max_cost"):
            value = getattr(self, label)
            if value is not None and value <= 0:
                raise ValueError(f"{label} must be positive")

    def check(self, metrics: dict[str, float]) -> list[ConstraintViolation]:
        """Return violations given measured ``metrics``.

        Recognized metric keys: ``average_power`` (W), ``energy`` (J),
        ``gate_count`` (gates), ``cost``.  Missing keys are treated as
        unmeasured and not checked.
        """
        bounds = {
            "average_power": self.max_average_power,
            "energy": self.max_energy,
            "gate_count": self.max_gate_count,
            "cost": self.max_cost,
        }
        violations = []
        for key, bound in bounds.items():
            if bound is None or key not in metrics:
                continue
            measured = metrics[key]
            if measured > bound:
                violations.append(ConstraintViolation(key, measured, bound))
        return violations

    def satisfied_by(self, metrics: dict[str, float]) -> bool:
        """True when ``metrics`` meets every bound."""
        return not self.check(metrics)
