"""Quality-of-Service specification and measurement.

Section 2: "Quality of Service (QoS) ... embraces all the non-functional
properties of a system" and "QoS requirements vary considerably from one
media type to another": video wants throughput and tolerates jitter/loss;
audio wants low jitter and low loss at modest bandwidth.

:class:`QoSSpec` states requirements, :class:`QoSReport` holds measured
values, and :meth:`QoSSpec.check` produces the list of violations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.application import MediaType

__all__ = ["QoSSpec", "QoSReport", "QoSViolation", "default_spec_for"]


@dataclass(frozen=True)
class QoSSpec:
    """Required quality of service for a stream or application.

    All bounds are optional; ``None`` means "don't care".  Latency and
    jitter in seconds, loss rate as a fraction, throughput in tokens per
    second, deadline-miss rate as a fraction (multimedia deadlines are
    soft — §2.1 allows "a small percentage of missed deadlines").
    """

    max_latency: float | None = None
    max_jitter: float | None = None
    max_loss_rate: float | None = None
    min_throughput: float | None = None
    max_deadline_miss_rate: float | None = None

    def __post_init__(self) -> None:
        for label in ("max_latency", "max_jitter", "max_loss_rate",
                      "min_throughput", "max_deadline_miss_rate"):
            value = getattr(self, label)
            if value is not None and value < 0:
                raise ValueError(f"{label} must be non-negative")

    _FIELDS = ("max_latency", "max_jitter", "max_loss_rate",
               "min_throughput", "max_deadline_miss_rate")

    def to_dict(self) -> dict:
        """Plain-data form: every bound, ``None`` for "don't care"."""
        return {label: getattr(self, label) for label in self._FIELDS}

    @classmethod
    def from_dict(cls, data: dict) -> "QoSSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        kwargs = {}
        for label in cls._FIELDS:
            value = data.get(label)
            kwargs[label] = None if value is None else float(value)
        return cls(**kwargs)

    def check(self, report: "QoSReport") -> list["QoSViolation"]:
        """Return the violations of this spec in ``report`` (empty = OK)."""
        violations = []

        def exceeded(label: str, measured: float, bound: float) -> None:
            violations.append(QoSViolation(label, measured, bound))

        if self.max_latency is not None and (
                report.mean_latency > self.max_latency):
            exceeded("latency", report.mean_latency, self.max_latency)
        if self.max_jitter is not None and report.jitter > self.max_jitter:
            exceeded("jitter", report.jitter, self.max_jitter)
        if self.max_loss_rate is not None and (
                report.loss_rate > self.max_loss_rate):
            exceeded("loss_rate", report.loss_rate, self.max_loss_rate)
        if self.min_throughput is not None and (
                report.throughput < self.min_throughput):
            exceeded("throughput", report.throughput, self.min_throughput)
        if self.max_deadline_miss_rate is not None and (
                report.deadline_miss_rate > self.max_deadline_miss_rate):
            exceeded(
                "deadline_miss_rate",
                report.deadline_miss_rate,
                self.max_deadline_miss_rate,
            )
        return violations

    def satisfied_by(self, report: "QoSReport") -> bool:
        """True when ``report`` meets every bound of this spec."""
        return not self.check(report)


@dataclass(frozen=True)
class QoSViolation:
    """One violated QoS bound: which metric, measured vs. required."""

    metric: str
    measured: float
    bound: float

    def __str__(self) -> str:
        direction = ">" if self.metric != "throughput" else "<"
        return (
            f"{self.metric}: measured {self.measured:.6g} "
            f"{direction} bound {self.bound:.6g}"
        )


@dataclass
class QoSReport:
    """Measured end-to-end QoS of one evaluation run.

    Attributes
    ----------
    mean_latency, p99_latency:
        End-to-end token latency statistics, seconds.
    jitter:
        Standard deviation of end-to-end latency, seconds.
    loss_rate:
        Fraction of source tokens that never reached a sink.
    throughput:
        Tokens delivered to sinks per second.
    deadline_miss_rate:
        Fraction of delivered tokens late against their deadline
        (NaN when no deadline was tracked).
    """

    mean_latency: float = math.nan
    p99_latency: float = math.nan
    jitter: float = math.nan
    loss_rate: float = 0.0
    throughput: float = 0.0
    deadline_miss_rate: float = math.nan

    def as_dict(self) -> dict[str, float]:
        """Report as a plain metric dict (for tables/serialization)."""
        return {
            "mean_latency": self.mean_latency,
            "p99_latency": self.p99_latency,
            "jitter": self.jitter,
            "loss_rate": self.loss_rate,
            "throughput": self.throughput,
            "deadline_miss_rate": self.deadline_miss_rate,
        }


def default_spec_for(media: MediaType, rate_hz: float = 30.0) -> QoSSpec:
    """A sensible default QoS spec for each media class (§2).

    Video: throughput-driven, tolerant of jitter and loss.
    Audio: tight jitter and loss bounds at modest throughput.
    Control/text/graphics: latency-bound only.
    """
    if media is MediaType.VIDEO:
        return QoSSpec(
            max_latency=0.5,
            max_jitter=0.050,
            max_loss_rate=0.02,
            min_throughput=0.95 * rate_hz,
        )
    if media is MediaType.AUDIO:
        return QoSSpec(
            max_latency=0.2,
            max_jitter=0.005,
            max_loss_rate=0.001,
            min_throughput=0.99 * rate_hz,
        )
    return QoSSpec(max_latency=0.1)
