"""Evaluate a mapped application: simulation and analytical back-ends.

"Having the application and the architecture models, the next step is to
map the application onto architecture and then evaluate the model using
either simulation or some analytical approach" (§2.1).

* :class:`SimulationEvaluator` executes the process network on the DES
  kernel: every PE is a FIFO resource, every channel a finite queue, and
  tokens flow from sources to sinks while monitors collect QoS and energy.
* :class:`AnalyticalEvaluator` produces fast queueing-theoretic estimates
  (M/M/1 waiting, M/M/1/K loss) of the same metrics — the "analytical
  tools that can quickly derive power/performance estimates" of §2.2.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.application import ApplicationGraph, ProcessNode
from repro.core.architecture import Platform
from repro.core.mapping import Mapping
from repro.core.qos import QoSReport
from repro.des import Environment, FiniteQueue, Monitor, Resource
from repro.utils.rng import RandomStreams

__all__ = ["Token", "EvaluationResult", "SimulationEvaluator",
           "AnalyticalEvaluator"]


@dataclass
class Token:
    """One unit of media data flowing through the process network."""

    uid: int
    created: float
    source: str

    def merged_with(self, other: "Token") -> "Token":
        """Join semantics: the merged token is as old as the *latest*
        contributor (the one that gates progress)."""
        if other.created > self.created:
            return Token(self.uid, other.created, other.source)
        return self


@dataclass
class EvaluationResult:
    """Outcome of one evaluation: QoS report plus system metrics.

    Attributes
    ----------
    qos:
        End-to-end stream QoS (latency/jitter/loss/throughput).
    metrics:
        System metrics: ``average_power`` (W), ``energy`` (J),
        ``compute_energy``, ``comm_energy``, ``horizon`` (s) and
        per-PE utilizations under ``util:<pe>``.
    buffer_occupancy:
        Mean buffer occupancy per channel key ``"src->dst"`` — the
        "average length of these buffers" called out for Fig.1(b).
    """

    qos: QoSReport
    metrics: dict[str, float] = field(default_factory=dict)
    buffer_occupancy: dict[str, float] = field(default_factory=dict)

    def utilization(self, pe: str) -> float:
        """Utilization of PE ``pe`` (fraction of time busy)."""
        return self.metrics[f"util:{pe}"]


class SimulationEvaluator:
    """Discrete-event evaluation of an application mapped on a platform.

    Parameters
    ----------
    app:
        The application process network (must validate).
    platform:
        The target platform.
    mapping:
        Process-to-PE binding (must validate against both).
    seed:
        Master seed for all stochastic components.
    deterministic_sources:
        When true, sources emit strictly periodically; otherwise
        inter-arrival times are exponential with the source rate
        (heavier contention, the "average behaviour" regime of §2).
    token_deadline:
        Optional relative deadline (seconds) applied to every token for
        the deadline-miss-rate metric.
    """

    def __init__(
        self,
        app: ApplicationGraph,
        platform: Platform,
        mapping: Mapping,
        seed: int = 0,
        deterministic_sources: bool = True,
        token_deadline: float | None = None,
    ):
        app.validate()
        mapping.validate(app, platform)
        self.app = app
        self.platform = platform
        self.mapping = mapping
        self.seed = seed
        self.deterministic_sources = deterministic_sources
        self.token_deadline = token_deadline

    # ------------------------------------------------------------------
    def evaluate(self, horizon: float, warmup: float = 0.0
                 ) -> EvaluationResult:
        """Simulate for ``horizon`` seconds and report QoS and energy.

        Observations before ``warmup`` are discarded so steady-state
        metrics are not polluted by the empty-system transient.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if not 0 <= warmup < horizon:
            raise ValueError("warmup must lie in [0, horizon)")

        env = Environment()
        streams = RandomStreams(self.seed)
        uid_counter = itertools.count()

        pe_resources = {
            pe.name: Resource(env, capacity=1) for pe in self.platform.pes
        }
        bus = Resource(env, capacity=1) if (
            self.platform.interconnect.is_shared()) else None
        channel_queues = {
            c.key: FiniteQueue(env, capacity=c.buffer_capacity)
            for c in self.app.channels
        }

        busy_time = {pe.name: 0.0 for pe in self.platform.pes}
        comm_energy_acc = [0.0]
        latencies: list[float] = []
        deadline_misses = [0]
        delivered = [0]
        sourced = [0]

        latency_monitor = Monitor(env, name="latency")

        def cycles_for(process: ProcessNode,
                       rng: np.random.Generator) -> float:
            if process.cycles_cv <= 0 or process.cycles_mean == 0:
                return process.cycles_mean
            # Lognormal with the requested mean and CV.
            cv2 = process.cycles_cv**2
            sigma = math.sqrt(math.log(1 + cv2))
            mu = math.log(process.cycles_mean) - sigma**2 / 2
            return float(rng.lognormal(mu, sigma))

        def compute(process: ProcessNode, token: Token):
            """Claim the mapped PE and burn the cycle demand."""
            pe_name = self.mapping.pe_of(process.name)
            pe = self.platform.pe(pe_name)
            rng = streams.get(f"cycles:{process.name}")
            demand = cycles_for(process, rng)
            if demand > 0:
                with pe_resources[pe_name].request() as req:
                    yield req
                    service = pe.execution_time(demand)
                    yield env.timeout(service)
                    if env.now > warmup:
                        busy_time[pe_name] += service

        def transmit(src: str, dst: str, bits: float, token: Token):
            """Move a token across the interconnect, then offer it."""
            src_pe = self.mapping.pe_of(src)
            dst_pe = self.mapping.pe_of(dst)
            delay = self.platform.interconnect.transfer_time(
                src_pe, dst_pe, bits
            )
            if delay > 0 and bus is not None:
                with bus.request() as req:
                    yield req
                    yield env.timeout(delay)
            elif delay > 0:
                yield env.timeout(delay)
            if env.now > warmup:
                comm_energy_acc[0] += (
                    self.platform.interconnect.transfer_energy(
                        src_pe, dst_pe, bits
                    )
                )
            # Finite buffer at the consumer: overflow means loss.
            channel_queues[(src, dst)].offer(token)

        def forward(process: ProcessNode, token: Token):
            for channel in self.app.out_channels(process.name):
                env.process(transmit(
                    channel.src, channel.dst,
                    channel.bits_per_token, token,
                ))

        def deliver(token: Token) -> None:
            latency = env.now - token.created
            if env.now > warmup:
                delivered[0] += 1
                latencies.append(latency)
                latency_monitor.observe(latency)
                if (self.token_deadline is not None
                        and latency > self.token_deadline):
                    deadline_misses[0] += 1

        def handle(process: ProcessNode, token: Token):
            """Per-token work: compute on the mapped PE, then forward."""
            yield from compute(process, token)
            if not self.app.successors(process.name):
                deliver(token)
            else:
                forward(process, token)

        def source_proc(process: ProcessNode):
            rng = streams.get(f"arrivals:{process.name}")
            period = 1.0 / process.rate_hz
            while True:
                if self.deterministic_sources:
                    yield env.timeout(period)
                else:
                    yield env.timeout(float(rng.exponential(period)))
                token = Token(next(uid_counter), env.now, process.name)
                if env.now > warmup:
                    sourced[0] += 1
                # Emission never throttles: an overloaded system shows up
                # as losses at finite buffers and growing latency, not as
                # a magically slower source.
                env.process(handle(process, token))

        def worker_proc(process: ProcessNode):
            in_queues = [
                channel_queues[c.key]
                for c in self.app.in_channels(process.name)
            ]
            while True:
                token: Token | None = None
                for queue in in_queues:  # join: one token from each input
                    incoming = yield queue.get()
                    token = (incoming if token is None
                             else token.merged_with(incoming))
                assert token is not None
                yield from handle(process, token)

        for process in self.app.processes:
            if process.rate_hz is not None:
                env.process(source_proc(process))
            elif self.app.predecessors(process.name):
                env.process(worker_proc(process))

        env.run(until=horizon)

        return self._collect(
            horizon, warmup, busy_time, comm_energy_acc[0],
            latencies, delivered[0], sourced[0], deadline_misses[0],
            channel_queues,
        )

    # ------------------------------------------------------------------
    def _collect(
        self, horizon, warmup, busy_time, comm_energy, latencies,
        delivered, sourced, misses, channel_queues,
    ) -> EvaluationResult:
        span = horizon - warmup
        qos = QoSReport()
        if latencies:
            arr = np.asarray(latencies)
            qos.mean_latency = float(arr.mean())
            qos.p99_latency = float(np.percentile(arr, 99))
            qos.jitter = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
            qos.deadline_miss_rate = (
                misses / delivered if self.token_deadline is not None
                else math.nan
            )
        qos.throughput = delivered / span
        # Tokens still in flight at the horizon are neither lost nor
        # delivered; count only hard drops against sourced tokens.
        drops = sum(q.n_dropped for q in channel_queues.values())
        qos.loss_rate = drops / sourced if sourced else 0.0

        compute_energy = 0.0
        metrics: dict[str, float] = {}
        for pe in self.platform.pes:
            busy = busy_time[pe.name]
            util = busy / span
            metrics[f"util:{pe.name}"] = util
            compute_energy += (
                busy * pe.active_power + (span - busy) * pe.idle_power
            )
        energy = compute_energy + comm_energy
        metrics.update(
            average_power=energy / span,
            energy=energy,
            compute_energy=compute_energy,
            comm_energy=comm_energy,
            horizon=span,
            delivered=float(delivered),
            sourced=float(sourced),
        )
        occupancy = {
            f"{src}->{dst}": queue.occupancy.mean(at_time=horizon)
            for (src, dst), queue in channel_queues.items()
        }
        # Per-channel drop counts: which buffer loses tokens is the
        # first thing a designer asks when loss_rate is non-zero.
        for (src, dst), queue in channel_queues.items():
            metrics[f"drops:{src}->{dst}"] = float(queue.n_dropped)
        return EvaluationResult(qos=qos, metrics=metrics,
                                buffer_occupancy=occupancy)


class AnalyticalEvaluator:
    """Closed-form queueing estimates of the same metrics (§2.2).

    Each PE is approximated as an M/M/1 server whose load aggregates all
    processes mapped to it; channel buffers are approximated as M/M/1/K
    loss systems.  The estimates are coarse by design — their value is
    being orders of magnitude faster than simulation (experiment E10
    quantifies both the error and the speed advantage).
    """

    def __init__(self, app: ApplicationGraph, platform: Platform,
                 mapping: Mapping):
        app.validate()
        mapping.validate(app, platform)
        self.app = app
        self.platform = platform
        self.mapping = mapping

    def activation_rates(self) -> dict[str, float]:
        """Steady-state activation rate of each process (tokens/s).

        Sources activate at their own rate; every other process activates
        at the maximum of its predecessors' rates (join consumes one token
        per input per activation).
        """
        rates: dict[str, float] = {}
        order = list(self._topological_names())
        for name in order:
            process = self.app.process(name)
            preds = self.app.predecessors(name)
            if process.rate_hz is not None:
                rates[name] = process.rate_hz
            elif preds:
                rates[name] = max(rates[p] for p in preds)
            else:
                rates[name] = 0.0
        return rates

    def _topological_names(self):
        import networkx as nx

        return nx.lexicographical_topological_sort(self.app._graph)

    def pe_utilizations(self) -> dict[str, float]:
        """Offered load per PE (may exceed 1 for infeasible mappings)."""
        rates = self.activation_rates()
        utils = {pe.name: 0.0 for pe in self.platform.pes}
        for process in self.app.processes:
            pe = self.platform.pe(self.mapping.pe_of(process.name))
            utils[pe.name] += (
                rates[process.name] * process.cycles_mean / pe.frequency
            )
        return utils

    def evaluate(self) -> EvaluationResult:
        """Return analytical QoS and power estimates."""
        rates = self.activation_rates()
        utils = self.pe_utilizations()

        # End-to-end latency: longest path of per-process sojourn times.
        sojourn: dict[str, float] = {}
        for name in self._topological_names():
            process = self.app.process(name)
            pe = self.platform.pe(self.mapping.pe_of(name))
            service = process.cycles_mean / pe.frequency
            rho = min(utils[pe.name], 0.999)
            wait = (rho / (1 - rho)) * service if service > 0 else 0.0
            transfer = 0.0
            preds = self.app.predecessors(name)
            if preds:
                transfer = max(
                    self.platform.interconnect.transfer_time(
                        self.mapping.pe_of(p), self.mapping.pe_of(name),
                        self.app.channel(p, name).bits_per_token,
                    )
                    for p in preds
                )
            upstream = max((sojourn[p] for p in preds), default=0.0)
            sojourn[name] = upstream + transfer + service + wait

        # Loss: independent M/M/1/K blocking at each channel buffer.
        survival = 1.0
        for channel in self.app.channels:
            lam = rates[channel.src]
            consumer = self.app.process(channel.dst)
            pe = self.platform.pe(self.mapping.pe_of(channel.dst))
            mu = (pe.frequency / consumer.cycles_mean
                  if consumer.cycles_mean > 0 else math.inf)
            survival *= 1.0 - _mm1k_blocking(
                lam, mu, channel.buffer_capacity
            )
        loss_rate = 1.0 - survival

        sink_rate = sum(
            rates[s.name] for s in self.app.sinks()
        ) * survival

        qos = QoSReport(
            mean_latency=max(
                (sojourn[s.name] for s in self.app.sinks()), default=0.0
            ),
            loss_rate=loss_rate,
            throughput=sink_rate,
        )
        power = 0.0
        for pe in self.platform.pes:
            rho = min(utils[pe.name], 1.0)
            power += rho * pe.active_power + (1 - rho) * pe.idle_power
        comm_power = 0.0
        for src_pe, dst_pe, bits in self.mapping.remote_edges(self.app):
            comm_power += self.platform.interconnect.transfer_energy(
                src_pe, dst_pe, bits
            )  # per token; scaled below by the driving rate
        # Approximate per-second comm energy with the aggregate source rate.
        comm_power *= max(
            (rate for rate in rates.values()), default=0.0
        )
        metrics = {f"util:{pe}": u for pe, u in utils.items()}
        metrics["average_power"] = power + comm_power
        return EvaluationResult(qos=qos, metrics=metrics)


def _mm1k_blocking(lam: float, mu: float, k: int) -> float:
    """Blocking probability of an M/M/1/K queue (K waiting+service slots)."""
    if lam <= 0 or math.isinf(mu):
        return 0.0
    rho = lam / mu
    if abs(rho - 1.0) < 1e-12:
        return 1.0 / (k + 1)
    return (1 - rho) * rho**k / (1 - rho ** (k + 1))
