"""Power and energy models: DVFS operating points and power-state machines.

Section 4 of the paper: "The computation energy is usually a strong
function of the CPU clock frequency of the multimedia system, which may be
varied by using methods such as dynamic voltage and frequency scaling
(DVFS)."  The models here are shared by the streaming client (§4.1), the
scheduling experiments (§3.3) and the core evaluator.

Dynamic power follows the classical CMOS model ``P = C_eff · V² · f``;
energy for a computation of ``n`` cycles at operating point ``(V, f)`` is
``P · n / f``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "OperatingPoint",
    "DvfsModel",
    "XSCALE_POINTS",
    "xscale_dvfs",
    "PowerState",
    "PowerStateMachine",
]


@dataclass(frozen=True)
class OperatingPoint:
    """A (voltage, frequency) pair a processor can run at.

    Parameters
    ----------
    voltage:
        Supply voltage in volts.
    frequency:
        Clock frequency in hertz.
    """

    voltage: float
    frequency: float

    def __post_init__(self) -> None:
        if self.voltage <= 0 or self.frequency <= 0:
            raise ValueError("voltage and frequency must be positive")


#: Operating points modeled on the Intel XScale PXA255-class processors
#: used by the testbed in [28] (V, Hz).
XSCALE_POINTS = (
    OperatingPoint(0.85, 100e6),
    OperatingPoint(1.0, 200e6),
    OperatingPoint(1.1, 300e6),
    OperatingPoint(1.3, 400e6),
    OperatingPoint(1.5, 500e6),
)


class DvfsModel:
    """Dynamic voltage and frequency scaling power/energy model.

    Parameters
    ----------
    points:
        Available operating points (sorted internally by frequency).
    ceff:
        Effective switched capacitance in farads.
    idle_power:
        Power drawn when the processor is idle at any point, in watts
        (leakage plus clock tree; assumed point-independent for
        simplicity).

    Examples
    --------
    >>> model = xscale_dvfs()
    >>> fast = model.fastest()
    >>> slow = model.slowest()
    >>> model.energy(1e6, slow) < model.energy(1e6, fast)
    True
    """

    def __init__(
        self,
        points: tuple[OperatingPoint, ...] = XSCALE_POINTS,
        ceff: float = 1.0e-9,
        idle_power: float = 0.02,
    ):
        if not points:
            raise ValueError("at least one operating point required")
        if ceff <= 0:
            raise ValueError("ceff must be positive")
        if idle_power < 0:
            raise ValueError("idle_power must be non-negative")
        self.points = tuple(sorted(points, key=lambda p: p.frequency))
        self.ceff = ceff
        self.idle_power = idle_power

    def fastest(self) -> OperatingPoint:
        """Highest-frequency operating point."""
        return self.points[-1]

    def slowest(self) -> OperatingPoint:
        """Lowest-frequency operating point."""
        return self.points[0]

    def power(self, point: OperatingPoint) -> float:
        """Active dynamic power at ``point``, in watts."""
        return self.ceff * point.voltage**2 * point.frequency

    def energy(self, cycles: float, point: OperatingPoint) -> float:
        """Energy to execute ``cycles`` at ``point``, in joules."""
        if cycles < 0:
            raise ValueError("negative cycle count")
        return self.power(point) * cycles / point.frequency

    def execution_time(self, cycles: float, point: OperatingPoint) -> float:
        """Wall time to execute ``cycles`` at ``point``, in seconds."""
        if cycles < 0:
            raise ValueError("negative cycle count")
        return cycles / point.frequency

    def idle_energy(self, duration: float) -> float:
        """Energy drawn while idle for ``duration`` seconds."""
        if duration < 0:
            raise ValueError("negative duration")
        return self.idle_power * duration

    def slowest_point_meeting(
        self, cycles: float, deadline: float
    ) -> OperatingPoint | None:
        """Lowest-energy point that finishes ``cycles`` within ``deadline``.

        Returns ``None`` when even the fastest point misses the deadline.
        This is the primitive behind slack reclamation (§3.3) and the
        client DVFS policy (§4.1): because energy scales with V², the
        slowest sufficient point is also the cheapest.
        """
        if deadline <= 0:
            return None
        for point in self.points:  # ascending frequency
            if cycles / point.frequency <= deadline:
                return point
        return None

    # ------------------------------------------------------------------
    # Canonical (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form (operating points sorted by frequency)."""
        return {
            "points": [
                {"voltage": p.voltage, "frequency": p.frequency}
                for p in self.points
            ],
            "ceff": self.ceff,
            "idle_power": self.idle_power,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DvfsModel":
        """Rebuild a model from :meth:`to_dict` output."""
        points = tuple(
            OperatingPoint(float(p["voltage"]), float(p["frequency"]))
            for p in data.get("points", [])
        )
        return cls(
            points=points or XSCALE_POINTS,
            ceff=float(data.get("ceff", 1.0e-9)),
            idle_power=float(data.get("idle_power", 0.02)),
        )

    def utilization_point(self, load: float) -> OperatingPoint:
        """Point whose frequency is the smallest with ``f >= load·f_max``.

        ``load`` is a fraction of the maximum frequency demand (the
        "normalized decoding load" of §4.1, clamped to [0, 1]).
        """
        load = min(max(load, 0.0), 1.0)
        target = load * self.fastest().frequency
        for point in self.points:
            if point.frequency >= target - 1e-9:
                return point
        return self.fastest()


def xscale_dvfs() -> DvfsModel:
    """A ready-made XScale-like DVFS model (testbed of [28])."""
    return DvfsModel(points=XSCALE_POINTS, ceff=1.2e-9, idle_power=0.04)


@dataclass(frozen=True)
class PowerState:
    """One state of a dynamic power manager (active/idle/sleep).

    Parameters
    ----------
    name:
        State label.
    power:
        Power drawn while in the state, in watts.
    wakeup_latency:
        Seconds needed to return to the active state.
    wakeup_energy:
        Energy cost of the transition back to active, in joules.
    """

    name: str
    power: float
    wakeup_latency: float = 0.0
    wakeup_energy: float = 0.0

    def __post_init__(self) -> None:
        if self.power < 0 or self.wakeup_latency < 0 or self.wakeup_energy < 0:
            raise ValueError("power-state parameters must be non-negative")


class PowerStateMachine:
    """Energy accounting across power states (a simple DPM substrate).

    The machine starts in its first state; :meth:`enter` switches states,
    charging wake-up energy when moving to a higher-power state, and
    :meth:`energy` integrates consumption over the visited timeline.
    """

    def __init__(self, states: list[PowerState]):
        if not states:
            raise ValueError("at least one power state required")
        names = [s.name for s in states]
        if len(set(names)) != len(names):
            raise ValueError("duplicate power-state names")
        self.states = {s.name: s for s in states}
        self._current = states[0]
        self._last_switch = 0.0
        self._energy = 0.0

    @property
    def current(self) -> PowerState:
        """State the machine is currently in."""
        return self._current

    def enter(self, name: str, time: float) -> None:
        """Switch to state ``name`` at ``time``."""
        if name not in self.states:
            raise KeyError(f"unknown power state {name!r}")
        if time < self._last_switch:
            raise ValueError("time went backwards")
        target = self.states[name]
        self._energy += self._current.power * (time - self._last_switch)
        if target.power > self._current.power:
            # Waking into a higher-power state costs transition energy.
            self._energy += self._current.wakeup_energy
        self._current = target
        self._last_switch = time

    def energy(self, at_time: float) -> float:
        """Total energy consumed up to ``at_time``, in joules."""
        if at_time < self._last_switch:
            raise ValueError("time went backwards")
        return self._energy + self._current.power * (
            at_time - self._last_switch
        )

    def break_even_time(self, sleep_state: str) -> float:
        """Idle time above which entering ``sleep_state`` saves energy.

        The classical DPM break-even: sleeping for ``t`` saves
        ``(P_active_idle − P_sleep)·t`` but costs the wake-up energy.
        """
        sleep = self.states[sleep_state]
        active = self._current
        saved_per_second = active.power - sleep.power
        if saved_per_second <= 0:
            return math.inf
        return sleep.wakeup_energy / saved_per_second
