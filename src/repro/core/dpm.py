"""Dynamic power management: trading QoS for energy (§4).

"it is desirable to provide mechanisms for graceful degradation in QoS
such that a dynamic power manager (DPM) can incrementally trade off QoS
for higher energy efficiency."

The substrate: a device alternates busy and idle periods; a DPM policy
decides when to drop into a sleep state during idleness.  Sleeping too
eagerly hurts QoS (the wake-up latency delays the next busy period);
staying awake wastes idle power.  Implemented policies: always-on,
fixed-timeout, and the clairvoyant oracle (the energy lower bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.power import PowerState, PowerStateMachine
from repro.obs.context import active_metrics
from repro.utils.rng import spawn_rng

__all__ = [
    "DpmDevice",
    "DpmResult",
    "AlwaysOnPolicy",
    "TimeoutPolicy",
    "OraclePolicy",
    "simulate_dpm",
    "generate_workload",
    "timeout_sweep",
]


@dataclass(frozen=True)
class DpmDevice:
    """Power states of a manageable device.

    Parameters
    ----------
    active_power:
        Watts while serving a busy period.
    idle_power:
        Watts while awake but idle.
    sleep_power:
        Watts while sleeping.
    wakeup_latency:
        Seconds from sleep back to service.
    wakeup_energy:
        Joules per wake-up transition.
    """

    active_power: float = 1.0
    idle_power: float = 0.4
    sleep_power: float = 0.02
    wakeup_latency: float = 0.005
    wakeup_energy: float = 0.003

    def __post_init__(self) -> None:
        if not (self.active_power >= self.idle_power
                >= self.sleep_power >= 0):
            raise ValueError(
                "need active >= idle >= sleep >= 0 power ordering"
            )
        if self.wakeup_latency < 0 or self.wakeup_energy < 0:
            raise ValueError("wakeup costs must be non-negative")

    def break_even(self) -> float:
        """Idle time above which sleeping saves energy (T_be)."""
        saved = self.idle_power - self.sleep_power
        if saved <= 0:
            return math.inf
        return (self.wakeup_energy
                + self.wakeup_latency * self.idle_power) / saved


class DpmPolicy:
    """Decides how long to stay idle before sleeping."""

    name = "base"

    def sleep_after(self, idle_length: float, device: DpmDevice
                    ) -> float | None:
        """Return the idle time after which to sleep, or ``None`` to
        stay awake for this whole idle period.  ``idle_length`` is only
        available to clairvoyant policies."""
        raise NotImplementedError


class AlwaysOnPolicy(DpmPolicy):
    """Never sleeps: perfect QoS, maximal idle energy."""

    name = "always-on"

    def sleep_after(self, idle_length: float, device: DpmDevice
                    ) -> float | None:
        return None


class TimeoutPolicy(DpmPolicy):
    """Sleep after a fixed idle timeout (the industrial standard).

    Parameters
    ----------
    timeout:
        Idle seconds to wait before entering sleep.
    """

    def __init__(self, timeout: float):
        if timeout < 0:
            raise ValueError("timeout must be non-negative")
        self.timeout = timeout
        self.name = f"timeout({timeout * 1e3:g}ms)"

    def sleep_after(self, idle_length: float, device: DpmDevice
                    ) -> float | None:
        return self.timeout


class OraclePolicy(DpmPolicy):
    """Clairvoyant: sleeps immediately iff the idle period is longer
    than the break-even time — the offline energy optimum with zero
    QoS impact (it wakes up ``wakeup_latency`` early)."""

    name = "oracle"

    def sleep_after(self, idle_length: float, device: DpmDevice
                    ) -> float | None:
        if idle_length > device.break_even() + device.wakeup_latency:
            return 0.0
        return None


@dataclass
class DpmResult:
    """Energy/QoS outcome of one DPM simulation."""

    policy: str
    energy: float
    always_on_energy: float
    late_wakeups: int
    n_idle_periods: int
    total_delay: float

    @property
    def energy_saving(self) -> float:
        """Fraction saved relative to always-on."""
        if self.always_on_energy <= 0:
            return math.nan
        return 1.0 - self.energy / self.always_on_energy

    @property
    def late_rate(self) -> float:
        """Fraction of idle periods whose wake-up delayed service."""
        if self.n_idle_periods == 0:
            return math.nan
        return self.late_wakeups / self.n_idle_periods


def generate_workload(
    n_periods: int = 500,
    busy_mean: float = 0.02,
    idle_mean: float = 0.05,
    idle_cv: float = 2.0,
    seed: int = 0,
) -> list[tuple[float, float]]:
    """Alternating (busy, idle) durations with heavy-tailed idleness.

    Multimedia idle periods are bursty (frame-rate gaps vs. user
    pauses), modeled as a lognormal with the given CV — exactly the
    regime where timeout DPM pays.
    """
    if n_periods < 1 or busy_mean <= 0 or idle_mean <= 0:
        raise ValueError("invalid workload parameters")
    if idle_cv < 0:
        raise ValueError("idle_cv must be non-negative")
    rng = spawn_rng(seed, "dpm-workload")
    busy = rng.exponential(busy_mean, size=n_periods)
    if idle_cv == 0:
        idle = np.full(n_periods, idle_mean)
    else:
        sigma2 = math.log(1 + idle_cv**2)
        mu = math.log(idle_mean) - sigma2 / 2
        idle = rng.lognormal(mu, math.sqrt(sigma2), size=n_periods)
    return list(zip(busy.tolist(), idle.tolist()))


def simulate_dpm(
    workload: Sequence[tuple[float, float]],
    device: DpmDevice,
    policy: DpmPolicy,
) -> DpmResult:
    """Replay ``workload`` under ``policy`` and account energy and QoS.

    A wake-up is *late* when the device was still asleep (or waking)
    when the next busy period arrived; the remaining wake-up latency
    is charged as service delay.
    """
    states = [
        PowerState("active", device.active_power),
        PowerState("idle", device.idle_power,
                   wakeup_energy=0.0),
        PowerState("sleep", device.sleep_power,
                   wakeup_latency=device.wakeup_latency,
                   wakeup_energy=device.wakeup_energy),
    ]
    machine = PowerStateMachine(states)
    now = 0.0
    late = 0
    total_delay = 0.0
    always_on = 0.0

    # KPI-over-sim-time telemetry: the DPM replay is a plain loop (no
    # DES kernel, so the registry probe never fires); sample the
    # cumulative energy at each period boundary directly instead.
    registry = active_metrics()
    energy_series = (
        registry.timeseries("dpm_energy_j", policy=policy.name)
        if registry is not None else None)

    for busy, idle in workload:
        # Busy period.
        machine.enter("active", now)
        now += busy
        always_on += busy * device.active_power
        # Idle period: policy decides.
        machine.enter("idle", now)
        always_on += idle * device.idle_power
        threshold = policy.sleep_after(idle, device)
        if threshold is None or threshold >= idle:
            now += idle
            if energy_series is not None:
                energy_series.add(now, machine.energy(now))
            continue
        # Stay idle until the timeout, then sleep.
        machine.enter("sleep", now + threshold)
        sleep_time = idle - threshold
        if sleep_time < device.wakeup_latency:
            # Work arrived while waking: QoS hit.
            late += 1
            total_delay += device.wakeup_latency - sleep_time
        now += idle
        if energy_series is not None:
            energy_series.add(now, machine.energy(now))
    machine.enter("idle", now)

    return DpmResult(
        policy=policy.name,
        energy=machine.energy(now),
        always_on_energy=always_on,
        late_wakeups=late,
        n_idle_periods=len(workload),
        total_delay=total_delay,
    )


def timeout_sweep(
    timeouts: Iterable[float],
    device: DpmDevice | None = None,
    workload: Sequence[tuple[float, float]] | None = None,
) -> list[DpmResult]:
    """The §4 trade-off curve: energy saving vs. QoS impact across
    timeout settings, bracketed by always-on and the oracle."""
    device = device or DpmDevice()
    workload = workload or generate_workload()
    results = [simulate_dpm(workload, device, AlwaysOnPolicy())]
    for timeout in timeouts:
        results.append(
            simulate_dpm(workload, device, TimeoutPolicy(timeout))
        )
    results.append(simulate_dpm(workload, device, OraclePolicy()))
    return results
