"""Architecture modeling: processing elements, links and platforms.

Section 1 of the paper: "emerging design platforms consisting of hardware
and software resources that can be shared across multiple multimedia
applications ... consist of fixed processing resources (e.g. ASICs) and
programmable resources (e.g. general-purpose or DSP processors)".

A :class:`Platform` is a set of heterogeneous :class:`ProcessingElement`
objects connected by an interconnect (:class:`BusInterconnect` for the
classical shared bus, or the NoC from :mod:`repro.noc` for tile-based
designs).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.power import DvfsModel

__all__ = [
    "PEKind",
    "ProcessingElement",
    "Interconnect",
    "BusInterconnect",
    "PointToPointInterconnect",
    "Platform",
    "interconnect_to_dict",
    "interconnect_from_dict",
]


class PEKind(Enum):
    """Micro-architectural options discussed in §3."""

    GPP = "gpp"       # general-purpose processor (MMX-style over-design)
    DSP = "dsp"
    ASIP = "asip"     # extensible processor (the paper's favourite)
    ASIC = "asic"     # fixed-function hardware


#: Typical relative performance-per-power of each option (§3): ASICs are
#: an order of magnitude better than GPPs; ASIPs sit close behind ASICs.
_DEFAULT_EFFICIENCY = {
    PEKind.GPP: 1.0,
    PEKind.DSP: 3.0,
    PEKind.ASIP: 6.0,
    PEKind.ASIC: 10.0,
}


@dataclass
class ProcessingElement:
    """A computation resource of the platform.

    Parameters
    ----------
    name:
        Unique identifier within the platform.
    kind:
        Micro-architectural class (affects power efficiency).
    frequency:
        Clock frequency in hertz (the reference point if DVFS-capable).
    active_power:
        Power when computing at ``frequency``, in watts.  If ``None``, a
        kind-dependent default is derived (GPP baseline 0.5 W scaled by
        the efficiency table).
    dvfs:
        Optional DVFS model; when present the evaluator and schedulers
        may scale this PE.
    """

    name: str
    kind: PEKind = PEKind.GPP
    frequency: float = 200e6
    active_power: float | None = None
    idle_power: float = 0.02
    dvfs: DvfsModel | None = None
    #: False while the PE is failed; schedulers and fault injectors
    #: toggle this through :meth:`fail` / :meth:`repair`.
    available: bool = True

    def __post_init__(self) -> None:
        if self.frequency <= 0:
            raise ValueError(f"{self.name}: frequency must be positive")
        if self.idle_power < 0:
            raise ValueError(f"{self.name}: negative idle power")
        if self.active_power is None:
            self.active_power = 0.5 / _DEFAULT_EFFICIENCY[self.kind]
        if self.active_power < 0:
            raise ValueError(f"{self.name}: negative active power")

    def fail(self, cause=None) -> None:
        """Mark the PE unavailable (crashed or powered off by a fault)."""
        self.available = False

    def repair(self) -> None:
        """Bring the PE back into service."""
        self.available = True

    def execution_time(self, cycles: float) -> float:
        """Seconds to execute ``cycles`` at the nominal frequency."""
        if cycles < 0:
            raise ValueError("negative cycle count")
        return cycles / self.frequency

    def active_energy(self, cycles: float) -> float:
        """Joules consumed executing ``cycles`` at nominal frequency."""
        return self.active_power * self.execution_time(cycles)


class Interconnect:
    """Base class for platform interconnects."""

    def transfer_time(self, src: str, dst: str, bits: float) -> float:
        """Seconds to move ``bits`` from PE ``src`` to PE ``dst``."""
        raise NotImplementedError

    def transfer_energy(self, src: str, dst: str, bits: float) -> float:
        """Joules to move ``bits`` from PE ``src`` to PE ``dst``."""
        raise NotImplementedError

    def is_shared(self) -> bool:
        """True when transfers contend for a single medium (a bus)."""
        return False

    # ------------------------------------------------------------------
    # Link availability (fault injection)
    # ------------------------------------------------------------------
    def _down_set(self) -> set[tuple[str, str]]:
        if not hasattr(self, "_down_links"):
            self._down_links: set[tuple[str, str]] = set()
        return self._down_links

    def link_available(self, src: str, dst: str) -> bool:
        """True while the ``src``→``dst`` link (undirected) is in
        service.  Shared media (a bus) are down when *any* link is."""
        down = self._down_set()
        if self.is_shared():
            return not down
        return (src, dst) not in down and (dst, src) not in down

    def fail_link(self, src: str, dst: str) -> None:
        """Take the ``src``→``dst`` link out of service."""
        self._down_set().add((src, dst))

    def repair_link(self, src: str, dst: str) -> None:
        """Return the link to service (no-op if it was up)."""
        self._down_set().discard((src, dst))
        self._down_set().discard((dst, src))


@dataclass
class BusInterconnect(Interconnect):
    """A single shared bus — the architecture NoCs displace (§3.2).

    Parameters
    ----------
    bandwidth:
        Bus bandwidth in bits/s, shared by every transfer.
    energy_per_bit:
        Joules per transported bit.
    arbitration_latency:
        Fixed per-transfer arbitration overhead in seconds.
    """

    bandwidth: float = 1e9
    energy_per_bit: float = 5e-12
    arbitration_latency: float = 1e-7

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.energy_per_bit < 0 or self.arbitration_latency < 0:
            raise ValueError("energies and latencies must be non-negative")

    def transfer_time(self, src: str, dst: str, bits: float) -> float:
        if src == dst:
            return 0.0
        return self.arbitration_latency + bits / self.bandwidth

    def transfer_energy(self, src: str, dst: str, bits: float) -> float:
        if src == dst:
            return 0.0
        return bits * self.energy_per_bit

    def is_shared(self) -> bool:
        return True


@dataclass
class PointToPointInterconnect(Interconnect):
    """Dedicated full-mesh links (an idealized non-shared fabric)."""

    bandwidth: float = 1e9
    energy_per_bit: float = 2e-12

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.energy_per_bit < 0:
            raise ValueError("energy must be non-negative")

    def transfer_time(self, src: str, dst: str, bits: float) -> float:
        if src == dst:
            return 0.0
        return bits / self.bandwidth

    def transfer_energy(self, src: str, dst: str, bits: float) -> float:
        if src == dst:
            return 0.0
        return bits * self.energy_per_bit


# ----------------------------------------------------------------------
# Interconnect (de)serialization
# ----------------------------------------------------------------------
#: Interconnect kind tags used by the canonical dict form.
_INTERCONNECT_KINDS: dict[str, type] = {
    "bus": BusInterconnect,
    "p2p": PointToPointInterconnect,
}


def interconnect_to_dict(interconnect: Interconnect) -> dict:
    """Canonical ``{"kind": ..., "parameters": {...}}`` form.

    Only the built-in fabric classes serialize; custom interconnects
    (e.g. NoC adapters) raise ``TypeError`` — scenarios model them via
    their platform-level parameters instead.
    """
    if isinstance(interconnect, BusInterconnect):
        return {
            "kind": "bus",
            "parameters": {
                "bandwidth": interconnect.bandwidth,
                "energy_per_bit": interconnect.energy_per_bit,
                "arbitration_latency":
                    interconnect.arbitration_latency,
            },
        }
    if isinstance(interconnect, PointToPointInterconnect):
        return {
            "kind": "p2p",
            "parameters": {
                "bandwidth": interconnect.bandwidth,
                "energy_per_bit": interconnect.energy_per_bit,
            },
        }
    raise TypeError(
        f"cannot serialize interconnect of type "
        f"{type(interconnect).__name__}; known kinds: "
        f"{', '.join(sorted(_INTERCONNECT_KINDS))}"
    )


def interconnect_from_dict(data: dict | None) -> Interconnect:
    """Rebuild an interconnect from :func:`interconnect_to_dict`."""
    if data is None:
        return BusInterconnect()
    kind = data.get("kind", "bus")
    params = data.get("parameters", {})
    if kind == "bus":
        return BusInterconnect(
            bandwidth=float(params.get("bandwidth", 1e9)),
            energy_per_bit=float(params.get("energy_per_bit", 5e-12)),
            arbitration_latency=float(
                params.get("arbitration_latency", 1e-7)),
        )
    if kind == "p2p":
        return PointToPointInterconnect(
            bandwidth=float(params.get("bandwidth", 1e9)),
            energy_per_bit=float(params.get("energy_per_bit", 2e-12)),
        )
    raise ValueError(
        f"unknown interconnect kind {kind!r}; known kinds: "
        f"{', '.join(sorted(_INTERCONNECT_KINDS))}"
    )


class Platform:
    """A heterogeneous multiprocessor platform.

    Examples
    --------
    >>> platform = Platform("demo")
    >>> _ = platform.add_pe(ProcessingElement("cpu0", PEKind.GPP))
    >>> _ = platform.add_pe(ProcessingElement("dsp0", PEKind.DSP))
    >>> sorted(platform.pe_names())
    ['cpu0', 'dsp0']
    """

    def __init__(
        self,
        name: str = "platform",
        interconnect: Interconnect | None = None,
    ):
        self.name = name
        self.interconnect = interconnect or BusInterconnect()
        self._pes: dict[str, ProcessingElement] = {}

    def add_pe(self, pe: ProcessingElement) -> ProcessingElement:
        """Register a processing element; names must be unique."""
        if pe.name in self._pes:
            raise ValueError(f"duplicate PE {pe.name!r}")
        self._pes[pe.name] = pe
        return pe

    @property
    def pes(self) -> list[ProcessingElement]:
        """All processing elements, in insertion order."""
        return list(self._pes.values())

    def pe(self, name: str) -> ProcessingElement:
        """Look up a PE by name."""
        return self._pes[name]

    def pe_names(self) -> list[str]:
        """Names of all PEs."""
        return list(self._pes)

    def __contains__(self, name: str) -> bool:
        return name in self._pes

    def __len__(self) -> int:
        return len(self._pes)

    def total_idle_power(self) -> float:
        """Sum of PE idle powers — the platform's floor power draw."""
        return sum(pe.idle_power for pe in self._pes.values())

    def available_pes(self) -> list[ProcessingElement]:
        """PEs currently in service."""
        return [pe for pe in self._pes.values() if pe.available]

    def fail_pe(self, name: str) -> None:
        """Take a PE out of service (fault injection)."""
        self._pes[name].fail()

    def repair_pe(self, name: str) -> None:
        """Return a PE to service."""
        self._pes[name].repair()

    # ------------------------------------------------------------------
    # Canonical (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form of the platform (``repro.scenario`` shape):
        PEs as nodes with a ``parameters`` object, plus the
        interconnect kind and its parameters."""
        return {
            "name": self.name,
            "interconnect": interconnect_to_dict(self.interconnect),
            "pes": [
                {
                    "id": pe.name,
                    "parameters": {
                        "kind": pe.kind.value,
                        "frequency": pe.frequency,
                        "active_power": pe.active_power,
                        "idle_power": pe.idle_power,
                        "available": pe.available,
                        "dvfs": (None if pe.dvfs is None
                                 else pe.dvfs.to_dict()),
                    },
                }
                for pe in self.pes
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Platform":
        """Rebuild a platform from :meth:`to_dict` output.

        The canonical constructor behind :func:`repro.scenario.load`;
        unknown keys are tolerated, unknown interconnect kinds raise
        ``ValueError``.
        """
        platform = cls(
            str(data.get("name", "platform")),
            interconnect=interconnect_from_dict(
                data.get("interconnect")),
        )
        for entry in data.get("pes", []):
            params = entry.get("parameters", {})
            dvfs = params.get("dvfs")
            active = params.get("active_power")
            pe = ProcessingElement(
                name=str(entry["id"]),
                kind=PEKind(params.get("kind", PEKind.GPP.value)),
                frequency=float(params.get("frequency", 200e6)),
                active_power=None if active is None else float(active),
                idle_power=float(params.get("idle_power", 0.02)),
                dvfs=(None if dvfs is None
                      else DvfsModel.from_dict(dvfs)),
            )
            pe.available = bool(params.get("available", True))
            platform.add_pe(pe)
        return platform

    def __repr__(self) -> str:
        return (
            f"Platform({self.name!r}, pes={len(self._pes)}, "
            f"interconnect={type(self.interconnect).__name__})"
        )
