"""The holistic design flow — the paper's central methodological claim.

The paper argues that distributed multimedia design "should be, at the
same time, node- and network-centric with emphasis on low-power" (§1) and
sketches the flow: model the application, model the architecture, map one
onto the other, evaluate (by simulation or analysis), check constraints
and QoS, and iterate.  :class:`HolisticDesignFlow` automates exactly that
loop over a candidate mapping set and reports the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.application import ApplicationGraph
from repro.core.architecture import Platform
from repro.core.constraints import ConstraintViolation, DesignConstraints
from repro.core.evaluation import (
    AnalyticalEvaluator,
    EvaluationResult,
    SimulationEvaluator,
)
from repro.core.exploration import (
    DesignPoint,
    MappingExplorer,
    random_mappings,
)
from repro.core.mapping import Mapping
from repro.core.qos import QoSSpec, QoSViolation

__all__ = ["DesignOutcome", "DesignReport", "HolisticDesignFlow"]


@dataclass
class DesignOutcome:
    """Verdict for a single candidate design point."""

    mapping: Mapping
    result: EvaluationResult
    qos_violations: list[QoSViolation] = field(default_factory=list)
    constraint_violations: list[ConstraintViolation] = field(
        default_factory=list
    )

    @property
    def feasible(self) -> bool:
        """True when no QoS bound and no design constraint is violated."""
        return not self.qos_violations and not self.constraint_violations


@dataclass
class DesignReport:
    """Result of a full design-flow run."""

    outcomes: list[DesignOutcome] = field(default_factory=list)
    best: DesignOutcome | None = None
    screened_out: int = 0

    @property
    def feasible_count(self) -> int:
        """Number of feasible candidates found."""
        return sum(1 for o in self.outcomes if o.feasible)

    @property
    def succeeded(self) -> bool:
        """True when at least one feasible design exists."""
        return self.best is not None


class HolisticDesignFlow:
    """Map → evaluate → check → iterate, over a candidate mapping set.

    Parameters
    ----------
    app, platform:
        The design problem.
    qos:
        End-to-end QoS specification the stream must satisfy.
    constraints:
        System budget constraints (power, energy, ...).
    objective:
        Metric minimized among feasible designs (default: average power,
        the battery-driven regime of §1).
    horizon:
        Simulation horizon per candidate, seconds.
    analytical_prescreen:
        When true, candidates whose *analytical* utilization estimate
        shows an overloaded PE are rejected without simulation — the
        division of labour §2.2 advocates (fast analysis to prune, slow
        simulation to confirm).

    Examples
    --------
    See ``examples/quickstart.py`` for an end-to-end run.
    """

    def __init__(
        self,
        app: ApplicationGraph,
        platform: Platform,
        qos: QoSSpec,
        constraints: DesignConstraints | None = None,
        objective: str = "average_power",
        horizon: float = 10.0,
        seed: int = 0,
        analytical_prescreen: bool = True,
    ):
        app.validate()
        self.app = app
        self.platform = platform
        self.qos = qos
        self.constraints = constraints or DesignConstraints()
        self.objective = objective
        self.horizon = horizon
        self.seed = seed
        self.analytical_prescreen = analytical_prescreen

    # ------------------------------------------------------------------
    def candidate_mappings(self, count: int = 32) -> list[Mapping]:
        """Default candidate set: random mappings plus the single-PE and
        load-spread heuristics."""
        candidates = random_mappings(
            self.app, self.platform, count, seed=self.seed
        )
        names = [p.name for p in self.app.processes]
        pes = self.platform.pe_names()
        # Everything on one PE (cheapest communication).
        candidates.append(Mapping({n: pes[0] for n in names}))
        # Round-robin spread (cheapest contention).
        candidates.append(
            Mapping({n: pes[i % len(pes)] for i, n in enumerate(names)})
        )
        return candidates

    def prescreen(self, mapping: Mapping) -> bool:
        """Fast analytical feasibility check; True = worth simulating."""
        analytical = AnalyticalEvaluator(self.app, self.platform, mapping)
        utils = analytical.pe_utilizations()
        return all(u < 1.0 for u in utils.values())

    def run(self, mappings: Iterable[Mapping] | None = None
            ) -> DesignReport:
        """Execute the flow and return a :class:`DesignReport`."""
        candidates = (
            list(mappings) if mappings is not None
            else self.candidate_mappings()
        )
        report = DesignReport()
        for mapping in candidates:
            if self.analytical_prescreen and not self.prescreen(mapping):
                report.screened_out += 1
                continue
            evaluator = SimulationEvaluator(
                self.app, self.platform, mapping, seed=self.seed,
                token_deadline=self.qos.max_latency,
            )
            result = evaluator.evaluate(self.horizon)
            outcome = DesignOutcome(
                mapping=mapping,
                result=result,
                qos_violations=self.qos.check(result.qos),
                constraint_violations=self.constraints.check(
                    result.metrics
                ),
            )
            report.outcomes.append(outcome)
        feasible = [o for o in report.outcomes if o.feasible]
        if feasible:
            report.best = min(
                feasible,
                key=lambda o: o.result.metrics.get(
                    self.objective, float("inf")
                ),
            )
        return report
