"""Application modeling: process graphs and task graphs.

Section 2.1 of the paper: "a natural choice is to use process graphs where
each node corresponds to a process in the multimedia application, while
each edge represents a communication channel (link) ... through dedicated
buffers that behave like finite-length queues."

Two application abstractions are provided:

* :class:`ApplicationGraph` — a streaming process network (sources push
  tokens through bounded channels into transformers and sinks).  This is
  the model the simulation evaluator executes and the shape of Fig.1(b).
* :class:`TaskGraph` — a DAG of tasks with execution demands, data volumes
  and (soft) deadlines, as used for NoC mapping and scheduling (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

import networkx as nx

__all__ = [
    "MediaType",
    "ProcessNode",
    "ChannelSpec",
    "ApplicationGraph",
    "Task",
    "Dependency",
    "TaskGraph",
]


class MediaType(Enum):
    """Media classes from §1: 'all forms of communication'."""

    TEXT = "text"
    GRAPHICS = "graphics"
    AUDIO = "audio"
    VIDEO = "video"
    CONTROL = "control"


@dataclass
class ProcessNode:
    """A process in a multimedia process network.

    Parameters
    ----------
    name:
        Unique identifier within the graph.
    cycles_mean:
        Mean computation demand per activation, in processor cycles.
        Multimedia demands show "large statistical variation" (§2), so the
        evaluator draws per-activation demands from a lognormal with this
        mean and coefficient of variation ``cycles_cv``.
    cycles_cv:
        Coefficient of variation of the per-activation cycle demand;
        0 gives deterministic demands.
    media:
        Media class of the data the process handles (drives QoS defaults).
    rate_hz:
        For source processes only: activation rate (tokens per second).
        ``None`` for non-source processes, which activate on input tokens.
    """

    name: str
    cycles_mean: float
    cycles_cv: float = 0.0
    media: MediaType = MediaType.VIDEO
    rate_hz: float | None = None

    def __post_init__(self) -> None:
        if self.cycles_mean < 0:
            raise ValueError(f"{self.name}: negative cycle demand")
        if self.cycles_cv < 0:
            raise ValueError(f"{self.name}: negative cycle CV")
        if self.rate_hz is not None and self.rate_hz <= 0:
            raise ValueError(f"{self.name}: rate must be positive")


@dataclass
class ChannelSpec:
    """A bounded FIFO channel between two processes (one graph edge).

    Parameters
    ----------
    src, dst:
        Names of the producer and consumer processes.
    bits_per_token:
        Size of one data token on this channel, in bits.
    buffer_capacity:
        Maximum number of buffered tokens ("finite-length queues", §2.1).
    """

    src: str
    dst: str
    bits_per_token: float = 8_000.0
    buffer_capacity: int = 8

    def __post_init__(self) -> None:
        if self.bits_per_token <= 0:
            raise ValueError("bits_per_token must be positive")
        if self.buffer_capacity < 1:
            raise ValueError("buffer_capacity must be >= 1")

    @property
    def key(self) -> tuple[str, str]:
        """(src, dst) pair identifying the channel."""
        return (self.src, self.dst)


class ApplicationGraph:
    """A multimedia application as a process network.

    Examples
    --------
    >>> app = ApplicationGraph("pipeline")
    >>> _ = app.add_process(ProcessNode("cam", 0.0, rate_hz=30.0))
    >>> _ = app.add_process(ProcessNode("enc", 50_000.0))
    >>> _ = app.add_channel(ChannelSpec("cam", "enc"))
    >>> [p.name for p in app.sources()]
    ['cam']
    >>> [p.name for p in app.sinks()]
    ['enc']
    """

    def __init__(self, name: str = "app"):
        self.name = name
        self._graph = nx.DiGraph()
        self._processes: dict[str, ProcessNode] = {}
        self._channels: dict[tuple[str, str], ChannelSpec] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_process(self, process: ProcessNode) -> ProcessNode:
        """Register a process; names must be unique."""
        if process.name in self._processes:
            raise ValueError(f"duplicate process {process.name!r}")
        self._processes[process.name] = process
        self._graph.add_node(process.name)
        return process

    def add_channel(self, channel: ChannelSpec) -> ChannelSpec:
        """Register a channel; both endpoints must exist."""
        for endpoint in (channel.src, channel.dst):
            if endpoint not in self._processes:
                raise ValueError(f"unknown process {endpoint!r}")
        if channel.key in self._channels:
            raise ValueError(f"duplicate channel {channel.key}")
        if channel.src == channel.dst:
            raise ValueError("self-loop channels are not allowed")
        self._channels[channel.key] = channel
        self._graph.add_edge(channel.src, channel.dst)
        return channel

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def processes(self) -> list[ProcessNode]:
        """All processes, in insertion order."""
        return list(self._processes.values())

    @property
    def channels(self) -> list[ChannelSpec]:
        """All channels, in insertion order."""
        return list(self._channels.values())

    def process(self, name: str) -> ProcessNode:
        """Look up a process by name."""
        return self._processes[name]

    def channel(self, src: str, dst: str) -> ChannelSpec:
        """Look up a channel by its endpoints."""
        return self._channels[(src, dst)]

    def __contains__(self, name: str) -> bool:
        return name in self._processes

    def __len__(self) -> int:
        return len(self._processes)

    def sources(self) -> list[ProcessNode]:
        """Processes with no incoming channels."""
        return [
            self._processes[n]
            for n in self._processes
            if self._graph.in_degree(n) == 0
        ]

    def sinks(self) -> list[ProcessNode]:
        """Processes with no outgoing channels."""
        return [
            self._processes[n]
            for n in self._processes
            if self._graph.out_degree(n) == 0
        ]

    def predecessors(self, name: str) -> list[str]:
        """Names of processes feeding ``name``."""
        return list(self._graph.predecessors(name))

    def successors(self, name: str) -> list[str]:
        """Names of processes fed by ``name``."""
        return list(self._graph.successors(name))

    def in_channels(self, name: str) -> list[ChannelSpec]:
        """Channels into process ``name``."""
        return [self._channels[(p, name)] for p in self.predecessors(name)]

    def out_channels(self, name: str) -> list[ChannelSpec]:
        """Channels out of process ``name``."""
        return [self._channels[(name, s)] for s in self.successors(name)]

    def is_acyclic(self) -> bool:
        """True when the process network has no feedback loops."""
        return nx.is_directed_acyclic_graph(self._graph)

    # ------------------------------------------------------------------
    # Aggregate demands
    # ------------------------------------------------------------------
    def source_rate(self) -> float:
        """Aggregate activation rate of all sources (tokens/s)."""
        return sum(p.rate_hz or 0.0 for p in self.sources())

    def total_compute_demand(self) -> float:
        """Cycles per second demanded if every token visits every process.

        Upper-bound estimate used by quick feasibility screens: each
        source token is assumed to trigger one activation of every
        downstream process on every path.
        """
        demand = 0.0
        for source in self.sources():
            if source.rate_hz is None:
                continue
            reachable = nx.descendants(self._graph, source.name)
            reachable.add(source.name)
            demand += source.rate_hz * sum(
                self._processes[n].cycles_mean for n in reachable
            )
        return demand

    def validate(self) -> None:
        """Raise ``ValueError`` on structural problems.

        Checks: every source has a rate, the graph is weakly connected
        (a disconnected fragment is almost always a modeling mistake) and
        no process is isolated.
        """
        if not self._processes:
            raise ValueError("application has no processes")
        for source in self.sources():
            if source.rate_hz is None and self._graph.out_degree(
                    source.name):
                raise ValueError(
                    f"source process {source.name!r} has no rate"
                )
        if len(self._processes) > 1 and not nx.is_weakly_connected(
                self._graph):
            raise ValueError("application graph is not connected")

    # ------------------------------------------------------------------
    # Canonical (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form of the graph (``repro.scenario`` node/edge
        shape): processes become nodes, channels become edges, each
        with a ``parameters`` object.  Insertion order is preserved."""
        return {
            "name": self.name,
            "nodes": [
                {
                    "id": p.name,
                    "parameters": {
                        "cycles_mean": p.cycles_mean,
                        "cycles_cv": p.cycles_cv,
                        "media": p.media.value,
                        "rate_hz": p.rate_hz,
                    },
                }
                for p in self.processes
            ],
            "edges": [
                {
                    "src": c.src,
                    "dst": c.dst,
                    "parameters": {
                        "bits_per_token": c.bits_per_token,
                        "buffer_capacity": c.buffer_capacity,
                    },
                }
                for c in self.channels
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ApplicationGraph":
        """Rebuild a graph from :meth:`to_dict` output.

        This is the canonical constructor behind
        :func:`repro.scenario.load`; it tolerates unknown keys (forward
        compatibility) and re-raises structural problems as
        ``ValueError`` with the offending element named.
        """
        app = cls(str(data.get("name", "app")))
        for node in data.get("nodes", []):
            params = node.get("parameters", {})
            media = params.get("media", MediaType.VIDEO.value)
            app.add_process(ProcessNode(
                name=str(node["id"]),
                cycles_mean=float(params.get("cycles_mean", 0.0)),
                cycles_cv=float(params.get("cycles_cv", 0.0)),
                media=MediaType(media),
                rate_hz=(None if params.get("rate_hz") is None
                         else float(params["rate_hz"])),
            ))
        for edge in data.get("edges", []):
            params = edge.get("parameters", {})
            app.add_channel(ChannelSpec(
                src=str(edge["src"]),
                dst=str(edge["dst"]),
                bits_per_token=float(
                    params.get("bits_per_token", 8_000.0)),
                buffer_capacity=int(params.get("buffer_capacity", 8)),
            ))
        return app

    def __repr__(self) -> str:
        return (
            f"ApplicationGraph({self.name!r}, processes="
            f"{len(self._processes)}, channels={len(self._channels)})"
        )


@dataclass
class Task:
    """A schedulable unit of computation in a :class:`TaskGraph`.

    Parameters
    ----------
    name:
        Unique identifier.
    cycles:
        Execution demand in cycles at the reference frequency.
    deadline:
        Absolute soft deadline in seconds from graph start, or ``None``.
    """

    name: str
    cycles: float
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"{self.name}: negative cycles")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"{self.name}: deadline must be positive")


@dataclass
class Dependency:
    """A data dependency between two tasks carrying ``bits`` of data."""

    src: str
    dst: str
    bits: float = 0.0

    def __post_init__(self) -> None:
        if self.bits < 0:
            raise ValueError("negative data volume")


class TaskGraph:
    """A DAG of tasks with data volumes and soft deadlines (§3.3).

    Used by the NoC mapping and scheduling experiments: nodes carry
    computation demands, edges carry communication volumes, and the graph
    has a period (it re-executes once per iteration, e.g. per frame).
    """

    def __init__(self, name: str = "taskgraph", period: float | None = None):
        self.name = name
        self.period = period
        self._graph = nx.DiGraph()
        self._tasks: dict[str, Task] = {}
        self._deps: dict[tuple[str, str], Dependency] = {}

    def add_task(self, task: Task) -> Task:
        """Register a task; names must be unique."""
        if task.name in self._tasks:
            raise ValueError(f"duplicate task {task.name!r}")
        self._tasks[task.name] = task
        self._graph.add_node(task.name)
        return task

    def add_dependency(self, dep: Dependency) -> Dependency:
        """Register a dependency; must keep the graph acyclic."""
        for endpoint in (dep.src, dep.dst):
            if endpoint not in self._tasks:
                raise ValueError(f"unknown task {endpoint!r}")
        self._graph.add_edge(dep.src, dep.dst)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(dep.src, dep.dst)
            raise ValueError(
                f"dependency {dep.src}->{dep.dst} creates a cycle"
            )
        self._deps[(dep.src, dep.dst)] = dep
        return dep

    @property
    def tasks(self) -> list[Task]:
        """All tasks, in insertion order."""
        return list(self._tasks.values())

    @property
    def dependencies(self) -> list[Dependency]:
        """All dependencies, in insertion order."""
        return list(self._deps.values())

    def task(self, name: str) -> Task:
        """Look up a task by name."""
        return self._tasks[name]

    def dependency(self, src: str, dst: str) -> Dependency:
        """Look up a dependency by endpoints."""
        return self._deps[(src, dst)]

    def __len__(self) -> int:
        return len(self._tasks)

    def predecessors(self, name: str) -> list[str]:
        """Direct predecessors of task ``name``."""
        return list(self._graph.predecessors(name))

    def successors(self, name: str) -> list[str]:
        """Direct successors of task ``name``."""
        return list(self._graph.successors(name))

    def entry_tasks(self) -> list[Task]:
        """Tasks with no predecessors."""
        return [
            self._tasks[n] for n in self._tasks
            if self._graph.in_degree(n) == 0
        ]

    def exit_tasks(self) -> list[Task]:
        """Tasks with no successors."""
        return [
            self._tasks[n] for n in self._tasks
            if self._graph.out_degree(n) == 0
        ]

    def topological_order(self) -> list[str]:
        """Task names in a deterministic topological order."""
        return list(nx.lexicographical_topological_sort(self._graph))

    def total_cycles(self) -> float:
        """Sum of all task demands."""
        return sum(t.cycles for t in self._tasks.values())

    def total_bits(self) -> float:
        """Sum of all communication volumes."""
        return sum(d.bits for d in self._deps.values())

    def critical_path_cycles(self) -> float:
        """Largest cycle demand along any dependency path.

        A lower bound on makespan (in cycles) on any number of processors
        when communication is free.
        """
        longest: dict[str, float] = {}
        for name in self.topological_order():
            incoming = [
                longest[p] for p in self._graph.predecessors(name)
            ]
            longest[name] = self._tasks[name].cycles + (
                max(incoming) if incoming else 0.0
            )
        return max(longest.values()) if longest else 0.0

    def communication_pairs(self) -> Iterable[tuple[str, str, float]]:
        """Yield ``(src, dst, bits)`` for every dependency with data."""
        for (src, dst), dep in self._deps.items():
            if dep.bits > 0:
                yield src, dst, dep.bits

    # ------------------------------------------------------------------
    # Canonical (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form of the DAG (``repro.scenario`` node/edge
        shape); insertion order is preserved."""
        return {
            "name": self.name,
            "period": self.period,
            "nodes": [
                {
                    "id": t.name,
                    "parameters": {
                        "cycles": t.cycles,
                        "deadline": t.deadline,
                    },
                }
                for t in self.tasks
            ],
            "edges": [
                {
                    "src": d.src,
                    "dst": d.dst,
                    "parameters": {"bits": d.bits},
                }
                for d in self.dependencies
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TaskGraph":
        """Rebuild a task graph from :meth:`to_dict` output."""
        period = data.get("period")
        tg = cls(str(data.get("name", "taskgraph")),
                 period=None if period is None else float(period))
        for node in data.get("nodes", []):
            params = node.get("parameters", {})
            deadline = params.get("deadline")
            tg.add_task(Task(
                name=str(node["id"]),
                cycles=float(params.get("cycles", 0.0)),
                deadline=None if deadline is None else float(deadline),
            ))
        for edge in data.get("edges", []):
            params = edge.get("parameters", {})
            tg.add_dependency(Dependency(
                src=str(edge["src"]),
                dst=str(edge["dst"]),
                bits=float(params.get("bits", 0.0)),
            ))
        return tg

    def __repr__(self) -> str:
        return (
            f"TaskGraph({self.name!r}, tasks={len(self._tasks)}, "
            f"deps={len(self._deps)}, period={self.period})"
        )
