"""Design-space exploration: enumerating mappings and Pareto fronts.

"The overall goal of successful design is then to find the best mapping of
the target multimedia application onto the architectural resources, while
satisfying an imposed set of design constraints" (abstract).  This module
supplies the search machinery: mapping enumerators, random/greedy/
exhaustive explorers and multi-objective Pareto utilities.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.application import ApplicationGraph
from repro.core.architecture import Platform
from repro.core.evaluation import (
    AnalyticalEvaluator,
    EvaluationResult,
    SimulationEvaluator,
)
from repro.core.mapping import Mapping
from repro.utils.rng import spawn_rng

__all__ = [
    "DesignPoint",
    "pareto_front",
    "dominates",
    "all_mappings",
    "random_mappings",
    "ExplorationReport",
    "MappingExplorer",
    "GuidedMappingSearch",
]


@dataclass
class DesignPoint:
    """A candidate design: a mapping plus its evaluated objectives.

    ``objectives`` maps objective name to value; all objectives are
    minimized (negate throughput-like metrics before storing).
    """

    mapping: Mapping
    objectives: dict[str, float]
    result: EvaluationResult | None = None

    def vector(self, names: Sequence[str]) -> tuple[float, ...]:
        """Objective values in the order of ``names``."""
        return tuple(self.objectives[n] for n in names)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` Pareto-dominates ``b`` (minimization)."""
    if len(a) != len(b):
        raise ValueError("objective vectors differ in length")
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_front(
    points: Iterable[DesignPoint], objectives: Sequence[str]
) -> list[DesignPoint]:
    """Return the non-dominated subset of ``points``.

    Ties (identical vectors) keep the first occurrence only, so the front
    has no duplicates.
    """
    candidates = list(points)
    front: list[DesignPoint] = []
    seen_vectors: set[tuple[float, ...]] = set()
    for point in candidates:
        vector = point.vector(objectives)
        if vector in seen_vectors:
            continue
        dominated = any(
            dominates(other.vector(objectives), vector)
            for other in candidates
            if other is not point
        )
        if not dominated:
            front.append(point)
            seen_vectors.add(vector)
    return front


def all_mappings(
    app: ApplicationGraph, platform: Platform
) -> Iterable[Mapping]:
    """Yield every total mapping (|PEs|^|processes| of them — small apps
    only; the exhaustive baseline for validating heuristics)."""
    names = [p.name for p in app.processes]
    pes = platform.pe_names()
    for combo in itertools.product(pes, repeat=len(names)):
        yield Mapping(dict(zip(names, combo)))


def random_mappings(
    app: ApplicationGraph,
    platform: Platform,
    count: int,
    seed: int = 0,
) -> list[Mapping]:
    """Sample ``count`` uniform random total mappings (with replacement)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = spawn_rng(seed, "random-mappings")
    names = [p.name for p in app.processes]
    pes = platform.pe_names()
    mappings = []
    for _ in range(count):
        picks = rng.integers(0, len(pes), size=len(names))
        mappings.append(
            Mapping({n: pes[int(i)] for n, i in zip(names, picks)})
        )
    return mappings


@dataclass
class ExplorationReport:
    """Everything an exploration produced."""

    evaluated: list[DesignPoint] = field(default_factory=list)
    front: list[DesignPoint] = field(default_factory=list)
    objectives: tuple[str, ...] = ()

    @property
    def n_evaluated(self) -> int:
        """Number of design points evaluated."""
        return len(self.evaluated)

    def best(self, objective: str) -> DesignPoint:
        """The evaluated point minimizing a single objective."""
        if not self.evaluated:
            raise ValueError("no design points evaluated")
        return min(self.evaluated, key=lambda p: p.objectives[objective])


class MappingExplorer:
    """Evaluate candidate mappings and keep the Pareto-optimal ones.

    Parameters
    ----------
    app, platform:
        The design problem.
    objectives:
        Metric names to minimize.  Metrics are read from
        ``EvaluationResult.metrics`` first and then from the QoS report;
        prefix a name with ``-`` to maximize it instead
        (e.g. ``-throughput``).
    evaluator_factory:
        Builds an evaluator for a mapping; defaults to a
        :class:`SimulationEvaluator` with deterministic sources.
    horizon:
        Simulation horizon per candidate, seconds.
    """

    def __init__(
        self,
        app: ApplicationGraph,
        platform: Platform,
        objectives: Sequence[str] = ("average_power", "mean_latency"),
        evaluator_factory: Callable[[Mapping], SimulationEvaluator]
        | None = None,
        horizon: float = 10.0,
        seed: int = 0,
    ):
        self.app = app
        self.platform = platform
        self.objectives = tuple(objectives)
        self.horizon = horizon
        self.seed = seed
        self._factory = evaluator_factory or (
            lambda mapping: SimulationEvaluator(
                app, platform, mapping, seed=seed
            )
        )

    def _extract(self, result: EvaluationResult, name: str) -> float:
        maximize = name.startswith("-")
        key = name[1:] if maximize else name
        if key in result.metrics:
            value = result.metrics[key]
        else:
            value = result.qos.as_dict()[key]
        return -value if maximize else value

    def evaluate(self, mapping: Mapping) -> DesignPoint:
        """Evaluate one mapping into a :class:`DesignPoint`."""
        result = self._factory(mapping).evaluate(self.horizon)
        objectives = {
            name: self._extract(result, name) for name in self.objectives
        }
        return DesignPoint(mapping=mapping, objectives=objectives,
                           result=result)

    def explore(self, mappings: Iterable[Mapping]) -> ExplorationReport:
        """Evaluate every mapping in ``mappings`` and build the front."""
        points = [self.evaluate(m) for m in mappings]
        return ExplorationReport(
            evaluated=points,
            front=pareto_front(points, self.objectives),
            objectives=self.objectives,
        )


class GuidedMappingSearch:
    """Analysis-guided mapping search, simulation-confirmed (§2.2).

    The paper's division of labour: "analytical tools that can quickly
    derive power/performance estimates" steer the search through
    thousands of candidates; "simulation is the method of choice" for
    confirming the few finalists.  Concretely: simulated annealing over
    the mapping space with an *analytical* objective, then a DES
    evaluation of the best candidates.

    Parameters
    ----------
    app, platform:
        The design problem.
    objective:
        ``"average_power"`` or ``"mean_latency"`` — read from the
        analytical evaluation during the search.
    n_iterations:
        Annealing steps (each costs one analytical solve, ~sub-ms).
    confirm_top:
        How many of the best distinct candidates get the full
        simulation at the end.
    """

    def __init__(
        self,
        app: ApplicationGraph,
        platform: Platform,
        objective: str = "average_power",
        n_iterations: int = 2_000,
        confirm_top: int = 3,
        horizon: float = 10.0,
        seed: int = 0,
        cooling: float = 0.995,
    ):
        if objective not in ("average_power", "mean_latency"):
            raise ValueError(
                "objective must be average_power or mean_latency"
            )
        if n_iterations < 1 or confirm_top < 1:
            raise ValueError("iterations and confirm_top must be >= 1")
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must lie in (0, 1)")
        app.validate()
        self.app = app
        self.platform = platform
        self.objective = objective
        self.n_iterations = n_iterations
        self.confirm_top = confirm_top
        self.horizon = horizon
        self.seed = seed
        self.cooling = cooling

    def _analytical_cost(self, mapping: Mapping) -> float:
        evaluator = AnalyticalEvaluator(self.app, self.platform,
                                        mapping)
        utils = evaluator.pe_utilizations()
        if any(u >= 1.0 for u in utils.values()):
            return math.inf  # overloaded: infeasible region
        result = evaluator.evaluate()
        if self.objective == "average_power":
            return result.metrics["average_power"]
        return result.qos.mean_latency

    def search(self) -> ExplorationReport:
        """Run the guided search; the report's ``evaluated`` points are
        the simulation-confirmed finalists."""
        rng = spawn_rng(self.seed, "guided-search")
        names = [p.name for p in self.app.processes]
        pes = self.platform.pe_names()

        assignment = {
            name: pes[int(rng.integers(0, len(pes)))] for name in names
        }
        current_cost = self._analytical_cost(Mapping(assignment))
        best_candidates: dict[Mapping, float] = {}
        temperature = max(abs(current_cost), 1.0) * 0.1 \
            if math.isfinite(current_cost) else 1.0

        for _ in range(self.n_iterations):
            name = names[int(rng.integers(0, len(names)))]
            new_pe = pes[int(rng.integers(0, len(pes)))]
            if assignment[name] == new_pe:
                continue
            old_pe = assignment[name]
            assignment[name] = new_pe
            candidate = Mapping(assignment)
            cost = self._analytical_cost(candidate)
            delta = cost - current_cost
            accept = (
                delta <= 0
                or (math.isfinite(delta) and rng.random()
                    < math.exp(-delta / max(temperature, 1e-30)))
            )
            if accept:
                current_cost = cost
                if math.isfinite(cost):
                    incumbent = best_candidates.get(candidate)
                    if incumbent is None or cost < incumbent:
                        best_candidates[candidate] = cost
            else:
                assignment[name] = old_pe
            temperature *= self.cooling

        finalists = sorted(best_candidates,
                           key=best_candidates.get)[:self.confirm_top]
        explorer = MappingExplorer(
            self.app, self.platform,
            objectives=("average_power", "mean_latency"),
            horizon=self.horizon, seed=self.seed,
        )
        return explorer.explore(finalists)
